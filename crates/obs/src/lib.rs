//! napmon-obs: observability primitives for the napmon serving stack.
//!
//! The paper's premise is *operation-time* monitoring of a deployed
//! network; this crate makes the monitoring system observable in turn.
//! Three pieces, all pure `std`:
//!
//! - **[`MetricsRegistry`]** — named counters, gauges, and log2-bucketed
//!   [`LatencyHistogram`]s with lock-free hot paths. Histogram snapshots
//!   are plain data: mergeable across shards (associative + commutative)
//!   and serializable, with *exact* p50/p90/p99/p999 brackets
//!   ([`HistogramSnapshot::quantile_bounds`]).
//! - **Tracer** ([`TraceRing`]) — bounded per-thread seqlock-style span rings
//!   (drop-oldest, zero steady-state allocation) recording typed
//!   [`SpanKind`] spans correlated by a trace id threaded through the
//!   wire protocol, so one slow request can be reconstructed end to end.
//! - **Scrape surface** ([`ObsReport`]) — a versioned snapshot bundling
//!   the metrics, a Prometheus-style text exposition, the slow-request
//!   log, and recent spans; served by the wire `Metrics` opcode.
//!
//! ## Feature gating
//!
//! Report/snapshot types are always compiled (shard reports embed
//! histograms unconditionally). The *hot-path probes* — [`record_span`],
//! [`now_ns`], [`tracing_enabled`] — compile to `#[inline(always)]`
//! no-op shims unless the `probes` cargo feature is on; downstream crates
//! expose an `obs` feature that simply forwards to `napmon-obs/probes`,
//! so a single switch arms every instrumented call site in the build.
//! With probes compiled in, recording still defaults *off* at runtime
//! until [`set_tracing`]`(true)`.

mod hist;
mod registry;
mod slow;
mod trace;

pub use hist::{
    bucket_bounds, bucket_index, HistogramSnapshot, LatencyHistogram, NUM_BUCKETS, SUB_BITS,
    SUB_COUNT,
};
pub use registry::{
    global, Counter, Gauge, MetricsRegistry, MetricsSnapshot, METRICS_SCHEMA_VERSION,
};
pub use slow::{SlowLog, SlowRequest};
pub use trace::{
    mint_trace_id, now_ns, recent_spans, record_span, set_tracing, tracing_enabled, SpanKind,
    TraceEvent, TraceRing,
};

use serde::{Deserialize, Serialize};

/// Schema version stamped into every [`ObsReport`].
pub const OBS_REPORT_VERSION: u32 = 1;

/// The full scrape payload returned by the wire `Metrics` opcode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObsReport {
    /// Report schema version ([`OBS_REPORT_VERSION`] at capture time).
    pub schema_version: u32,
    /// Merged metrics: the server's own registry plus the process-wide
    /// [`global`] registry.
    pub metrics: MetricsSnapshot,
    /// Prometheus-style text exposition of `metrics`.
    pub exposition: String,
    /// The slow-request log (last N over the configured threshold).
    pub slow_requests: Vec<SlowRequest>,
    /// Recently retained spans across all tracing threads (empty unless
    /// the `probes` feature is on and tracing is enabled).
    pub spans: Vec<TraceEvent>,
}

impl ObsReport {
    /// Builds a report from a server registry (merged with the global
    /// registry), a slow log, and the tracer's retained spans.
    #[must_use]
    pub fn capture(server_registry: &MetricsRegistry, slow_log: &SlowLog) -> Self {
        let mut metrics = server_registry.snapshot();
        metrics.merge(&global().snapshot());
        let exposition = metrics.render_text();
        ObsReport {
            schema_version: OBS_REPORT_VERSION,
            metrics,
            exposition,
            slow_requests: slow_log.snapshot(),
            spans: recent_spans(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_report_captures_and_round_trips() {
        let reg = MetricsRegistry::new();
        reg.counter("wire.op.query").add(3);
        let slow = SlowLog::new(4, 0);
        slow.observe(9, "Query", 1234);
        let report = ObsReport::capture(&reg, &slow);
        assert_eq!(report.schema_version, OBS_REPORT_VERSION);
        assert_eq!(report.metrics.counters["wire.op.query"], 3);
        assert!(report.exposition.contains("wire_op_query 3"));
        assert_eq!(report.slow_requests.len(), 1);
        let back: ObsReport = serde::from_value(serde::to_value(&report).unwrap()).unwrap();
        assert_eq!(back, report);
    }
}
