//! Bounded per-thread ring-buffer event tracer.
//!
//! Each recording thread owns a fixed-capacity ring of seqlock-style
//! slots: a writer claims a slot with one `fetch_add` on its own ring's
//! head (uncontended — no other thread writes that ring), marks the
//! slot's sequence odd while the fields land, then publishes it even.
//! Readers ([`recent_spans`]) sample every registered ring without
//! stopping writers, discarding slots whose sequence moved mid-read.
//! When a ring wraps, the oldest events are overwritten: drop-oldest,
//! never block, never allocate on the record path (the ring itself is
//! allocated once on a thread's first span — steady state is zero-alloc,
//! pinned by this crate's counting-allocator test).
//!
//! ## Probes
//!
//! The free functions ([`record_span`], [`now_ns`], [`tracing_enabled`],
//! …) are the *probe surface* hot paths call unconditionally. With the
//! `probes` cargo feature off (the default) they are `#[inline(always)]`
//! no-op shims — `tracing_enabled()` is a compile-time `false`, so guarded
//! instrumentation folds away entirely. With `probes` on, recording is
//! still gated behind a runtime switch ([`set_tracing`]) so one binary can
//! measure instrumented and uninstrumented throughput back to back.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// What a span measured. Codes are stable wire/ring values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpanKind {
    /// Wire server: reading + decoding one request frame.
    WireDecode,
    /// Wire server: encoding + writing one response frame.
    WireRespond,
    /// Serve engine: a job's wait in a shard queue before pickup.
    QueueWait,
    /// Serve engine: a shard serving one micro-batch of verdicts.
    Verdict,
    /// Monitor internals: the network forward pass.
    Forward,
    /// Monitor internals: abstracting activations to a pattern word.
    Abstraction,
    /// Monitor internals: the pattern-set membership query.
    Membership,
    /// Store: absorbing a batch of fresh patterns.
    StoreAbsorb,
    /// Store: appending a record to the tail segment.
    StoreAppend,
    /// Store: sealing the tail into an immutable segment.
    StoreSeal,
    /// Store: compacting sealed segments.
    StoreCompact,
    /// Registry: an atomic active-version flip (hot swap).
    HotSwapFlip,
}

impl SpanKind {
    /// Stable numeric code (used in ring slots).
    #[must_use]
    pub fn code(self) -> u64 {
        match self {
            SpanKind::WireDecode => 1,
            SpanKind::WireRespond => 2,
            SpanKind::QueueWait => 3,
            SpanKind::Verdict => 4,
            SpanKind::Forward => 5,
            SpanKind::Abstraction => 6,
            SpanKind::Membership => 7,
            SpanKind::StoreAbsorb => 8,
            SpanKind::StoreAppend => 9,
            SpanKind::StoreSeal => 10,
            SpanKind::StoreCompact => 11,
            SpanKind::HotSwapFlip => 12,
        }
    }

    /// Inverse of [`code`](Self::code).
    #[must_use]
    pub fn from_code(code: u64) -> Option<SpanKind> {
        Some(match code {
            1 => SpanKind::WireDecode,
            2 => SpanKind::WireRespond,
            3 => SpanKind::QueueWait,
            4 => SpanKind::Verdict,
            5 => SpanKind::Forward,
            6 => SpanKind::Abstraction,
            7 => SpanKind::Membership,
            8 => SpanKind::StoreAbsorb,
            9 => SpanKind::StoreAppend,
            10 => SpanKind::StoreSeal,
            11 => SpanKind::StoreCompact,
            12 => SpanKind::HotSwapFlip,
            _ => return None,
        })
    }
}

/// One recorded span. `trace_id == 0` means "not attached to a trace".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// The request trace this span belongs to (0: unattached).
    pub trace_id: u64,
    /// What was measured.
    pub kind: SpanKind,
    /// Start time, nanoseconds since the process clock origin.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Kind-specific payload (shard index, batch size, byte count, …).
    pub detail: u64,
}

struct Slot {
    seq: AtomicU64,
    trace_id: AtomicU64,
    kind: AtomicU64,
    start_ns: AtomicU64,
    dur_ns: AtomicU64,
    detail: AtomicU64,
}

impl Slot {
    fn empty() -> Self {
        Slot {
            seq: AtomicU64::new(0),
            trace_id: AtomicU64::new(0),
            kind: AtomicU64::new(0),
            start_ns: AtomicU64::new(0),
            dur_ns: AtomicU64::new(0),
            detail: AtomicU64::new(0),
        }
    }
}

/// A bounded, drop-oldest span ring. One per recording thread in the
/// global tracer; also constructible standalone (tests, embedding).
pub struct TraceRing {
    mask: usize,
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl TraceRing {
    /// A ring holding up to `capacity` events (rounded up to a power of
    /// two, minimum 8).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(8).next_power_of_two();
        TraceRing {
            mask: capacity - 1,
            head: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Slot::empty()).collect(),
        }
    }

    /// Slots in the ring.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Events recorded over the ring's lifetime (recorded, not retained).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Records one event, overwriting the oldest if the ring is full.
    /// Never blocks, never allocates.
    #[inline]
    pub fn record(&self, event: TraceEvent) {
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[ticket as usize & self.mask];
        // Seqlock write protocol: odd while in flight, even when
        // published. Readers discard slots whose sequence moved.
        slot.seq.store(ticket * 2 + 1, Ordering::Release);
        slot.trace_id.store(event.trace_id, Ordering::Relaxed);
        slot.kind.store(event.kind.code(), Ordering::Relaxed);
        slot.start_ns.store(event.start_ns, Ordering::Relaxed);
        slot.dur_ns.store(event.dur_ns, Ordering::Relaxed);
        slot.detail.store(event.detail, Ordering::Relaxed);
        slot.seq.store(ticket * 2 + 2, Ordering::Release);
    }

    /// The currently retained events, oldest first, skipping any slot a
    /// concurrent writer had in flight.
    #[must_use]
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut out: Vec<(u64, TraceEvent)> = Vec::with_capacity(self.capacity());
        for slot in self.slots.iter() {
            for _attempt in 0..2 {
                let seq_before = slot.seq.load(Ordering::Acquire);
                if seq_before == 0 || seq_before % 2 == 1 {
                    break; // never written, or mid-write: skip
                }
                let trace_id = slot.trace_id.load(Ordering::Relaxed);
                let kind = slot.kind.load(Ordering::Relaxed);
                let start_ns = slot.start_ns.load(Ordering::Relaxed);
                let dur_ns = slot.dur_ns.load(Ordering::Relaxed);
                let detail = slot.detail.load(Ordering::Relaxed);
                let seq_after = slot.seq.load(Ordering::Acquire);
                if seq_before == seq_after {
                    if let Some(kind) = SpanKind::from_code(kind) {
                        out.push((
                            seq_before,
                            TraceEvent {
                                trace_id,
                                kind,
                                start_ns,
                                dur_ns,
                                detail,
                            },
                        ));
                    }
                    break;
                }
            }
        }
        out.sort_by_key(|(seq, _)| *seq);
        out.into_iter().map(|(_, event)| event).collect()
    }
}

impl std::fmt::Debug for TraceRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRing")
            .field("capacity", &self.capacity())
            .field("recorded", &self.recorded())
            .finish()
    }
}

/// Mints a process-unique non-zero trace id (splitmix64 over a counter).
///
/// Always available — servers mint ids for requests that arrive without
/// one; clients may instead supply their own (e.g. seeded, for
/// reproducible traces).
#[must_use]
pub fn mint_trace_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0x9E37_79B9_7F4A_7C15);
    let mut z = NEXT.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    z.max(1)
}

#[cfg(feature = "probes")]
mod live {
    use super::{TraceEvent, TraceRing};
    use std::cell::OnceCell;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex, OnceLock};
    use std::time::Instant;

    /// Capacity of each thread's span ring.
    pub const PER_THREAD_RING_CAPACITY: usize = 1024;

    /// Registered rings are kept alive past thread exit so spans from
    /// short-lived threads (per-connection handlers) survive until
    /// scraped; this caps how many orphaned rings are retained.
    const MAX_RINGS: usize = 512;

    static TRACING: AtomicBool = AtomicBool::new(false);
    static RINGS: Mutex<Vec<Arc<TraceRing>>> = Mutex::new(Vec::new());

    thread_local! {
        static LOCAL_RING: OnceCell<Arc<TraceRing>> = const { OnceCell::new() };
    }

    fn clock_origin() -> &'static Instant {
        static ORIGIN: OnceLock<Instant> = OnceLock::new();
        ORIGIN.get_or_init(Instant::now)
    }

    pub fn set_tracing(enabled: bool) {
        // Pin the clock origin before the first span so timestamps are
        // comparable across threads.
        let _ = clock_origin();
        TRACING.store(enabled, Ordering::SeqCst);
    }

    #[inline]
    pub fn tracing_enabled() -> bool {
        TRACING.load(Ordering::Relaxed)
    }

    #[inline]
    pub fn now_ns() -> u64 {
        clock_origin().elapsed().as_nanos() as u64
    }

    #[inline]
    pub fn record_event(event: TraceEvent) {
        if !tracing_enabled() {
            return;
        }
        LOCAL_RING.with(|cell| {
            let ring = cell.get_or_init(|| {
                let ring = Arc::new(TraceRing::with_capacity(PER_THREAD_RING_CAPACITY));
                let mut rings = RINGS
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                if rings.len() >= MAX_RINGS {
                    // Evict the oldest orphaned ring (its thread exited:
                    // only the registry still holds it).
                    if let Some(pos) = rings.iter().position(|r| Arc::strong_count(r) == 1) {
                        rings.remove(pos);
                    }
                }
                rings.push(Arc::clone(&ring));
                ring
            });
            ring.record(event);
        });
    }

    pub fn recent_spans() -> Vec<TraceEvent> {
        let rings: Vec<Arc<TraceRing>> = RINGS
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        let mut out = Vec::new();
        for ring in rings {
            out.extend(ring.snapshot());
        }
        out.sort_by_key(|event| (event.start_ns, event.kind.code()));
        out
    }
}

// --- probe surface ---------------------------------------------------------

/// Turns span recording on or off at runtime. No-op without `probes`.
#[cfg(feature = "probes")]
pub fn set_tracing(enabled: bool) {
    live::set_tracing(enabled);
}

/// Whether spans are currently being recorded. Compile-time `false`
/// without `probes`, so `if tracing_enabled() { … }` folds away.
#[cfg(feature = "probes")]
#[inline]
#[must_use]
pub fn tracing_enabled() -> bool {
    live::tracing_enabled()
}

/// Nanoseconds since the process trace-clock origin.
#[cfg(feature = "probes")]
#[inline]
#[must_use]
pub fn now_ns() -> u64 {
    live::now_ns()
}

/// Records one span into the calling thread's ring (drop-oldest).
#[cfg(feature = "probes")]
#[inline]
pub fn record_span(trace_id: u64, kind: SpanKind, start_ns: u64, dur_ns: u64, detail: u64) {
    live::record_event(TraceEvent {
        trace_id,
        kind,
        start_ns,
        dur_ns,
        detail,
    });
}

/// Every retained span across all threads, ordered by start time.
#[cfg(feature = "probes")]
#[must_use]
pub fn recent_spans() -> Vec<TraceEvent> {
    live::recent_spans()
}

/// No-op shim: probes are compiled out (`probes` feature off).
#[cfg(not(feature = "probes"))]
#[inline(always)]
pub fn set_tracing(_enabled: bool) {}

/// No-op shim: always `false` (a compile-time constant) without `probes`.
#[cfg(not(feature = "probes"))]
#[inline(always)]
#[must_use]
pub fn tracing_enabled() -> bool {
    false
}

/// No-op shim: always `0` without `probes`.
#[cfg(not(feature = "probes"))]
#[inline(always)]
#[must_use]
pub fn now_ns() -> u64 {
    0
}

/// No-op shim: discards the span without `probes`.
#[cfg(not(feature = "probes"))]
#[inline(always)]
pub fn record_span(_trace_id: u64, _kind: SpanKind, _start_ns: u64, _dur_ns: u64, _detail: u64) {}

/// No-op shim: always empty without `probes`.
#[cfg(not(feature = "probes"))]
#[inline(always)]
#[must_use]
pub fn recent_spans() -> Vec<TraceEvent> {
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_retains_newest_and_drops_oldest() {
        let ring = TraceRing::with_capacity(8);
        for i in 0..20u64 {
            ring.record(TraceEvent {
                trace_id: 1,
                kind: SpanKind::Verdict,
                start_ns: i,
                dur_ns: 1,
                detail: i,
            });
        }
        let events = ring.snapshot();
        assert_eq!(events.len(), 8);
        // Oldest first, and exactly the last 8 recorded survive.
        let details: Vec<u64> = events.iter().map(|e| e.detail).collect();
        assert_eq!(details, (12..20).collect::<Vec<u64>>());
        assert_eq!(ring.recorded(), 20);
    }

    #[test]
    fn span_kind_codes_round_trip() {
        for kind in [
            SpanKind::WireDecode,
            SpanKind::WireRespond,
            SpanKind::QueueWait,
            SpanKind::Verdict,
            SpanKind::Forward,
            SpanKind::Abstraction,
            SpanKind::Membership,
            SpanKind::StoreAbsorb,
            SpanKind::StoreAppend,
            SpanKind::StoreSeal,
            SpanKind::StoreCompact,
            SpanKind::HotSwapFlip,
        ] {
            assert_eq!(SpanKind::from_code(kind.code()), Some(kind), "{kind:?}");
        }
        assert_eq!(SpanKind::from_code(0), None);
        assert_eq!(SpanKind::from_code(999), None);
    }

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let ids: std::collections::HashSet<u64> = (0..1000).map(|_| mint_trace_id()).collect();
        assert_eq!(ids.len(), 1000);
        assert!(!ids.contains(&0));
    }

    #[test]
    fn trace_event_serde_round_trips() {
        let event = TraceEvent {
            trace_id: 42,
            kind: SpanKind::QueueWait,
            start_ns: 100,
            dur_ns: 7,
            detail: 3,
        };
        let back: TraceEvent = serde::from_value(serde::to_value(&event).unwrap()).unwrap();
        assert_eq!(back, event);
    }

    // The no-op shim contract: with `probes` off, the probe surface is
    // inert — nothing records, the runtime switch has no effect, and the
    // clock reads zero. This is the test the feature-matrix CI leg runs
    // with the feature off to prove instrumented call sites cost nothing.
    #[cfg(not(feature = "probes"))]
    #[test]
    fn shims_are_no_ops_without_probes() {
        set_tracing(true);
        assert!(!tracing_enabled());
        assert_eq!(now_ns(), 0);
        record_span(1, SpanKind::Verdict, 0, 1, 0);
        assert!(recent_spans().is_empty());
    }

    #[cfg(feature = "probes")]
    #[test]
    fn live_probes_record_across_threads() {
        set_tracing(true);
        let t0 = now_ns();
        record_span(77, SpanKind::WireDecode, t0, 5, 0);
        let handle = std::thread::spawn(move || {
            record_span(77, SpanKind::Verdict, t0 + 10, 5, 1);
        });
        handle.join().unwrap();
        let spans: Vec<TraceEvent> = recent_spans()
            .into_iter()
            .filter(|e| e.trace_id == 77)
            .collect();
        let kinds: Vec<SpanKind> = spans.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&SpanKind::WireDecode));
        assert!(kinds.contains(&SpanKind::Verdict));
    }
}
