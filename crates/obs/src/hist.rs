//! Log2-bucketed latency histograms: a lock-free atomic recorder
//! ([`LatencyHistogram`]) and its plain mergeable snapshot
//! ([`HistogramSnapshot`]).
//!
//! ## Bucketing
//!
//! Values are nanoseconds (`u64`). The first [`SUB_COUNT`] values (`0..16`)
//! each get an exact bucket; every octave above that is split into
//! [`SUB_COUNT`] linear sub-buckets (an HDR-style layout), so the relative
//! width of any bucket is at most `1/16` (≈ 6.25%). Quantile queries return
//! the *exact bounds* of the bucket holding the rank — a `(lo, hi)` bracket
//! guaranteed to contain the true order statistic — rather than a point
//! estimate, so p50/p90/p99/p999 figures are never silently wrong by more
//! than the bucket width.
//!
//! The full `u64` range is covered: the top bucket's upper bound is
//! `u64::MAX`, so no sample is ever out of range.

use serde::{de, Deserialize, Deserializer, Serialize, Serializer};
use std::sync::atomic::{AtomicU64, Ordering};

/// log2 of the number of linear sub-buckets per octave.
pub const SUB_BITS: u32 = 4;
/// Linear sub-buckets per octave (and width of the exact low range).
pub const SUB_COUNT: usize = 1 << SUB_BITS;
/// Total number of buckets needed to cover all of `u64`.
///
/// Values `0..16` take one bucket each; octaves with most-significant bit
/// `4..=63` contribute [`SUB_COUNT`] buckets apiece.
pub const NUM_BUCKETS: usize = SUB_COUNT + (64 - SUB_BITS as usize) * SUB_COUNT;

/// The bucket index holding `value`. Always `< NUM_BUCKETS`.
#[inline]
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    if value < SUB_COUNT as u64 {
        value as usize
    } else {
        let msb = 63 - value.leading_zeros(); // >= SUB_BITS
        let sub = ((value >> (msb - SUB_BITS)) & (SUB_COUNT as u64 - 1)) as usize;
        (((msb - SUB_BITS + 1) as usize) << SUB_BITS) | sub
    }
}

/// The inclusive `(lo, hi)` value range of bucket `index`.
///
/// Inverse of [`bucket_index`]: for every `v`,
/// `bucket_bounds(bucket_index(v)).0 <= v <= bucket_bounds(bucket_index(v)).1`.
///
/// # Panics
///
/// Panics if `index >= NUM_BUCKETS`.
#[must_use]
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < NUM_BUCKETS, "bucket index {index} out of range");
    if index < SUB_COUNT {
        (index as u64, index as u64)
    } else {
        let msb = (index >> SUB_BITS) as u32 + SUB_BITS - 1;
        let sub = (index & (SUB_COUNT - 1)) as u64;
        let width = 1u64 << (msb - SUB_BITS);
        let lo = (1u64 << msb) + sub * width;
        (lo, lo + (width - 1))
    }
}

/// A lock-free latency histogram: atomic `u64` buckets plus count / sum /
/// min / max, recordable from any number of threads concurrently.
///
/// All updates are `Relaxed` single-word atomics — there is no lock and no
/// CAS loop (min/max use `fetch_min`/`fetch_max`). Read it by taking a
/// [`snapshot`](Self::snapshot); snapshots are plain data, serializable and
/// mergeable across shards.
pub struct LatencyHistogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: Box<[AtomicU64]>,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Records one sample. Lock-free; callable from any thread.
    #[inline]
    pub fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A plain-data copy of the current state.
    ///
    /// Taken bucket-by-bucket without stopping writers, so a snapshot racing
    /// concurrent records may be off by the in-flight samples — each bucket
    /// value is itself exact.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut snap = HistogramSnapshot::new();
        snap.count = self.count.load(Ordering::Relaxed);
        snap.sum = self.sum.load(Ordering::Relaxed);
        snap.min = self.min.load(Ordering::Relaxed);
        snap.max = self.max.load(Ordering::Relaxed);
        for (dst, src) in snap.buckets.iter_mut().zip(self.buckets.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        snap
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count())
            .finish_non_exhaustive()
    }
}

/// Plain-data histogram state: single-writer recording, mergeable across
/// shards, serializable (sparse — only non-empty buckets are encoded).
///
/// This is the type shard reports carry: each shard owns one and records
/// into it without atomics; aggregation [`merge`](Self::merge)s them.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: Vec<u64>,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::new()
    }
}

impl HistogramSnapshot {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: vec![0; NUM_BUCKETS],
        }
    }

    /// Records one sample (single-writer; no allocation).
    ///
    /// The sum wraps on overflow (matching the atomic recorder's
    /// `fetch_add`); unreachable for realistic nanosecond workloads.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.wrapping_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[bucket_index(value)] += 1;
    }

    /// Records a (non-negative) nanosecond sample given as `f64`, as the
    /// serving path measures durations.
    #[inline]
    pub fn record_ns(&mut self, ns: f64) {
        self.record(if ns <= 0.0 { 0 } else { ns as u64 });
    }

    /// Samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all samples (`0.0` when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample (`0.0` when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min as f64
        }
    }

    /// Largest sample (`0.0` when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max as f64
        }
    }

    /// Sum of all samples.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Folds `other` into `self`. Associative and commutative: merging a
    /// set of shard histograms yields the same result in any order.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (dst, src) in self.buckets.iter_mut().zip(&other.buckets) {
            *dst += src;
        }
    }

    /// The exact `(lo, hi)` bound pair bracketing the `q`-quantile, or
    /// `None` when the histogram is empty.
    ///
    /// The bracket is a guarantee, not an estimate: the true order
    /// statistic `sorted[rank-1]` with `rank = clamp(ceil(q·count), 1,
    /// count)` satisfies `lo <= sorted[rank-1] <= hi`. The bounds are
    /// additionally clamped to the exact observed `[min, max]`.
    #[must_use]
    pub fn quantile_bounds(&self, q: f64) -> Option<(u64, u64)> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (index, &bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket;
            if cumulative >= rank {
                let (lo, hi) = bucket_bounds(index);
                return Some((lo.max(self.min), hi.min(self.max)));
            }
        }
        Some((self.min, self.max))
    }

    /// Midpoint of the `q`-quantile bracket (`0.0` when empty).
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        self.quantile_bounds(q)
            .map_or(0.0, |(lo, hi)| (lo as f64 + hi as f64) / 2.0)
    }

    /// Median bracket midpoint.
    #[must_use]
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 90th-percentile bracket midpoint.
    #[must_use]
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// 99th-percentile bracket midpoint.
    #[must_use]
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// 99.9th-percentile bracket midpoint.
    #[must_use]
    pub fn p999(&self) -> f64 {
        self.quantile(0.999)
    }

    /// Non-empty `(bucket_index, count)` pairs, low to high.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| (i, c))
    }
}

// The JSON form is sparse — `{count, sum, min, max, buckets: [[index,
// count], ...]}` — because a dense 976-slot array per shard would dominate
// every stats payload.
impl Serialize for HistogramSnapshot {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::{Map, Number, Value};
        let mut map = Map::new();
        map.insert("count".into(), Value::Number(Number::PosInt(self.count)));
        map.insert("sum".into(), Value::Number(Number::PosInt(self.sum)));
        map.insert("min".into(), Value::Number(Number::PosInt(self.min)));
        map.insert("max".into(), Value::Number(Number::PosInt(self.max)));
        let buckets = self
            .nonzero_buckets()
            .map(|(i, c)| {
                Value::Array(vec![
                    Value::Number(Number::PosInt(i as u64)),
                    Value::Number(Number::PosInt(c)),
                ])
            })
            .collect();
        map.insert("buckets".into(), Value::Array(buckets));
        serializer.serialize_value(Value::Object(map))
    }
}

impl<'de> Deserialize<'de> for HistogramSnapshot {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        use serde::Value;
        let value = deserializer.deserialize_value()?;
        let Value::Object(mut map) = value else {
            return Err(de::Error::custom("HistogramSnapshot: expected object"));
        };
        let take_u64 = |map: &mut serde::Map, field: &str| -> Result<u64, D::Error> {
            match map.remove(field) {
                Some(Value::Number(n)) => n.as_u64().ok_or_else(|| {
                    de::Error::custom(format!("HistogramSnapshot: field `{field}` out of range"))
                }),
                _ => Err(de::Error::custom(format!(
                    "HistogramSnapshot: missing numeric field `{field}`"
                ))),
            }
        };
        let mut snap = HistogramSnapshot::new();
        snap.count = take_u64(&mut map, "count")?;
        snap.sum = take_u64(&mut map, "sum")?;
        snap.min = take_u64(&mut map, "min")?;
        snap.max = take_u64(&mut map, "max")?;
        let Some(Value::Array(pairs)) = map.remove("buckets") else {
            return Err(de::Error::custom(
                "HistogramSnapshot: missing array field `buckets`",
            ));
        };
        for pair in pairs {
            let (index, bucket_count): (u64, u64) =
                serde::from_value(pair).map_err(de::Error::custom)?;
            let index = usize::try_from(index)
                .ok()
                .filter(|&i| i < NUM_BUCKETS)
                .ok_or_else(|| {
                    de::Error::custom(format!("HistogramSnapshot: bucket index {index} invalid"))
                })?;
            snap.buckets[index] += bucket_count;
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_bounds_are_inverse_at_edges() {
        // Every power-of-two boundary, its neighbours, and the extremes.
        let mut probes = vec![0u64, 1, 15, 16, 17, u64::MAX, u64::MAX - 1];
        for shift in 4..64 {
            let base = 1u64 << shift;
            probes.extend([base - 1, base, base + 1]);
        }
        for v in probes {
            let idx = bucket_index(v);
            assert!(idx < NUM_BUCKETS, "index {idx} out of range for {v}");
            let (lo, hi) = bucket_bounds(idx);
            assert!(lo <= v && v <= hi, "{v} outside bucket [{lo}, {hi}]");
        }
    }

    #[test]
    fn buckets_tile_u64_contiguously() {
        let mut expected_lo = 0u64;
        for index in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(index);
            assert_eq!(lo, expected_lo, "gap or overlap at bucket {index}");
            assert!(hi >= lo);
            if index == NUM_BUCKETS - 1 {
                assert_eq!(hi, u64::MAX, "top bucket must end at u64::MAX");
            } else {
                expected_lo = hi + 1;
            }
        }
    }

    #[test]
    fn atomic_and_plain_recorders_agree() {
        let atomic = LatencyHistogram::new();
        let mut plain = HistogramSnapshot::new();
        for v in [0u64, 3, 17, 250, 999, 12_345, 7_777_777, u64::MAX] {
            atomic.record(v);
            plain.record(v);
        }
        assert_eq!(atomic.snapshot(), plain);
    }

    #[test]
    fn quantiles_and_moments_on_known_data() {
        let mut h = HistogramSnapshot::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert!((h.mean() - 50.5).abs() < 1e-9);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 100.0);
        let (lo, hi) = h.quantile_bounds(0.5).unwrap();
        assert!(lo <= 50 && 50 <= hi, "p50 bracket [{lo},{hi}] misses 50");
        let (lo, hi) = h.quantile_bounds(0.99).unwrap();
        assert!(lo <= 99 && 99 <= hi, "p99 bracket [{lo},{hi}] misses 99");
        let (lo, hi) = h.quantile_bounds(1.0).unwrap();
        assert!(lo <= 100 && 100 <= hi);
        assert!(HistogramSnapshot::new().quantile_bounds(0.5).is_none());
    }

    #[test]
    fn serde_round_trip_is_lossless_and_sparse() {
        let mut h = HistogramSnapshot::new();
        for v in [0u64, 5, 1000, 1001, 1_000_000, u64::MAX] {
            h.record(v);
        }
        let value = serde::to_value(&h).unwrap();
        // Sparse: far fewer encoded buckets than NUM_BUCKETS.
        if let serde::Value::Object(map) = &value {
            if let Some(serde::Value::Array(pairs)) = map.get("buckets") {
                assert!(pairs.len() <= 6);
            } else {
                panic!("buckets must be an array");
            }
        } else {
            panic!("snapshot must serialize to an object");
        }
        let back: HistogramSnapshot = serde::from_value(value).unwrap();
        assert_eq!(back, h);
    }
}
