//! Differential tests: the packed `BitWord` query pipeline must be
//! bit-for-bit equivalent to a reference `Vec<bool>` implementation of the
//! seed's semantics — on both storage backends, across randomized monitors,
//! thresholds, training sets, and probes (seeded RNG, fully reproducible).
//!
//! The reference implementation below deliberately mirrors the *old* code:
//! explicit `Vec<bool>` words, explicit don't-care expansion, linear
//! Hamming scans. If the packed pipeline ever diverges from it, these tests
//! localize the disagreement to a concrete word.

use napmon_bdd::BitWord;
use napmon_core::{
    FeatureExtractor, Monitor, MonitorBuilder, MonitorKind, PatternBackend, PatternMonitor,
    QueryScratch,
};
use napmon_nn::{Activation, LayerSpec, Network};
use napmon_tensor::Prng;
use std::collections::HashSet;

/// Reference (seed-era) pattern store: unpacked words, SipHash set.
struct ReferenceStore {
    thresholds: Vec<f64>,
    words: HashSet<Vec<bool>>,
}

impl ReferenceStore {
    fn new(thresholds: Vec<f64>) -> Self {
        Self {
            thresholds,
            words: HashSet::new(),
        }
    }

    fn abstract_word(&self, features: &[f64]) -> Vec<bool> {
        features
            .iter()
            .zip(&self.thresholds)
            .map(|(v, c)| v > c)
            .collect()
    }

    fn absorb_point(&mut self, features: &[f64]) {
        let word = self.abstract_word(features);
        self.words.insert(word);
    }

    /// `word2set` by explicit enumeration, as the seed's hash backend did.
    fn absorb_cube(&mut self, cube: &[Option<bool>]) {
        let free: Vec<usize> = cube
            .iter()
            .enumerate()
            .filter(|(_, l)| l.is_none())
            .map(|(i, _)| i)
            .collect();
        for mask in 0u64..(1u64 << free.len()) {
            let mut w: Vec<bool> = cube.iter().map(|l| l.unwrap_or(false)).collect();
            for (bit, &pos) in free.iter().enumerate() {
                w[pos] = (mask >> bit) & 1 == 1;
            }
            self.words.insert(w);
        }
    }

    fn contains_word(&self, word: &[bool]) -> bool {
        self.words.contains(word)
    }

    fn contains_within(&self, word: &[bool], tau: usize) -> bool {
        self.words
            .iter()
            .any(|w| w.iter().zip(word).filter(|(a, b)| a != b).count() <= tau)
    }
}

fn monitor_pair(
    dim: usize,
    thresholds: &[f64],
    backend: PatternBackend,
) -> (Network, PatternMonitor) {
    // The network only anchors the extractor's dimension; queries below go
    // through `*_features` / packed words directly.
    let net = Network::seeded(7, 2, &[LayerSpec::dense(dim, Activation::Relu)]);
    let fx = FeatureExtractor::new(&net, 2).unwrap();
    let m = PatternMonitor::empty(fx, thresholds.to_vec(), backend).unwrap();
    (net, m)
}

fn random_cube(rng: &mut Prng, dim: usize, max_free: usize) -> Vec<Option<bool>> {
    let free = rng.sample_indices(dim, max_free.min(dim));
    (0..dim)
        .map(|i| {
            if free.contains(&i) {
                None
            } else {
                Some(rng.chance(0.5))
            }
        })
        .collect()
}

/// The cube an interval `[lo, hi]` abstracts to under thresholds `c`.
fn cube_of_bounds(lo: &[f64], hi: &[f64], thresholds: &[f64]) -> Vec<Option<bool>> {
    thresholds
        .iter()
        .enumerate()
        .map(|(j, &c)| {
            if lo[j] > c {
                Some(true)
            } else if hi[j] <= c {
                Some(false)
            } else {
                None
            }
        })
        .collect()
}

#[test]
fn abstract_word_matches_reference_on_randomized_inputs() {
    let mut rng = Prng::seed(1001);
    for trial in 0..50 {
        // Dimensions crossing the 64-bit limb boundary matter most.
        let dim = 1 + rng.index(100);
        let thresholds = rng.uniform_vec(dim, -1.0, 1.0);
        let (_, m) = monitor_pair(dim, &thresholds, PatternBackend::Bdd);
        let reference = ReferenceStore::new(thresholds);
        for _ in 0..20 {
            let features = rng.uniform_vec(dim, -2.0, 2.0);
            let expected = reference.abstract_word(&features);
            assert_eq!(m.abstract_word(&features), expected, "trial {trial}");
            let packed = m.abstract_bitword(&features);
            assert_eq!(packed.to_bools(), expected, "trial {trial} (packed)");
            let mut scratch_word = BitWord::default();
            m.abstract_into(&features, &mut scratch_word);
            assert_eq!(scratch_word, packed, "trial {trial} (scratch reuse)");
        }
    }
}

#[test]
fn membership_matches_reference_across_both_backends() {
    let mut rng = Prng::seed(1002);
    for trial in 0..30 {
        let dim = 1 + rng.index(80);
        let thresholds = rng.uniform_vec(dim, -1.0, 1.0);
        for backend in [PatternBackend::Bdd, PatternBackend::HashSet] {
            let (_, mut m) = monitor_pair(dim, &thresholds, backend);
            let mut reference = ReferenceStore::new(thresholds.clone());
            let mut stored_features = Vec::new();
            for _ in 0..1 + rng.index(30) {
                let features = rng.uniform_vec(dim, -2.0, 2.0);
                m.absorb_point(&features);
                reference.absorb_point(&features);
                stored_features.push(features);
            }
            // Probes: fresh random points plus stored points (guaranteed
            // members) plus near-misses of stored points.
            let mut probes: Vec<Vec<f64>> =
                (0..20).map(|_| rng.uniform_vec(dim, -2.0, 2.0)).collect();
            probes.extend(stored_features.iter().cloned());
            for f in stored_features.iter().take(5) {
                let mut near = f.clone();
                let flip = rng.index(dim);
                near[flip] = -near[flip] + 0.1;
                probes.push(near);
            }
            for probe in &probes {
                let word = reference.abstract_word(probe);
                let packed = m.abstract_bitword(probe);
                assert_eq!(
                    m.contains_word(&word),
                    reference.contains_word(&word),
                    "{backend:?} trial {trial} word {word:?}"
                );
                assert_eq!(
                    m.contains_packed(&packed),
                    reference.contains_word(&word),
                    "{backend:?} trial {trial} packed {packed:?}"
                );
            }
        }
    }
}

#[test]
fn hamming_tolerance_matches_reference_across_both_backends() {
    let mut rng = Prng::seed(1003);
    for trial in 0..20 {
        let dim = 2 + rng.index(40);
        let thresholds = rng.uniform_vec(dim, -1.0, 1.0);
        for backend in [PatternBackend::Bdd, PatternBackend::HashSet] {
            let (_, mut m) = monitor_pair(dim, &thresholds, backend);
            let mut reference = ReferenceStore::new(thresholds.clone());
            for _ in 0..1 + rng.index(15) {
                let features = rng.uniform_vec(dim, -2.0, 2.0);
                m.absorb_point(&features);
                reference.absorb_point(&features);
            }
            for _ in 0..15 {
                let probe = rng.uniform_vec(dim, -2.0, 2.0);
                let word = reference.abstract_word(&probe);
                let packed = BitWord::from_bools(&word);
                for tau in 0..4 {
                    let expected = reference.contains_within(&word, tau);
                    assert_eq!(
                        m.contains_within(&word, tau),
                        expected,
                        "{backend:?} trial {trial} tau {tau}"
                    );
                    assert_eq!(
                        m.contains_within_packed(&packed, tau),
                        expected,
                        "{backend:?} trial {trial} tau {tau} (packed)"
                    );
                }
            }
        }
    }
}

#[test]
fn robust_cube_insertion_matches_reference_expansion() {
    let mut rng = Prng::seed(1004);
    for trial in 0..20 {
        let dim = 2 + rng.index(24);
        // Thresholds at 0 so cubes can be steered through interval bounds.
        let thresholds = vec![0.0; dim];
        for backend in [PatternBackend::Bdd, PatternBackend::HashSet] {
            let (_, mut m) = monitor_pair(dim, &thresholds, backend);
            let mut reference = ReferenceStore::new(thresholds.clone());
            for _ in 0..1 + rng.index(8) {
                let cube = random_cube(&mut rng, dim, 6);
                // Realize the cube as interval bounds: determined bits get a
                // definite sign, don't-cares straddle the threshold.
                let (lo, hi): (Vec<f64>, Vec<f64>) = cube
                    .iter()
                    .map(|l| match l {
                        Some(true) => (0.5, 1.0),
                        Some(false) => (-1.0, -0.5),
                        None => (-0.5, 0.5),
                    })
                    .unzip();
                assert_eq!(
                    cube_of_bounds(&lo, &hi, &thresholds),
                    cube,
                    "cube realization"
                );
                m.absorb_bounds(&napmon_absint::BoxBounds::new(lo, hi));
                reference.absorb_cube(&cube);
            }
            assert_eq!(
                m.pattern_count(),
                reference.words.len() as f64,
                "{backend:?} trial {trial} pattern count"
            );
            for _ in 0..30 {
                let word: Vec<bool> = (0..dim).map(|_| rng.chance(0.5)).collect();
                assert_eq!(
                    m.contains_word(&word),
                    reference.contains_word(&word),
                    "{backend:?} trial {trial} word {word:?}"
                );
            }
        }
    }
}

#[test]
fn interval_monitor_packed_encoding_matches_unpacked_symbols() {
    let mut rng = Prng::seed(1005);
    for _ in 0..20 {
        let dim = 1 + rng.index(20);
        let bits = 1 + rng.index(3);
        let per_neuron = (1usize << bits) - 1;
        let thresholds: Vec<Vec<f64>> = (0..dim)
            .map(|_| {
                let mut t = rng.uniform_vec(per_neuron, -1.0, 1.0);
                t.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
                for i in 1..t.len() {
                    if t[i] <= t[i - 1] {
                        t[i] = t[i - 1] + 1e-9;
                    }
                }
                t
            })
            .collect();
        let net = Network::seeded(7, 2, &[LayerSpec::dense(dim, Activation::Relu)]);
        let fx = FeatureExtractor::new(&net, 2).unwrap();
        let mut m = napmon_core::IntervalPatternMonitor::empty(fx, bits, thresholds).unwrap();
        let train: Vec<Vec<f64>> = (0..10).map(|_| rng.uniform_vec(dim, -2.0, 2.0)).collect();
        for f in &train {
            m.absorb_point(f);
        }
        for _ in 0..30 {
            let probe = rng.uniform_vec(dim, -2.0, 2.0);
            // Reference encoding: symbols flattened MSB-first, as the seed
            // implementation did.
            let reference: Vec<bool> = m
                .abstract_symbols(&probe)
                .iter()
                .flat_map(|&s| (0..bits).rev().map(move |b| (s >> b) & 1 == 1))
                .collect();
            let packed = m.abstract_bitword(&probe);
            assert_eq!(packed.to_bools(), reference);
            assert_eq!(m.contains(&probe), m.contains_packed(&packed));
        }
    }
}

#[test]
fn query_batch_agrees_with_sequential_verdicts() {
    let net = Network::seeded(
        51,
        4,
        &[
            LayerSpec::dense(24, Activation::Relu),
            LayerSpec::dense(12, Activation::Relu),
            LayerSpec::dense(3, Activation::Identity),
        ],
    );
    let mut rng = Prng::seed(1006);
    let train: Vec<Vec<f64>> = (0..96).map(|_| rng.uniform_vec(4, -0.5, 0.5)).collect();
    let probes: Vec<Vec<f64>> = (0..200).map(|_| rng.uniform_vec(4, -1.5, 1.5)).collect();
    for kind in [
        MonitorKind::min_max(),
        MonitorKind::pattern(),
        MonitorKind::pattern_with(
            napmon_core::ThresholdPolicy::Mean,
            PatternBackend::HashSet,
            1,
        ),
        MonitorKind::interval(2),
    ] {
        let m = MonitorBuilder::new(&net, 4)
            .build(kind.clone(), &train)
            .unwrap();
        let sequential: Vec<_> = probes.iter().map(|x| m.verdict(&net, x).unwrap()).collect();
        let batch = m.query_batch(&net, &probes).unwrap();
        let parallel = m.query_batch_parallel(&net, &probes).unwrap();
        assert_eq!(batch, sequential, "{kind:?} batch != sequential");
        assert_eq!(parallel, sequential, "{kind:?} parallel != sequential");
        // Scratch-path single queries agree too.
        let mut scratch = QueryScratch::new();
        for (x, expected) in probes.iter().zip(&sequential) {
            let got = m.verdict_scratch(&net, x, &mut scratch).unwrap();
            assert_eq!(&got, expected, "{kind:?} scratch verdict");
        }
    }
}

/// The bit-sliced batch kernel engages for hash-backed monitors with
/// `tau > 0`; pin it against per-input verdicts at widths that cross the
/// 64-bit limb boundary and at every tau the kernel's counter planes cover.
#[test]
fn sliced_batch_kernel_agrees_with_sequential_across_limb_boundary() {
    let mut rng = Prng::seed(1009);
    for width in [63, 64, 65, 100] {
        let net = Network::seeded(
            60 + width as u64,
            4,
            &[
                LayerSpec::dense(width, Activation::Relu),
                LayerSpec::dense(3, Activation::Identity),
            ],
        );
        let train: Vec<Vec<f64>> = (0..300).map(|_| rng.uniform_vec(4, -0.5, 0.5)).collect();
        let probes: Vec<Vec<f64>> = (0..150).map(|_| rng.uniform_vec(4, -1.5, 1.5)).collect();
        for tau in 1..4usize {
            let m = MonitorBuilder::new(&net, 2)
                .build(
                    MonitorKind::pattern_with(
                        napmon_core::ThresholdPolicy::Mean,
                        PatternBackend::HashSet,
                        tau,
                    ),
                    &train,
                )
                .unwrap();
            let sequential: Vec<_> = probes.iter().map(|x| m.verdict(&net, x).unwrap()).collect();
            let batch = m.query_batch(&net, &probes).unwrap();
            assert_eq!(batch, sequential, "width {width} tau {tau}");
        }
    }
}

#[test]
fn batch_apis_propagate_dimension_errors() {
    let net = Network::seeded(51, 4, &[LayerSpec::dense(8, Activation::Relu)]);
    let mut rng = Prng::seed(1007);
    let train: Vec<Vec<f64>> = (0..16).map(|_| rng.uniform_vec(4, -0.5, 0.5)).collect();
    let m = MonitorBuilder::new(&net, 2)
        .build(MonitorKind::pattern(), &train)
        .unwrap();
    let bad = vec![vec![0.0; 4], vec![0.0; 3]];
    assert!(m.query_batch(&net, &bad).is_err());
    assert!(m.query_batch_parallel(&net, &bad).is_err());
}

#[test]
fn multi_layer_and_per_class_batches_agree_with_sequential() {
    let net = Network::seeded(
        52,
        3,
        &[
            LayerSpec::dense(10, Activation::Relu),
            LayerSpec::dense(6, Activation::Relu),
            LayerSpec::dense(2, Activation::Identity),
        ],
    );
    let mut rng = Prng::seed(1008);
    let train: Vec<Vec<f64>> = (0..64).map(|_| rng.uniform_vec(3, -0.5, 0.5)).collect();
    let probes: Vec<Vec<f64>> = (0..120).map(|_| rng.uniform_vec(3, -1.5, 1.5)).collect();

    let m2 = MonitorBuilder::new(&net, 2)
        .build(MonitorKind::pattern(), &train)
        .unwrap();
    let m4 = MonitorBuilder::new(&net, 4)
        .build(MonitorKind::min_max(), &train)
        .unwrap();
    let mm = napmon_core::MultiLayerMonitor::new(vec![m2, m4], napmon_core::Vote::Any);
    let sequential: Vec<_> = probes
        .iter()
        .map(|x| mm.verdict(&net, x).unwrap())
        .collect();
    assert_eq!(mm.query_batch(&net, &probes).unwrap(), sequential);
    assert_eq!(mm.query_batch_parallel(&net, &probes).unwrap(), sequential);

    let labels: Vec<usize> = train.iter().map(|x| net.predict_class(x)).collect();
    if labels.contains(&0) && labels.contains(&1) {
        let pc = MonitorBuilder::new(&net, 4)
            .build_per_class(MonitorKind::pattern(), &train, &labels, 2)
            .unwrap();
        let sequential: Vec<_> = probes
            .iter()
            .map(|x| pc.verdict(&net, x).unwrap())
            .collect();
        assert_eq!(pc.query_batch(&net, &probes).unwrap(), sequential);
        assert_eq!(pc.query_batch_parallel(&net, &probes).unwrap(), sequential);
    }
}
