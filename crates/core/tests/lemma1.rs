//! Property tests for the paper's Lemma 1 — the provable-robustness claim.
//!
//! Lemma 1: if a robust monitor `M⟨G,k,kp,Δ⟩` warns on `v_op`, then there is
//! **no** training input `v_tr` with `|G^{kp}_j(v_op) − G^{kp}_j(v_tr)| ≤ Δ`
//! for all `j`. We test the contrapositive, which is how the guarantee is
//! used in practice: any operational input that *is* `Δ`-close (at boundary
//! `kp`) to some training input must not trigger a warning.

use napmon_absint::Domain;
use napmon_core::{Monitor, MonitorBuilder, MonitorKind};
use napmon_nn::{Activation, LayerSpec, Network};
use napmon_tensor::Prng;
use proptest::prelude::*;

fn network(seed: u64) -> Network {
    Network::seeded(
        seed,
        3,
        &[
            LayerSpec::dense(10, Activation::Relu),
            LayerSpec::dense(6, Activation::Relu),
            LayerSpec::dense(2, Activation::Identity),
        ],
    )
}

fn training_set(seed: u64, n: usize) -> Vec<Vec<f64>> {
    let mut rng = Prng::seed(seed);
    (0..n).map(|_| rng.uniform_vec(3, -1.0, 1.0)).collect()
}

/// All monitor kinds exercised against Lemma 1.
fn kinds() -> Vec<MonitorKind> {
    vec![
        MonitorKind::min_max(),
        MonitorKind::pattern(),
        MonitorKind::interval(2),
        MonitorKind::interval(3),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Perturbation at the input layer (kp = 0): for every monitor family,
    /// every Δ-bounded input perturbation of a training point is accepted.
    #[test]
    fn lemma1_input_layer_perturbations(
        net_seed in 0u64..500,
        data_seed in 0u64..500,
        delta in 0.001f64..0.2,
        pick in 0usize..24,
        dir in proptest::collection::vec(-1.0f64..1.0, 3),
    ) {
        let net = network(net_seed);
        let data = training_set(data_seed, 24);
        for kind in kinds() {
            let monitor = MonitorBuilder::new(&net, 4)
                .robust(delta, 0, Domain::Box)
                .build(kind.clone(), &data)
                .unwrap();
            let base = &data[pick % data.len()];
            let v_op: Vec<f64> = base.iter().zip(&dir).map(|(b, d)| b + d * delta).collect();
            prop_assert!(
                !monitor.warns(&net, &v_op).unwrap(),
                "{kind:?} warned on a Δ-close input (Δ = {delta})"
            );
        }
    }

    /// Perturbation at a hidden boundary (kp = 2): closeness is measured in
    /// feature space `G^{kp}`; we construct v_op = v_tr (exactly Δ-close for
    /// any Δ) plus check feature-space-perturbed queries via the feature
    /// interface.
    #[test]
    fn lemma1_hidden_boundary_perturbations(
        net_seed in 0u64..500,
        data_seed in 0u64..500,
        delta in 0.001f64..0.1,
        pick in 0usize..16,
        dir_seed in 0u64..1000,
    ) {
        let net = network(net_seed);
        let data = training_set(data_seed, 16);
        let kp = 2usize;
        let k = 4usize;
        for kind in kinds() {
            let monitor = MonitorBuilder::new(&net, k)
                .robust(delta, kp, Domain::Box)
                .build(kind.clone(), &data)
                .unwrap();
            // Perturb the layer-kp image directly and push it to layer k:
            // this is exactly the v̆ of Definition 1.
            let mut rng = Prng::seed(dir_seed);
            let at_kp = net.forward_prefix(&data[pick % data.len()], kp);
            let perturbed: Vec<f64> = at_kp.iter().map(|&v| v + rng.uniform(-delta, delta)).collect();
            let features = net.forward_range(&perturbed, kp, k);
            prop_assert!(
                !monitor.warns_features(&features),
                "{kind:?} warned on a feature-space Δ-close point"
            );
        }
    }

    /// Monotonicity in Δ: a monitor built with a larger Δ accepts
    /// everything a smaller-Δ monitor accepts.
    #[test]
    fn robust_monitors_are_monotone_in_delta(
        net_seed in 0u64..200,
        data_seed in 0u64..200,
        d_small in 0.001f64..0.05,
        growth in 1.5f64..4.0,
        probe in proptest::collection::vec(-1.5f64..1.5, 3),
    ) {
        let net = network(net_seed);
        let data = training_set(data_seed, 16);
        let d_large = d_small * growth;
        for kind in kinds() {
            let small = MonitorBuilder::new(&net, 4)
                .robust(d_small, 0, Domain::Box)
                .build(kind.clone(), &data)
                .unwrap();
            let large = MonitorBuilder::new(&net, 4)
                .robust(d_large, 0, Domain::Box)
                .build(kind.clone(), &data)
                .unwrap();
            // If the small monitor accepts, the large one must too.
            if !small.warns(&net, &probe).unwrap() {
                prop_assert!(
                    !large.warns(&net, &probe).unwrap(),
                    "{kind:?} not monotone in Δ"
                );
            }
        }
    }

    /// Standard monitors are a special case: robust construction with
    /// Δ = 0 accepts exactly what the standard construction accepts
    /// (up to the outward rounding absorbed into the abstraction).
    #[test]
    fn zero_delta_matches_standard_on_training_data(
        net_seed in 0u64..200,
        data_seed in 0u64..200,
    ) {
        let net = network(net_seed);
        let data = training_set(data_seed, 16);
        for kind in kinds() {
            let standard = MonitorBuilder::new(&net, 4).build(kind.clone(), &data).unwrap();
            let zero = MonitorBuilder::new(&net, 4)
                .robust(0.0, 0, Domain::Box)
                .build(kind.clone(), &data)
                .unwrap();
            for x in &data {
                prop_assert!(!standard.warns(&net, x).unwrap());
                prop_assert!(!zero.warns(&net, x).unwrap());
            }
        }
    }
}

/// Lemma 1 with the tighter domains: the guarantee is domain-independent.
#[test]
fn lemma1_holds_for_all_domains() {
    let net = network(77);
    let data = training_set(78, 12);
    let delta = 0.05;
    let mut rng = Prng::seed(79);
    for domain in Domain::ALL {
        let monitor = MonitorBuilder::new(&net, 4)
            .robust(delta, 0, domain)
            .build(MonitorKind::pattern(), &data)
            .unwrap();
        for base in &data {
            for _ in 0..5 {
                let v_op: Vec<f64> = base
                    .iter()
                    .map(|&b| b + rng.uniform(-delta, delta))
                    .collect();
                assert!(
                    !monitor.warns(&net, &v_op).unwrap(),
                    "{domain} violated Lemma 1"
                );
            }
        }
    }
}

/// The robustness/selectivity trade-off direction: robust monitors accept a
/// superset of the standard monitor's accepted patterns.
#[test]
fn robust_accepts_superset_of_standard() {
    let net = network(101);
    let data = training_set(102, 32);
    let mut rng = Prng::seed(103);
    for kind in kinds() {
        let standard = MonitorBuilder::new(&net, 4)
            .build(kind.clone(), &data)
            .unwrap();
        let robust = MonitorBuilder::new(&net, 4)
            .robust(0.08, 0, Domain::Box)
            .build(kind.clone(), &data)
            .unwrap();
        for _ in 0..200 {
            let probe = rng.uniform_vec(3, -2.0, 2.0);
            if !standard.warns(&net, &probe).unwrap() {
                assert!(
                    !robust.warns(&net, &probe).unwrap(),
                    "{kind:?}: robust warned where standard accepted"
                );
            }
        }
    }
}
