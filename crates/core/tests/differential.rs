//! Differential tests: every batched/parallel query path must be
//! **bit-identical** to the sequential scratch loop it fans out.
//!
//! Covers all monitor families × pattern backends (standard and robust
//! construction) and pinned worker counts 1/2/4, so a scheduling or
//! chunk-stitching bug in `fan_out_batch` — or any scratch-reuse bug that
//! lets one query's state leak into the next — cannot land silently.

use napmon_absint::Domain;
use napmon_core::{
    Monitor, MonitorBuilder, MonitorKind, MultiLayerMonitor, PatternBackend, QueryScratch,
    ThresholdPolicy, Verdict, Vote,
};
use napmon_nn::{Activation, LayerSpec, Network};
use napmon_tensor::Prng;

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

fn net() -> Network {
    Network::seeded(
        77,
        5,
        &[
            LayerSpec::dense(14, Activation::Relu),
            LayerSpec::dense(8, Activation::Relu),
            LayerSpec::dense(3, Activation::Identity),
        ],
    )
}

fn train_data(n: usize) -> Vec<Vec<f64>> {
    let mut rng = Prng::seed(500);
    (0..n).map(|_| rng.uniform_vec(5, -0.8, 0.8)).collect()
}

/// Mixed traffic: in-distribution probes plus out-of-distribution outliers,
/// so both the all-clear and the warning (evidence-building) paths run.
fn probes(n: usize) -> Vec<Vec<f64>> {
    let mut rng = Prng::seed(900);
    (0..n)
        .map(|i| {
            if i % 5 == 4 {
                rng.uniform_vec(5, 5.0, 9.0)
            } else {
                rng.uniform_vec(5, -1.0, 1.0)
            }
        })
        .collect()
}

/// Every MonitorKind × PatternBackend combination.
fn all_kinds() -> Vec<(String, MonitorKind)> {
    let mut kinds = vec![
        ("min-max".to_string(), MonitorKind::min_max()),
        (
            "min-max gamma=0.1".to_string(),
            MonitorKind::min_max_enlarged(0.1),
        ),
        ("interval 2-bit".to_string(), MonitorKind::interval(2)),
        ("interval 3-bit".to_string(), MonitorKind::interval(3)),
    ];
    for backend in [PatternBackend::Bdd, PatternBackend::HashSet] {
        for hamming in [0usize, 1] {
            kinds.push((
                format!("pattern {backend:?} hamming={hamming}"),
                MonitorKind::pattern_with(ThresholdPolicy::Mean, backend, hamming),
            ));
        }
    }
    kinds
}

/// The reference: one scratch, one thread, one query at a time.
fn sequential_reference<M: Monitor + ?Sized>(
    monitor: &M,
    net: &Network,
    inputs: &[Vec<f64>],
) -> Vec<Verdict> {
    let mut scratch = QueryScratch::new();
    inputs
        .iter()
        .map(|x| monitor.verdict_scratch(net, x, &mut scratch).unwrap())
        .collect()
}

#[test]
fn parallel_verdicts_are_bit_identical_to_sequential() {
    let net = net();
    let train = train_data(128);
    let inputs = probes(120);
    for (name, kind) in all_kinds() {
        let monitor = MonitorBuilder::new(&net, 4).build(kind, &train).unwrap();
        let expected = sequential_reference(&monitor, &net, &inputs);
        assert_eq!(
            monitor.query_batch(&net, &inputs).unwrap(),
            expected,
            "{name}: query_batch diverged"
        );
        for shards in SHARD_COUNTS {
            assert_eq!(
                monitor
                    .query_batch_parallel_with(&net, &inputs, shards)
                    .unwrap(),
                expected,
                "{name}: parallel with {shards} worker(s) diverged"
            );
        }
        assert_eq!(
            monitor.query_batch_parallel(&net, &inputs).unwrap(),
            expected,
            "{name}: default-width parallel diverged"
        );
    }
}

#[test]
fn robust_construction_keeps_parallel_parity() {
    let net = net();
    let train = train_data(64);
    let inputs = probes(60);
    for (name, kind) in all_kinds() {
        let monitor = MonitorBuilder::new(&net, 4)
            .robust(0.03, 0, Domain::Box)
            .build(kind, &train)
            .unwrap();
        let expected = sequential_reference(&monitor, &net, &inputs);
        for shards in SHARD_COUNTS {
            assert_eq!(
                monitor
                    .query_batch_parallel_with(&net, &inputs, shards)
                    .unwrap(),
                expected,
                "robust {name}: parallel with {shards} worker(s) diverged"
            );
        }
    }
}

#[test]
fn composite_monitors_keep_parallel_parity() {
    let net = net();
    let train = train_data(96);
    let inputs = probes(80);
    let members: Vec<_> = [2usize, 4]
        .iter()
        .map(|&layer| {
            MonitorBuilder::new(&net, layer)
                .build(MonitorKind::pattern(), &train)
                .unwrap()
        })
        .collect();
    for vote in [Vote::Any, Vote::All, Vote::AtLeast(2)] {
        let multi = MultiLayerMonitor::new(members.clone(), vote);
        let expected: Vec<Verdict> = {
            let mut scratch = QueryScratch::new();
            inputs
                .iter()
                .map(|x| multi.verdict_scratch(&net, x, &mut scratch).unwrap())
                .collect()
        };
        for shards in SHARD_COUNTS {
            assert_eq!(
                multi
                    .query_batch_parallel_with(&net, &inputs, shards)
                    .unwrap(),
                expected,
                "{vote:?} multi-layer: parallel with {shards} worker(s) diverged"
            );
        }
    }

    // Round-robin labels guarantee every class is populated regardless of
    // what the seeded network happens to predict, so this branch can never
    // silently skip. (Labels only partition the training data; queries
    // dispatch on the network's own predicted class either way.)
    let classes = net.output_dim();
    let labels: Vec<usize> = (0..train.len()).map(|i| i % classes).collect();
    let per_class = MonitorBuilder::new(&net, 4)
        .build_per_class(MonitorKind::pattern(), &train, &labels, classes)
        .unwrap();
    let expected: Vec<Verdict> = {
        let mut scratch = QueryScratch::new();
        inputs
            .iter()
            .map(|x| per_class.verdict_scratch(&net, x, &mut scratch).unwrap())
            .collect()
    };
    for shards in SHARD_COUNTS {
        assert_eq!(
            per_class
                .query_batch_parallel_with(&net, &inputs, shards)
                .unwrap(),
            expected,
            "per-class: parallel with {shards} worker(s) diverged"
        );
    }
}
