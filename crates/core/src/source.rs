//! Pluggable pattern-set backends: the [`PatternSource`] abstraction.
//!
//! The paper's pattern monitors freeze their word set at construction time
//! and hold it in process RAM (a BDD or a hash table). Production
//! deployments need more freedom on both axes: the set may live *outside*
//! the process (a persistent store that survives restarts and scales past
//! RAM), and it may *grow at operation time* — the monitor-enlargement
//! idea of the original activation-pattern work, where newly observed
//! patterns are absorbed into the abstraction without a rebuild.
//!
//! A [`PatternSource`] is any object that can answer exact and Hamming-ball
//! membership over packed [`BitWord`]s and absorb new words. The in-memory
//! reference implementation is [`MemoryPatternSource`]; the persistent
//! log-structured store lives in the `napmon-store` crate and implements
//! the same trait. Pattern monitors hold external sources behind an
//! [`ExternalHandle`] — a shared, lock-guarded reference that serializes as
//! a [`SourceDescriptor`] (a *pointer* to the store, not its contents), so
//! a store-backed monitor artifact stays small and reattaches to its
//! segments on load.

use crate::error::MonitorError;
use napmon_bdd::{BitWord, FxBuildHasher};
use serde::{Deserialize, Deserializer, Serialize, Serializer};
use std::collections::HashSet;
use std::sync::{Arc, PoisonError, RwLock};

/// A pattern-set backend a monitor can delegate its word set to.
///
/// Implementations must be shareable across the serving engine's shard
/// threads (hence the `Send + Sync` supertraits); mutation happens behind
/// the write half of an [`ExternalHandle`]'s lock.
pub trait PatternSource: std::fmt::Debug + Send + Sync {
    /// Width of every word in the set, in bits.
    fn word_bits(&self) -> usize;

    /// Absorbs one word. Returns `true` if the word was new, `false` if it
    /// was already present (sources deduplicate).
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::DimensionMismatch`] for a wrong-width word
    /// and [`MonitorError::ExternalSource`] if the backing medium fails.
    fn insert(&mut self, word: &BitWord) -> Result<bool, MonitorError>;

    /// Exact membership.
    fn contains(&self, word: &BitWord) -> bool;

    /// Hamming-ball membership: whether some stored word differs from
    /// `word` in at most `tau` positions.
    fn contains_within(&self, word: &BitWord, tau: usize) -> bool;

    /// Batched Hamming-ball membership:
    /// `out[i] = contains_within(&words[i], tau)`. The default loops the
    /// single-query form; sources holding a bit-sliced layout (the
    /// persistent store) override it to answer the whole batch per block
    /// of patterns, which is where the batch-query throughput comes from.
    ///
    /// # Panics
    ///
    /// May panic if `out.len() < words.len()`.
    fn contains_within_batch(&self, words: &[BitWord], tau: usize, out: &mut [bool]) {
        for (word, slot) in words.iter().zip(out.iter_mut()) {
            *slot = self.contains_within(word, tau);
        }
    }

    /// Number of distinct words stored.
    fn word_count(&self) -> u64;

    /// Memory/disk proxy (implementation-defined unit, e.g. stored words).
    fn store_size(&self) -> usize;

    /// Durability point: flushes any buffered writes to the backing
    /// medium. A no-op for in-memory sources.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::ExternalSource`] if the backing medium
    /// fails.
    fn commit(&mut self) -> Result<(), MonitorError>;

    /// The serializable reference to this source (what an artifact embeds
    /// instead of the word set itself).
    fn descriptor(&self) -> SourceDescriptor;
}

/// A shared, lock-guarded pattern source: the form monitors hold external
/// backends in, so queries (read lock) and operation-time absorption
/// (write lock) can proceed concurrently across serving shards.
pub type SharedPatternSource = Arc<RwLock<dyn PatternSource>>;

/// Wraps a concrete source into the shared form monitors consume.
pub fn shared_source<S: PatternSource + 'static>(source: S) -> SharedPatternSource {
    Arc::new(RwLock::new(source))
}

/// A serializable *reference* to a pattern source: what a store-backed
/// monitor writes into an artifact file in place of its word set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SourceDescriptor {
    /// Backend family, e.g. `"napmon-store"` or `"memory"`.
    pub kind: String,
    /// Location of the backing data (a store directory for persistent
    /// sources; empty for in-memory ones, which cannot be reattached).
    pub path: String,
    /// Width of every stored word, in bits. Cross-checked against both the
    /// monitor dimension and the reopened store on attach.
    pub word_bits: usize,
}

/// Supplies one [`SharedPatternSource`] per member monitor during a
/// store-backed spec build or mount (`member` is the member index: `0` for
/// single composition, the boundary index for multi-layer, the class index
/// for per-class).
pub trait SourceProvider {
    /// Opens (or creates) the source backing member `member`, whose words
    /// are `word_bits` wide.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::ExternalSource`] if the source cannot be
    /// opened.
    fn open_source(
        &mut self,
        member: usize,
        word_bits: usize,
    ) -> Result<SharedPatternSource, MonitorError>;
}

impl<F> SourceProvider for F
where
    F: FnMut(usize, usize) -> Result<SharedPatternSource, MonitorError>,
{
    fn open_source(
        &mut self,
        member: usize,
        word_bits: usize,
    ) -> Result<SharedPatternSource, MonitorError> {
        self(member, word_bits)
    }
}

/// The in-memory reference [`PatternSource`]: a packed-word hash set using
/// the same FxHash scheme as the monitors' built-in tables. Exists as the
/// differential-testing oracle for external backends and as a cheap
/// source for tests; it serializes only as a descriptor, so it cannot be
/// reattached from disk.
#[derive(Debug, Clone)]
pub struct MemoryPatternSource {
    word_bits: usize,
    words: HashSet<BitWord, FxBuildHasher>,
}

impl MemoryPatternSource {
    /// An empty source over `word_bits`-bit words.
    pub fn new(word_bits: usize) -> Self {
        Self {
            word_bits,
            words: HashSet::default(),
        }
    }
}

impl PatternSource for MemoryPatternSource {
    fn word_bits(&self) -> usize {
        self.word_bits
    }

    fn insert(&mut self, word: &BitWord) -> Result<bool, MonitorError> {
        if word.len() != self.word_bits {
            return Err(MonitorError::DimensionMismatch {
                context: "memory pattern source insert".into(),
                expected: self.word_bits,
                actual: word.len(),
            });
        }
        Ok(self.words.insert(word.clone()))
    }

    fn contains(&self, word: &BitWord) -> bool {
        self.words.contains(word)
    }

    fn contains_within(&self, word: &BitWord, tau: usize) -> bool {
        if tau == 0 {
            return self.contains(word);
        }
        self.words.iter().any(|w| w.hamming(word) as usize <= tau)
    }

    fn word_count(&self) -> u64 {
        self.words.len() as u64
    }

    fn store_size(&self) -> usize {
        self.words.len()
    }

    fn commit(&mut self) -> Result<(), MonitorError> {
        Ok(())
    }

    fn descriptor(&self) -> SourceDescriptor {
        SourceDescriptor {
            kind: "memory".into(),
            path: String::new(),
            word_bits: self.word_bits,
        }
    }
}

/// A monitor's grip on an external pattern source.
///
/// The handle is either *attached* (holding a live [`SharedPatternSource`])
/// or *detached* (fresh from deserialization, holding only the
/// [`SourceDescriptor`]). Queries on a detached handle panic with
/// re-attachment guidance; `napmon-artifact` reattaches handles
/// automatically when loading store-backed artifacts, and
/// [`crate::PatternMonitor::attach_source`] /
/// [`crate::spec::ComposedMonitor::attach_external_sources`] do it
/// manually.
///
/// Cloning a handle clones the `Arc`, so clones share one underlying
/// store — intentionally: every serving shard must observe the same
/// operation-time absorptions.
#[derive(Clone)]
pub struct ExternalHandle {
    descriptor: SourceDescriptor,
    source: Option<SharedPatternSource>,
}

impl ExternalHandle {
    /// Wraps an attached source, capturing its descriptor.
    pub fn attached(source: SharedPatternSource) -> Self {
        let descriptor = read_lock(&source).descriptor();
        Self {
            descriptor,
            source: Some(source),
        }
    }

    /// A detached handle carrying only the reference (the deserialized
    /// form).
    pub fn detached(descriptor: SourceDescriptor) -> Self {
        Self {
            descriptor,
            source: None,
        }
    }

    /// The serializable reference to the source.
    pub fn descriptor(&self) -> &SourceDescriptor {
        &self.descriptor
    }

    /// Whether a live source is attached.
    pub fn is_attached(&self) -> bool {
        self.source.is_some()
    }

    /// Attaches (or replaces) the live source behind this handle.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::DimensionMismatch`] if the source's word
    /// width disagrees with the recorded descriptor.
    pub fn attach(&mut self, source: SharedPatternSource) -> Result<(), MonitorError> {
        let bits = read_lock(&source).word_bits();
        if bits != self.descriptor.word_bits {
            return Err(MonitorError::DimensionMismatch {
                context: format!(
                    "attaching pattern source `{}`",
                    read_lock(&source).descriptor().path
                ),
                expected: self.descriptor.word_bits,
                actual: bits,
            });
        }
        self.descriptor = read_lock(&source).descriptor();
        self.source = Some(source);
        Ok(())
    }

    fn live(&self) -> &SharedPatternSource {
        self.source.as_ref().unwrap_or_else(|| {
            panic!(
                "detached external pattern source ({} at `{}`): load the monitor through \
                 napmon-artifact, or reattach with attach_source()/attach_external_sources()",
                self.descriptor.kind, self.descriptor.path
            )
        })
    }

    /// Exact membership (read lock).
    pub fn contains(&self, word: &BitWord) -> bool {
        read_lock(self.live()).contains(word)
    }

    /// Hamming-ball membership (read lock).
    pub fn contains_within(&self, word: &BitWord, tau: usize) -> bool {
        read_lock(self.live()).contains_within(word, tau)
    }

    /// Batched Hamming-ball membership — one read-lock acquisition for
    /// the whole batch, then the source's own batch kernel.
    pub fn contains_within_batch(&self, words: &[BitWord], tau: usize, out: &mut [bool]) {
        read_lock(self.live()).contains_within_batch(words, tau, out);
    }

    /// Absorbs one word (write lock); shared absorption is what lets a
    /// serving engine enlarge the monitor without `&mut` access.
    ///
    /// # Errors
    ///
    /// Propagates the source's [`PatternSource::insert`] errors.
    pub fn insert(&self, word: &BitWord) -> Result<bool, MonitorError> {
        write_lock(self.live()).insert(word)
    }

    /// Flushes the source's buffered writes (write lock). A detached
    /// handle is a no-op rather than a panic: it has buffered nothing, so
    /// there is nothing to lose.
    ///
    /// # Errors
    ///
    /// Propagates the source's [`PatternSource::commit`] errors.
    pub fn commit(&self) -> Result<(), MonitorError> {
        match &self.source {
            Some(source) => write_lock(source).commit(),
            None => Ok(()),
        }
    }

    /// Number of distinct words stored (read lock).
    pub fn word_count(&self) -> u64 {
        read_lock(self.live()).word_count()
    }

    /// The source's size proxy (read lock).
    pub fn store_size(&self) -> usize {
        read_lock(self.live()).store_size()
    }
}

/// Lock helpers that shrug off poisoning: a panicking absorber must not
/// take the read-only query path down with it (the set is append-only, so
/// a half-applied insert is at worst a missing word).
fn read_lock(
    source: &SharedPatternSource,
) -> std::sync::RwLockReadGuard<'_, dyn PatternSource + 'static> {
    source.read().unwrap_or_else(PoisonError::into_inner)
}

fn write_lock(
    source: &SharedPatternSource,
) -> std::sync::RwLockWriteGuard<'_, dyn PatternSource + 'static> {
    source.write().unwrap_or_else(PoisonError::into_inner)
}

impl std::fmt::Debug for ExternalHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExternalHandle")
            .field("descriptor", &self.descriptor)
            .field("attached", &self.is_attached())
            .finish()
    }
}

/// Serializes as the descriptor only: the word set stays in the store.
impl Serialize for ExternalHandle {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.descriptor.serialize(serializer)
    }
}

/// Deserializes to a *detached* handle; see [`ExternalHandle::attach`].
impl<'de> Deserialize<'de> for ExternalHandle {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(Self::detached(SourceDescriptor::deserialize(deserializer)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn word(bits: &[bool]) -> BitWord {
        BitWord::from_bools(bits)
    }

    #[test]
    fn memory_source_inserts_and_dedupes() {
        let mut src = MemoryPatternSource::new(3);
        assert!(src.insert(&word(&[true, false, true])).unwrap());
        assert!(!src.insert(&word(&[true, false, true])).unwrap());
        assert_eq!(src.word_count(), 1);
        assert!(src.contains(&word(&[true, false, true])));
        assert!(!src.contains(&word(&[false, false, true])));
        assert!(src.insert(&word(&[true, true])).is_err());
    }

    #[test]
    fn memory_source_hamming_ball() {
        let mut src = MemoryPatternSource::new(4);
        src.insert(&word(&[true, true, true, true])).unwrap();
        let near = word(&[true, true, true, false]);
        assert!(!src.contains(&near));
        assert!(src.contains_within(&near, 1));
        assert!(!src.contains_within(&word(&[false, false, true, false]), 2));
    }

    #[test]
    fn handle_round_trips_as_descriptor_and_reattaches() {
        let src = shared_source(MemoryPatternSource::new(5));
        let handle = ExternalHandle::attached(Arc::clone(&src));
        let json = serde_json::to_string(&handle).unwrap();
        assert!(json.contains("\"memory\""), "{json}");
        let mut back: ExternalHandle = serde_json::from_str(&json).unwrap();
        assert!(!back.is_attached());
        assert_eq!(back.descriptor(), handle.descriptor());
        back.attach(src).unwrap();
        assert!(back.is_attached());
        // Width mismatch on attach is a typed error.
        let narrow = shared_source(MemoryPatternSource::new(3));
        assert!(back.attach(narrow).is_err());
    }

    #[test]
    #[should_panic(expected = "detached external pattern source")]
    fn detached_queries_panic_with_guidance() {
        let handle = ExternalHandle::detached(SourceDescriptor {
            kind: "memory".into(),
            path: String::new(),
            word_bits: 2,
        });
        handle.contains(&word(&[true, false]));
    }

    #[test]
    fn shared_absorption_is_visible_through_clones() {
        let handle = ExternalHandle::attached(shared_source(MemoryPatternSource::new(2)));
        let clone = handle.clone();
        assert!(handle.insert(&word(&[true, false])).unwrap());
        assert!(clone.contains(&word(&[true, false])));
        assert_eq!(clone.word_count(), 1);
    }
}
