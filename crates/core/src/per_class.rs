//! Per-class monitors: one abstraction per output class.
//!
//! The DATE 2019 on-off monitor keeps a separate pattern set per output
//! class and, in operation, checks the observed pattern against the set of
//! the class the network *predicts*. This wrapper provides that dispatch
//! for any monitor family.

use crate::builder::AnyMonitor;
use crate::error::MonitorError;
use crate::monitor::{Monitor, QueryScratch, Verdict};
use napmon_nn::Network;
use serde::{Deserialize, Serialize};

/// One monitor per class; queries dispatch on the predicted class.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerClassMonitor {
    monitors: Vec<AnyMonitor>,
}

impl PerClassMonitor {
    /// Wraps per-class monitors (index = class).
    ///
    /// # Panics
    ///
    /// Panics if `monitors` is empty.
    pub fn new(monitors: Vec<AnyMonitor>) -> Self {
        assert!(
            !monitors.is_empty(),
            "per-class monitor needs at least one class"
        );
        Self { monitors }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.monitors.len()
    }

    /// The monitor of one class.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn class_monitor(&self, class: usize) -> &AnyMonitor {
        &self.monitors[class]
    }

    /// Mutable access to the per-class monitors (source reattachment and
    /// `&mut` absorption paths).
    pub(crate) fn monitors_mut(&mut self) -> &mut [AnyMonitor] {
        &mut self.monitors
    }

    /// Runs the network, picks the predicted class, and returns that
    /// class's verdict.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::DimensionMismatch`] for malformed inputs or
    /// [`MonitorError::InvalidConfig`] if the network predicts a class with
    /// no monitor.
    pub fn verdict(&self, net: &Network, input: &[f64]) -> Result<Verdict, MonitorError> {
        if input.len() != net.input_dim() {
            return Err(MonitorError::DimensionMismatch {
                context: "per-class query input".into(),
                expected: net.input_dim(),
                actual: input.len(),
            });
        }
        let class = net.predict_class(input);
        let monitor = self.monitors.get(class).ok_or_else(|| {
            MonitorError::InvalidConfig(format!(
                "predicted class {class} has no monitor ({} classes)",
                self.monitors.len()
            ))
        })?;
        monitor.verdict(net, input)
    }

    /// Qualitative decision of [`PerClassMonitor::verdict`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`PerClassMonitor::verdict`].
    pub fn warns(&self, net: &Network, input: &[f64]) -> Result<bool, MonitorError> {
        Ok(self.verdict(net, input)?.warning)
    }

    /// One dispatched verdict through the caller's scratch buffers (the
    /// class prediction reuses the scratch's forward buffers too).
    ///
    /// # Errors
    ///
    /// Same conditions as [`PerClassMonitor::verdict`].
    pub fn verdict_scratch(
        &self,
        net: &Network,
        input: &[f64],
        scratch: &mut QueryScratch,
    ) -> Result<Verdict, MonitorError> {
        if input.len() != net.input_dim() {
            return Err(MonitorError::DimensionMismatch {
                context: "per-class query input".into(),
                expected: net.input_dim(),
                actual: input.len(),
            });
        }
        let class = {
            let out = net.forward_prefix_into(input, net.num_layers(), &mut scratch.forward);
            napmon_tensor::vector::argmax(out)
        };
        let monitor = self.monitors.get(class).ok_or_else(|| {
            MonitorError::InvalidConfig(format!(
                "predicted class {class} has no monitor ({} classes)",
                self.monitors.len()
            ))
        })?;
        monitor.verdict_scratch(net, input, scratch)
    }

    /// Verdicts for a whole batch, sharing one scratch (single-threaded).
    ///
    /// # Errors
    ///
    /// Same conditions as [`PerClassMonitor::verdict`], on the first
    /// failing input.
    pub fn query_batch(
        &self,
        net: &Network,
        inputs: &[Vec<f64>],
    ) -> Result<Vec<Verdict>, MonitorError> {
        let mut scratch = QueryScratch::new();
        let mut out = Vec::with_capacity(inputs.len());
        for input in inputs {
            out.push(self.verdict_scratch(net, input, &mut scratch)?);
        }
        Ok(out)
    }

    /// Parallel batch over all cores with one scratch per worker
    /// (`std::thread::scope`; results keep input order).
    ///
    /// # Errors
    ///
    /// Same conditions as [`PerClassMonitor::verdict`].
    pub fn query_batch_parallel(
        &self,
        net: &Network,
        inputs: &[Vec<f64>],
    ) -> Result<Vec<Verdict>, MonitorError> {
        self.query_batch_parallel_with(net, inputs, crate::monitor::available_threads())
    }

    /// Like [`PerClassMonitor::query_batch_parallel`] with a pinned worker
    /// count.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PerClassMonitor::verdict`].
    pub fn query_batch_parallel_with(
        &self,
        net: &Network,
        inputs: &[Vec<f64>],
        threads: usize,
    ) -> Result<Vec<Verdict>, MonitorError> {
        crate::monitor::fan_out_batch(inputs, threads, |chunk| self.query_batch(net, chunk))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{MonitorBuilder, MonitorKind};
    use napmon_nn::{Activation, LayerSpec, Network};

    fn setup() -> (Network, PerClassMonitor, Vec<Vec<f64>>) {
        let net = Network::seeded(
            61,
            2,
            &[
                LayerSpec::dense(6, Activation::Relu),
                LayerSpec::dense(2, Activation::Identity),
            ],
        );
        // Synthesize inputs until both classes appear.
        let mut data = Vec::new();
        for i in 0..64 {
            let x = vec![(i as f64 / 32.0) - 1.0, ((i * 7 % 64) as f64 / 32.0) - 1.0];
            data.push(x);
        }
        let labels: Vec<usize> = data.iter().map(|x| net.predict_class(x)).collect();
        assert!(
            labels.contains(&0) && labels.contains(&1),
            "need both classes"
        );
        let pc = MonitorBuilder::new(&net, 2)
            .build_per_class(MonitorKind::min_max(), &data, &labels, 2)
            .unwrap();
        (net, pc, data)
    }

    #[test]
    fn training_inputs_do_not_warn() {
        let (net, pc, data) = setup();
        for x in &data {
            assert!(!pc.warns(&net, x).unwrap());
        }
    }

    #[test]
    fn num_classes_and_access() {
        let (_, pc, _) = setup();
        assert_eq!(pc.num_classes(), 2);
        assert!(pc.class_monitor(0).as_min_max().is_some());
    }

    #[test]
    fn wrong_input_dimension_errors() {
        let (net, pc, _) = setup();
        assert!(pc.verdict(&net, &[1.0]).is_err());
    }

    #[test]
    fn far_inputs_warn() {
        let (net, pc, _) = setup();
        assert!(pc.warns(&net, &[100.0, -100.0]).unwrap());
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn empty_class_list_panics() {
        PerClassMonitor::new(vec![]);
    }
}
