//! The hash backend's pattern set: exact membership by hashing, Hamming
//! membership by the bit-sliced kernel.
//!
//! [`SlicedPatternSet`] pairs the packed word hash set (one FxHash probe
//! per exact query) with a [`BitSliceSet`] mirror of the same words, so
//! Hamming-tolerant queries stop being a per-word XOR+popcount scan and
//! run the block-transposed kernel instead — one XOR answers a whole
//! 64-pattern block per query bit, and batches reuse each block while it
//! is hot in cache (see `napmon_bdd::bitslice`).
//!
//! Serialization is exactly the word sequence the plain
//! `HashSet<BitWord>` emitted before the mirror existed: artifacts and
//! golden files are unchanged, and the mirror is rebuilt on load.

use napmon_bdd::{BitSliceSet, BitWord, FxBuildHasher};
use serde::{Deserialize, Deserializer, Serialize, Serializer};
use std::collections::HashSet;

/// A deduplicated set of fixed-width packed words, held twice: hashed for
/// exact membership and bit-sliced for Hamming-ball membership. The two
/// views always hold the same words.
#[derive(Debug, Clone, Default)]
pub(crate) struct SlicedPatternSet {
    set: HashSet<BitWord, FxBuildHasher>,
    slices: BitSliceSet,
}

impl SlicedPatternSet {
    /// Inserts a word into both views; returns whether it was new.
    pub(crate) fn insert(&mut self, word: BitWord) -> bool {
        if self.set.contains(&word) {
            return false;
        }
        self.slices.insert(&word);
        self.set.insert(word);
        true
    }

    /// Exact membership: one hash probe.
    #[inline]
    pub(crate) fn contains(&self, word: &BitWord) -> bool {
        self.set.contains(word)
    }

    /// Whether some stored word is within Hamming distance `tau` of
    /// `word`. Exact queries take the hash probe; tolerant ones run the
    /// sliced kernel.
    #[inline]
    pub(crate) fn contains_within(&self, word: &BitWord, tau: usize) -> bool {
        if tau == 0 {
            self.set.contains(word)
        } else {
            self.slices.contains_within(word, tau)
        }
    }

    /// Batched [`SlicedPatternSet::contains_within`]:
    /// `out[i] = contains_within(&queries[i], tau)`. The tolerant path is
    /// where batching pays — the sliced kernel walks blocks outer,
    /// queries inner.
    pub(crate) fn contains_within_batch(&self, queries: &[BitWord], tau: usize, out: &mut [bool]) {
        if tau == 0 {
            for (query, slot) in queries.iter().zip(out.iter_mut()) {
                *slot = self.set.contains(query);
            }
        } else {
            self.slices.contains_within_batch(queries, tau, out);
        }
    }

    /// Number of distinct stored words.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.set.len()
    }
}

impl Serialize for SlicedPatternSet {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        // The wire shape is the inner hash set's — a seq of bool-array
        // words — so artifacts predating the sliced mirror stay valid and
        // new ones are readable by the old shape.
        self.set.serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for SlicedPatternSet {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let set = HashSet::<BitWord, FxBuildHasher>::deserialize(deserializer)?;
        let mut slices = BitSliceSet::new();
        for word in &set {
            slices.insert(word);
        }
        Ok(Self { set, slices })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn word(bits: &[bool]) -> BitWord {
        BitWord::from_bools(bits)
    }

    #[test]
    fn views_stay_in_lockstep() {
        let mut set = SlicedPatternSet::default();
        assert!(set.insert(word(&[true, false, true])));
        assert!(!set.insert(word(&[true, false, true])), "dedup");
        assert!(set.insert(word(&[false, false, false])));
        assert_eq!(set.len(), 2);
        assert!(set.contains(&word(&[true, false, true])));
        assert!(!set.contains(&word(&[true, true, true])));
        // distance 1 from a stored word, via the sliced kernel.
        assert!(set.contains_within(&word(&[true, true, true]), 1));
        assert!(!set.contains_within(&word(&[true, true, true]), 0));
    }

    #[test]
    fn batch_matches_singles() {
        let mut set = SlicedPatternSet::default();
        set.insert(word(&[true, false, true, false]));
        set.insert(word(&[false, true, false, true]));
        let queries: Vec<BitWord> = (0..16u32)
            .map(|bits| BitWord::from_fn(4, |i| (bits >> i) & 1 == 1))
            .collect();
        for tau in 0..3 {
            let mut out = vec![false; queries.len()];
            set.contains_within_batch(&queries, tau, &mut out);
            for (q, &hit) in queries.iter().zip(&out) {
                assert_eq!(hit, set.contains_within(q, tau), "tau={tau}");
            }
        }
    }

    #[test]
    fn serialization_shape_is_the_plain_word_seq() {
        let mut set = SlicedPatternSet::default();
        set.insert(word(&[true, false]));
        let json = serde_json::to_string(&set).unwrap();
        let plain: HashSet<BitWord, FxBuildHasher> = serde_json::from_str(&json).unwrap();
        assert!(plain.contains(&word(&[true, false])));
        let back: SlicedPatternSet = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), 1);
        assert!(back.contains_within(&word(&[true, true]), 1));
    }
}
