//! Monitor construction: the imperative shim over the spec pipeline.
//!
//! The paper's construction loop is
//!
//! ```text
//! M ← M0
//! for v_tr ∈ Dtr:  M ← M ⊎ ab(G^k(v_tr))                 (standard)
//! for v_tr ∈ Dtr:  M ← M ⊎_R ab_R(pe^G_k(v_tr, kp, Δ))   (robust)
//! ```
//!
//! That loop now lives in [`crate::spec`]: the declarative
//! [`MonitorSpec`] is the primary construction
//! API, because a spec can be serialized, shipped, and rebuilt — the
//! deployment story an imperative call chain cannot provide.
//! [`MonitorBuilder`] remains as a thin convenience shim that *lowers to a
//! spec* ([`MonitorBuilder::to_spec`]) and builds it, so existing callers
//! keep compiling; new code should start from `MonitorSpec`.

use crate::error::MonitorError;
use crate::feature::FeatureExtractor;
use crate::interval_pattern::{IntervalPatternMonitor, ThresholdPolicy};
use crate::minmax::MinMaxMonitor;
use crate::monitor::{Monitor, QueryScratch, Verdict};
use crate::pattern::{PatternBackend, PatternMonitor};
use crate::per_class::PerClassMonitor;
use crate::spec::{ComposedMonitor, MonitorSpec};
use napmon_absint::Domain;
use napmon_nn::Network;
use serde::{Deserialize, Serialize};

/// Robust-construction parameters: perturbation budget `Δ`, injection
/// boundary `kp`, and the abstract domain computing Definition 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RobustConfig {
    /// Per-dimension perturbation bound `Δ ≥ 0`.
    pub delta: f64,
    /// Boundary where perturbation is injected (`0` = input layer).
    pub kp: usize,
    /// Abstract domain for the perturbation estimate.
    pub domain: Domain,
}

/// Which monitor family to build.
///
/// Marked `#[non_exhaustive]`: future format versions may add families
/// without breaking downstream matches, which is what lets a serialized
/// [`MonitorSpec`] stay forward-compatible.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum MonitorKind {
    /// Per-neuron min/max bounds, optionally bloated by `gamma` (the
    /// baseline enlargement of Henzinger et al.).
    MinMax {
        /// Post-construction symmetric enlargement factor (`0` = none).
        gamma: f64,
    },
    /// Boolean on-off patterns.
    Pattern {
        /// Threshold selection (must resolve to one threshold per neuron).
        policy: ThresholdPolicy,
        /// Pattern-set storage.
        backend: PatternBackend,
        /// Query-time Hamming tolerance.
        hamming: usize,
    },
    /// Multi-bit interval patterns (§III-C).
    IntervalPattern {
        /// Bits per neuron.
        bits: usize,
        /// Threshold selection (must resolve to `2^bits − 1` per neuron).
        policy: ThresholdPolicy,
    },
}

impl MonitorKind {
    /// Plain min-max monitor.
    pub fn min_max() -> Self {
        MonitorKind::MinMax { gamma: 0.0 }
    }

    /// Min-max monitor bloated by `gamma` after construction.
    pub fn min_max_enlarged(gamma: f64) -> Self {
        MonitorKind::MinMax { gamma }
    }

    /// On-off pattern monitor with sign thresholds in a BDD.
    pub fn pattern() -> Self {
        MonitorKind::Pattern {
            policy: ThresholdPolicy::Sign,
            backend: PatternBackend::Bdd,
            hamming: 0,
        }
    }

    /// On-off pattern monitor with explicit configuration.
    pub fn pattern_with(policy: ThresholdPolicy, backend: PatternBackend, hamming: usize) -> Self {
        MonitorKind::Pattern {
            policy,
            backend,
            hamming,
        }
    }

    /// Interval pattern monitor with quantile thresholds.
    pub fn interval(bits: usize) -> Self {
        MonitorKind::IntervalPattern {
            bits,
            policy: ThresholdPolicy::Quantiles,
        }
    }

    /// Interval pattern monitor with explicit configuration.
    pub fn interval_with(bits: usize, policy: ThresholdPolicy) -> Self {
        MonitorKind::IntervalPattern { bits, policy }
    }
}

/// A monitor of any family, as produced by [`MonitorBuilder::build`].
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub enum AnyMonitor {
    /// Min-max monitor.
    MinMax(MinMaxMonitor),
    /// On-off pattern monitor.
    Pattern(PatternMonitor),
    /// Multi-bit interval pattern monitor.
    Interval(IntervalPatternMonitor),
}

impl AnyMonitor {
    /// The min-max monitor, if that is what was built.
    pub fn as_min_max(&self) -> Option<&MinMaxMonitor> {
        match self {
            AnyMonitor::MinMax(m) => Some(m),
            _ => None,
        }
    }

    /// The pattern monitor, if that is what was built.
    pub fn as_pattern(&self) -> Option<&PatternMonitor> {
        match self {
            AnyMonitor::Pattern(m) => Some(m),
            _ => None,
        }
    }

    /// The interval monitor, if that is what was built.
    pub fn as_interval(&self) -> Option<&IntervalPatternMonitor> {
        match self {
            AnyMonitor::Interval(m) => Some(m),
            _ => None,
        }
    }

    /// Fraction of the abstract pattern space the monitor admits, when the
    /// family has a meaningful notion of coverage (pattern families only).
    pub fn coverage(&self) -> Option<f64> {
        match self {
            AnyMonitor::MinMax(_) => None,
            AnyMonitor::Pattern(m) => Some(m.coverage()),
            AnyMonitor::Interval(m) => Some(m.coverage()),
        }
    }

    /// Number of training samples absorbed during construction.
    pub fn samples(&self) -> usize {
        match self {
            AnyMonitor::MinMax(m) => m.samples(),
            AnyMonitor::Pattern(m) => m.samples(),
            AnyMonitor::Interval(m) => m.samples(),
        }
    }

    /// Number of distinct abstract patterns admitted, when the family
    /// counts patterns (pattern families only).
    pub fn pattern_count(&self) -> Option<f64> {
        match self {
            AnyMonitor::MinMax(_) => None,
            AnyMonitor::Pattern(m) => Some(m.pattern_count()),
            AnyMonitor::Interval(m) => Some(m.pattern_count()),
        }
    }

    /// The descriptor of the monitor's external pattern source, when its
    /// word set is store-backed.
    pub fn external_descriptor(&self) -> Option<&crate::source::SourceDescriptor> {
        match self {
            AnyMonitor::MinMax(_) => None,
            AnyMonitor::Pattern(m) => m.external_descriptor(),
            AnyMonitor::Interval(m) => m.external_descriptor(),
        }
    }

    /// Whether the monitor is store-backed but detached (fresh from
    /// deserialization).
    pub fn needs_source(&self) -> bool {
        match self {
            AnyMonitor::MinMax(_) => false,
            AnyMonitor::Pattern(m) => m.needs_source(),
            AnyMonitor::Interval(m) => m.needs_source(),
        }
    }

    /// Reattaches a live source to a store-backed monitor.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::ExternalSource`] for a non-store-backed
    /// monitor, or [`MonitorError::DimensionMismatch`] on word-width
    /// disagreement.
    pub fn attach_source(
        &mut self,
        source: crate::source::SharedPatternSource,
    ) -> Result<(), MonitorError> {
        match self {
            AnyMonitor::MinMax(_) => Err(MonitorError::ExternalSource(
                "min-max monitors have no pattern source".into(),
            )),
            AnyMonitor::Pattern(m) => m.attach_source(source),
            AnyMonitor::Interval(m) => m.attach_source(source),
        }
    }

    /// Flushes a store-backed monitor's buffered writes (no-op otherwise).
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::ExternalSource`] if the store fails.
    pub fn commit_source(&self) -> Result<(), MonitorError> {
        match self {
            AnyMonitor::MinMax(_) => Ok(()),
            AnyMonitor::Pattern(m) => m.commit_source(),
            AnyMonitor::Interval(m) => m.commit_source(),
        }
    }

    /// Runs `net` on `input` and absorbs the resulting pattern into the
    /// monitor's external source through `&self` (operation-time
    /// enlargement; store-backed monitors only). Returns `true` if the
    /// pattern was new.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::DimensionMismatch`] for a malformed input
    /// and [`MonitorError::ExternalSource`] for in-memory backends or
    /// store failures.
    pub fn absorb_input_shared(&self, net: &Network, input: &[f64]) -> Result<bool, MonitorError> {
        let features = self.extractor().features(net, input)?;
        self.absorb_features_shared(&features)
    }

    /// Feature-level form of [`AnyMonitor::absorb_input_shared`], for
    /// callers that already ran the forward pass (multi-layer absorption
    /// shares one pass across members, exactly like the query path).
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::ExternalSource`] for in-memory backends or
    /// store failures.
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the monitor dimension.
    pub fn absorb_features_shared(&self, features: &[f64]) -> Result<bool, MonitorError> {
        match self {
            AnyMonitor::MinMax(_) => Err(MonitorError::ExternalSource(
                "min-max monitors have no pattern source to absorb into".into(),
            )),
            AnyMonitor::Pattern(m) => m.absorb_features_shared(features),
            AnyMonitor::Interval(m) => m.absorb_features_shared(features),
        }
    }

    /// Runs `net` on `input` and absorbs the resulting pattern through
    /// `&mut self`, for any backend (min-max widens its bounds, pattern
    /// families fold the word into their set).
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::DimensionMismatch`] for a malformed input
    /// and [`MonitorError::ExternalSource`] for store failures.
    pub fn absorb_input_mut(&mut self, net: &Network, input: &[f64]) -> Result<(), MonitorError> {
        let features = self.extractor().features(net, input)?;
        self.absorb_features_mut(&features)
    }

    /// Feature-level form of [`AnyMonitor::absorb_input_mut`].
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::ExternalSource`] for store failures.
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the monitor dimension.
    pub fn absorb_features_mut(&mut self, features: &[f64]) -> Result<(), MonitorError> {
        match self {
            AnyMonitor::MinMax(m) => {
                m.absorb_point(features);
                Ok(())
            }
            AnyMonitor::Pattern(m) => m.absorb_point_checked(features),
            AnyMonitor::Interval(m) => m.absorb_point_checked(features),
        }
    }
}

impl Monitor for AnyMonitor {
    fn extractor(&self) -> &FeatureExtractor {
        match self {
            AnyMonitor::MinMax(m) => m.extractor(),
            AnyMonitor::Pattern(m) => m.extractor(),
            AnyMonitor::Interval(m) => m.extractor(),
        }
    }

    fn verdict_features(&self, features: &[f64]) -> Verdict {
        match self {
            AnyMonitor::MinMax(m) => m.verdict_features(features),
            AnyMonitor::Pattern(m) => m.verdict_features(features),
            AnyMonitor::Interval(m) => m.verdict_features(features),
        }
    }

    fn verdict_features_scratch(&self, features: &[f64], scratch: &mut QueryScratch) -> Verdict {
        match self {
            AnyMonitor::MinMax(m) => m.verdict_features_scratch(features, scratch),
            AnyMonitor::Pattern(m) => m.verdict_features_scratch(features, scratch),
            AnyMonitor::Interval(m) => m.verdict_features_scratch(features, scratch),
        }
    }

    fn verdict_batch_scratch(
        &self,
        net: &Network,
        inputs: &[Vec<f64>],
        scratch: &mut QueryScratch,
        out: &mut Vec<Verdict>,
    ) -> Result<(), MonitorError> {
        match self {
            AnyMonitor::MinMax(m) => m.verdict_batch_scratch(net, inputs, scratch, out),
            AnyMonitor::Pattern(m) => m.verdict_batch_scratch(net, inputs, scratch, out),
            AnyMonitor::Interval(m) => m.verdict_batch_scratch(net, inputs, scratch, out),
        }
    }
}

/// Builds monitors over one network boundary.
///
/// This is the imperative convenience layer: every call chain lowers to a
/// declarative [`MonitorSpec`] ([`MonitorBuilder::to_spec`]) and
/// [`MonitorSpec::build`] does the actual work. Prefer starting from
/// `MonitorSpec` directly in new code — a spec is serializable data that
/// can be saved, reviewed, and rebuilt elsewhere (see `napmon-artifact`),
/// while a builder lives only as long as the borrow of its network.
///
/// The builder borrows the network only for construction; built monitors
/// are self-contained values.
#[derive(Debug, Clone)]
pub struct MonitorBuilder<'a> {
    net: &'a Network,
    layer: usize,
    neurons: Option<Vec<usize>>,
    robust: Option<RobustConfig>,
    parallel: bool,
}

impl<'a> MonitorBuilder<'a> {
    /// Starts a builder monitoring boundary `layer` of `net`.
    pub fn new(net: &'a Network, layer: usize) -> Self {
        Self {
            net,
            layer,
            neurons: None,
            robust: None,
            parallel: false,
        }
    }

    /// Monitors only the given neuron indices.
    pub fn neurons(mut self, neurons: Vec<usize>) -> Self {
        self.neurons = Some(neurons);
        self
    }

    /// Switches to the robust construction of §III-B.
    pub fn robust(mut self, delta: f64, kp: usize, domain: Domain) -> Self {
        self.robust = Some(RobustConfig { delta, kp, domain });
        self
    }

    /// Same as [`MonitorBuilder::robust`] with a pre-assembled config.
    pub fn robust_config(mut self, config: RobustConfig) -> Self {
        self.robust = Some(config);
        self
    }

    /// Computes per-sample forward passes / perturbation estimates on all
    /// available cores.
    pub fn parallel(mut self, yes: bool) -> Self {
        self.parallel = yes;
        self
    }

    /// Lowers the builder state to the declarative [`MonitorSpec`] it is a
    /// shim for. The returned spec (plus the training data) reproduces
    /// exactly what [`MonitorBuilder::build`] would construct.
    pub fn to_spec(&self, kind: MonitorKind) -> MonitorSpec {
        let mut spec = MonitorSpec::new(self.layer, kind);
        if let Some(neurons) = &self.neurons {
            spec = spec.with_neurons(neurons.clone());
        }
        if let Some(robust) = self.robust {
            spec = spec.robust_config(robust);
        }
        spec.parallel(self.parallel)
    }

    /// Runs the construction loop and returns the monitor.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::EmptyTrainingSet`] for empty data,
    /// [`MonitorError::DimensionMismatch`] for malformed samples, and
    /// [`MonitorError::InvalidConfig`] for invalid layer / robust / policy
    /// configurations.
    pub fn build(&self, kind: MonitorKind, data: &[Vec<f64>]) -> Result<AnyMonitor, MonitorError> {
        match self.to_spec(kind).build(self.net, data)? {
            ComposedMonitor::Single(m) => Ok(m),
            other => unreachable!("single spec built {other}"),
        }
    }

    /// Builds one monitor per class, as in the DATE 2019 setup where each
    /// output class keeps its own pattern set. `labels[i]` is the class of
    /// `data[i]`; queries dispatch on the network's predicted class.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MonitorBuilder::build`], plus
    /// [`MonitorError::InvalidConfig`] when labels are out of range, a class
    /// has no samples, or lengths disagree.
    pub fn build_per_class(
        &self,
        kind: MonitorKind,
        data: &[Vec<f64>],
        labels: &[usize],
        num_classes: usize,
    ) -> Result<PerClassMonitor, MonitorError> {
        let spec = self.to_spec(kind).per_class(num_classes);
        match spec.build_with_labels(self.net, data, labels)? {
            ComposedMonitor::PerClass(m) => Ok(m),
            other => unreachable!("per-class spec built {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use napmon_nn::{Activation, LayerSpec};
    use napmon_tensor::Prng;

    fn net() -> Network {
        Network::seeded(
            23,
            3,
            &[
                LayerSpec::dense(8, Activation::Relu),
                LayerSpec::dense(4, Activation::Relu),
                LayerSpec::dense(2, Activation::Identity),
            ],
        )
    }

    fn train_data(n: usize) -> Vec<Vec<f64>> {
        let mut rng = Prng::seed(99);
        (0..n).map(|_| rng.uniform_vec(3, -0.5, 0.5)).collect()
    }

    #[test]
    fn validation_catches_bad_inputs() {
        let net = net();
        let b = MonitorBuilder::new(&net, 2);
        assert!(matches!(
            b.build(MonitorKind::min_max(), &[]),
            Err(MonitorError::EmptyTrainingSet)
        ));
        assert!(b.build(MonitorKind::min_max(), &[vec![0.0]]).is_err());
        let bad_robust = MonitorBuilder::new(&net, 2).robust(0.1, 2, Domain::Box);
        assert!(bad_robust
            .build(MonitorKind::min_max(), &train_data(4))
            .is_err());
        let neg_delta = MonitorBuilder::new(&net, 2).robust(-0.1, 0, Domain::Box);
        assert!(neg_delta
            .build(MonitorKind::min_max(), &train_data(4))
            .is_err());
        let neg_gamma = MonitorBuilder::new(&net, 2);
        assert!(neg_gamma
            .build(MonitorKind::min_max_enlarged(-1.0), &train_data(4))
            .is_err());
    }

    #[test]
    fn standard_monitors_accept_training_data() {
        let net = net();
        let data = train_data(64);
        for kind in [
            MonitorKind::min_max(),
            MonitorKind::pattern(),
            MonitorKind::interval(2),
        ] {
            let m = MonitorBuilder::new(&net, 4)
                .build(kind.clone(), &data)
                .unwrap();
            for x in &data {
                assert!(
                    !m.warns(&net, x).unwrap(),
                    "{kind:?} warned on its own training data"
                );
            }
        }
    }

    #[test]
    fn robust_monitors_accept_training_data_and_perturbations() {
        let net = net();
        let data = train_data(32);
        let delta = 0.03;
        let mut rng = Prng::seed(7);
        for kind in [
            MonitorKind::min_max(),
            MonitorKind::pattern(),
            MonitorKind::interval(2),
        ] {
            let m = MonitorBuilder::new(&net, 4)
                .robust(delta, 0, Domain::Box)
                .build(kind.clone(), &data)
                .unwrap();
            // Lemma 1: Δ-close inputs never warn.
            for x in data.iter().take(16) {
                for _ in 0..8 {
                    let pert: Vec<f64> =
                        x.iter().map(|&v| v + rng.uniform(-delta, delta)).collect();
                    assert!(!m.warns(&net, &pert).unwrap(), "{kind:?} violated Lemma 1");
                }
            }
        }
    }

    #[test]
    fn robust_pattern_admits_no_fewer_patterns_than_standard() {
        let net = net();
        let data = train_data(48);
        let std_m = MonitorBuilder::new(&net, 4)
            .build(MonitorKind::pattern(), &data)
            .unwrap();
        let rob_m = MonitorBuilder::new(&net, 4)
            .robust(0.05, 0, Domain::Box)
            .build(MonitorKind::pattern(), &data)
            .unwrap();
        let (s, r) = (std_m.as_pattern().unwrap(), rob_m.as_pattern().unwrap());
        assert!(r.pattern_count() >= s.pattern_count());
    }

    #[test]
    fn parallel_equals_serial() {
        let net = net();
        let data = train_data(200);
        let serial = MonitorBuilder::new(&net, 4)
            .robust(0.02, 0, Domain::Box)
            .build(MonitorKind::min_max(), &data)
            .unwrap();
        let parallel = MonitorBuilder::new(&net, 4)
            .robust(0.02, 0, Domain::Box)
            .parallel(true)
            .build(MonitorKind::min_max(), &data)
            .unwrap();
        let (s, p) = (serial.as_min_max().unwrap(), parallel.as_min_max().unwrap());
        assert_eq!(s.lo(), p.lo());
        assert_eq!(s.hi(), p.hi());
    }

    #[test]
    fn neuron_subset_restricts_dimension() {
        let net = net();
        let m = MonitorBuilder::new(&net, 4)
            .neurons(vec![0, 2])
            .build(MonitorKind::min_max(), &train_data(16))
            .unwrap();
        assert_eq!(m.extractor().dim(), 2);
    }

    #[test]
    fn enlarged_min_max_accepts_more() {
        let net = net();
        let data = train_data(32);
        let plain = MonitorBuilder::new(&net, 4)
            .build(MonitorKind::min_max(), &data)
            .unwrap();
        let bloated = MonitorBuilder::new(&net, 4)
            .build(MonitorKind::min_max_enlarged(0.5), &data)
            .unwrap();
        let (p, b) = (plain.as_min_max().unwrap(), bloated.as_min_max().unwrap());
        assert!(b.mean_width() > p.mean_width());
    }

    #[test]
    fn per_class_build_and_dispatch() {
        let net = net(); // 2 output classes
        let data = train_data(40);
        let labels: Vec<usize> = data.iter().map(|x| net.predict_class(x)).collect();
        // Guard: both classes must be populated for this seed.
        assert!(labels.contains(&0) && labels.contains(&1));
        let pc = MonitorBuilder::new(&net, 4)
            .build_per_class(MonitorKind::pattern(), &data, &labels, 2)
            .unwrap();
        for x in &data {
            assert!(!pc.warns(&net, x).unwrap());
        }
    }

    #[test]
    fn per_class_validates_labels() {
        let net = net();
        let data = train_data(8);
        let b = MonitorBuilder::new(&net, 4);
        assert!(b
            .build_per_class(MonitorKind::pattern(), &data, &[0; 7], 2)
            .is_err());
        assert!(b
            .build_per_class(MonitorKind::pattern(), &data, &[5; 8], 2)
            .is_err());
        assert!(b
            .build_per_class(MonitorKind::pattern(), &data, &[0; 8], 2)
            .is_err()); // class 1 empty
    }
}

impl std::fmt::Display for AnyMonitor {
    /// A one-line "monitor card" for experiment logs: family, monitored
    /// boundary and width, samples absorbed, and coverage when meaningful.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let fx = self.extractor();
        match self {
            AnyMonitor::MinMax(m) => write!(
                f,
                "min-max monitor @ boundary {} ({} neurons, {} samples, mean width {:.4})",
                fx.layer(),
                fx.dim(),
                m.samples(),
                m.mean_width()
            ),
            AnyMonitor::Pattern(m) => write!(
                f,
                "pattern monitor @ boundary {} ({} neurons, {} samples, {} patterns, coverage {:.2e})",
                fx.layer(),
                fx.dim(),
                m.samples(),
                m.pattern_count(),
                m.coverage()
            ),
            AnyMonitor::Interval(m) => write!(
                f,
                "{}-bit interval monitor @ boundary {} ({} neurons, {} samples, coverage {:.2e})",
                m.bits(),
                fx.layer(),
                fx.dim(),
                m.samples(),
                m.coverage()
            ),
        }
    }
}

#[cfg(test)]
mod display_tests {
    use super::*;
    use napmon_nn::{Activation, LayerSpec};
    use napmon_tensor::Prng;

    #[test]
    fn monitor_cards_name_family_and_boundary() {
        let net = Network::seeded(7, 3, &[LayerSpec::dense(6, Activation::Relu)]);
        let mut rng = Prng::seed(8);
        let data: Vec<Vec<f64>> = (0..16).map(|_| rng.uniform_vec(3, -1.0, 1.0)).collect();
        let b = MonitorBuilder::new(&net, 2);
        let mm = b.build(MonitorKind::min_max(), &data).unwrap();
        assert!(mm.to_string().starts_with("min-max monitor @ boundary 2"));
        let pm = b.build(MonitorKind::pattern(), &data).unwrap();
        assert!(pm.to_string().contains("pattern monitor @ boundary 2"));
        assert!(pm.to_string().contains("coverage"));
        let im = b.build(MonitorKind::interval(2), &data).unwrap();
        assert!(im.to_string().starts_with("2-bit interval monitor"));
    }
}
