//! Multi-bit interval activation-pattern monitors (§III-C of the paper).
//!
//! Instead of one on/off bit per neuron, each neuron gets `B` bits encoding
//! which of `2^B` value intervals (split by `2^B − 1` ascending thresholds)
//! the neuron landed in. The robust variant maps the perturbation estimate
//! `[l_j, u_j]` to the *set* of interval symbols it touches — always a
//! contiguous symbol range, because the symbol index is monotone in the
//! neuron value. For `B = 2` this regenerates exactly the ten cases of the
//! paper's Figure 1.
//!
//! ## Boundary convention
//!
//! We use the uniform half-open rule `symbol(v) = #{ i : v > c_i }`, which
//! coincides with the paper's 2-bit table everywhere except the measure-zero
//! boundary `v = c_2` (the paper's table mixes strict and non-strict
//! comparisons between rows; the uniform rule is the one that also agrees
//! with the paper's *on-off* monitor `b_j = 1 ⇔ v_j > c_j` at `B = 1`).

use crate::error::MonitorError;
use crate::feature::FeatureExtractor;
use crate::monitor::{Monitor, QueryScratch, Verdict, Violation};
use napmon_absint::BoxBounds;
use napmon_bdd::{Bdd, BitWord, NodeId};
use napmon_tensor::stats;
use serde::{Deserialize, Serialize};

/// How per-neuron thresholds are chosen from the training features.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ThresholdPolicy {
    /// All thresholds at `0.0` (the DATE 2019 "sign of the neuron value");
    /// only meaningful for 1-bit monitors.
    Sign,
    /// A single threshold at the mean visited value (1-bit only).
    Mean,
    /// `2^B − 1` evenly spaced interior quantiles of the visited values —
    /// the natural generalization for multi-bit monitors.
    Quantiles,
    /// Explicit per-neuron threshold lists (each ascending, length
    /// `2^B − 1`).
    Explicit(Vec<Vec<f64>>),
}

impl ThresholdPolicy {
    /// Resolves the policy into per-neuron ascending threshold lists.
    ///
    /// `features` holds the training feature vectors (used by the
    /// data-dependent policies).
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::InvalidConfig`] when the policy does not
    /// support the requested bit width or the explicit thresholds are
    /// malformed.
    pub fn resolve(
        &self,
        dim: usize,
        bits: usize,
        features: &[Vec<f64>],
    ) -> Result<Vec<Vec<f64>>, MonitorError> {
        let per_neuron = (1usize << bits) - 1;
        match self {
            ThresholdPolicy::Sign => {
                if bits != 1 {
                    return Err(MonitorError::InvalidConfig(
                        "Sign policy requires bits = 1".into(),
                    ));
                }
                Ok(vec![vec![0.0]; dim])
            }
            ThresholdPolicy::Mean => {
                if bits != 1 {
                    return Err(MonitorError::InvalidConfig(
                        "Mean policy requires bits = 1".into(),
                    ));
                }
                if features.is_empty() {
                    return Err(MonitorError::EmptyTrainingSet);
                }
                let mut out = Vec::with_capacity(dim);
                for j in 0..dim {
                    let column: Vec<f64> = features.iter().map(|f| f[j]).collect();
                    out.push(vec![stats::mean(&column)]);
                }
                Ok(out)
            }
            ThresholdPolicy::Quantiles => {
                if features.is_empty() {
                    return Err(MonitorError::EmptyTrainingSet);
                }
                let mut out = Vec::with_capacity(dim);
                for j in 0..dim {
                    let column: Vec<f64> = features.iter().map(|f| f[j]).collect();
                    let mut qs = stats::interior_quantiles(&column, per_neuron);
                    // Degenerate columns (constant activations) produce tied
                    // quantiles; nudge them apart so the list is ascending.
                    for i in 1..qs.len() {
                        if qs[i] <= qs[i - 1] {
                            qs[i] = qs[i - 1] + f64::EPSILON.max(qs[i - 1].abs() * 1e-12);
                        }
                    }
                    out.push(qs);
                }
                Ok(out)
            }
            ThresholdPolicy::Explicit(lists) => {
                if lists.len() != dim {
                    return Err(MonitorError::DimensionMismatch {
                        context: "explicit thresholds".into(),
                        expected: dim,
                        actual: lists.len(),
                    });
                }
                for (j, list) in lists.iter().enumerate() {
                    if list.len() != per_neuron {
                        return Err(MonitorError::InvalidConfig(format!(
                            "neuron {j}: expected {per_neuron} thresholds, got {}",
                            list.len()
                        )));
                    }
                    if list.windows(2).any(|w| w[0] >= w[1]) {
                        return Err(MonitorError::InvalidConfig(format!(
                            "neuron {j}: thresholds not ascending"
                        )));
                    }
                }
                Ok(lists.clone())
            }
        }
    }
}

/// A multi-bit interval activation-pattern monitor, stored in a BDD with
/// `B` variables per neuron (most-significant bit first).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IntervalPatternMonitor {
    extractor: FeatureExtractor,
    bits: usize,
    /// Per neuron: `2^B − 1` ascending thresholds.
    thresholds: Vec<Vec<f64>>,
    bdd: Bdd,
    root: NodeId,
    samples: usize,
}

impl IntervalPatternMonitor {
    /// Creates an empty monitor.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::InvalidConfig`] for `bits` outside `1..=8`
    /// or malformed thresholds (wrong count, not ascending).
    pub fn empty(
        extractor: FeatureExtractor,
        bits: usize,
        thresholds: Vec<Vec<f64>>,
    ) -> Result<Self, MonitorError> {
        if bits == 0 || bits > 8 {
            return Err(MonitorError::InvalidConfig(format!(
                "bits per neuron must be in 1..=8, got {bits}"
            )));
        }
        if thresholds.len() != extractor.dim() {
            return Err(MonitorError::DimensionMismatch {
                context: "interval thresholds".into(),
                expected: extractor.dim(),
                actual: thresholds.len(),
            });
        }
        let per_neuron = (1usize << bits) - 1;
        for (j, list) in thresholds.iter().enumerate() {
            if list.len() != per_neuron {
                return Err(MonitorError::InvalidConfig(format!(
                    "neuron {j}: expected {per_neuron} thresholds, got {}",
                    list.len()
                )));
            }
            if list.windows(2).any(|w| w[0] >= w[1]) {
                return Err(MonitorError::InvalidConfig(format!(
                    "neuron {j}: thresholds not ascending"
                )));
            }
        }
        let bdd = Bdd::new(extractor.dim() * bits);
        Ok(Self {
            extractor,
            bits,
            thresholds,
            bdd,
            root: Bdd::FALSE,
            samples: 0,
        })
    }

    /// Bits per neuron `B`.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// The interval symbol of value `v` for neuron `j`:
    /// `#{ i : v > c_{j,i} }`, in `0..2^B`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn symbol(&self, j: usize, v: f64) -> u16 {
        self.thresholds[j].iter().filter(|&&c| v > c).count() as u16
    }

    /// The contiguous symbol set touched by `[l, u]` for neuron `j` —
    /// the robust encoding `ab_R` of the paper (Figure 1 for `B = 2`).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range or `l > u`.
    pub fn symbol_range(&self, j: usize, l: f64, u: f64) -> std::ops::RangeInclusive<u16> {
        assert!(l <= u, "symbol_range: empty interval [{l}, {u}]");
        self.symbol(j, l)..=self.symbol(j, u)
    }

    /// The abstraction `ab`: one symbol per neuron.
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the monitor dimension.
    pub fn abstract_symbols(&self, features: &[f64]) -> Vec<u16> {
        assert_eq!(
            features.len(),
            self.thresholds.len(),
            "abstract_symbols: dimension mismatch"
        );
        features
            .iter()
            .enumerate()
            .map(|(j, &v)| self.symbol(j, v))
            .collect()
    }

    /// The packed bit encoding of the symbol word (neuron-major, most
    /// significant bit first): the query-path abstraction. Computes the
    /// symbols inline — no intermediate symbol vector, no heap allocation
    /// for monitors up to [`napmon_bdd::INLINE_BITS`] total bits.
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the monitor dimension.
    pub fn abstract_bitword(&self, features: &[f64]) -> BitWord {
        let mut word = BitWord::zeros(self.thresholds.len() * self.bits);
        self.abstract_into(features, &mut word);
        word
    }

    /// Packs the bit encoding into a caller-owned scratch word (resized as
    /// needed; zero allocation once grown).
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the monitor dimension.
    pub fn abstract_into(&self, features: &[f64], word: &mut BitWord) {
        assert_eq!(
            features.len(),
            self.thresholds.len(),
            "abstract_symbols: dimension mismatch"
        );
        let bits = self.bits;
        // fill_with visits bits in order, so each neuron's symbol is
        // computed once and reused for its `bits` consecutive positions.
        let mut current_neuron = usize::MAX;
        let mut symbol = 0u16;
        word.fill_with(self.thresholds.len() * bits, |i| {
            let j = i / bits;
            if j != current_neuron {
                symbol = self.symbol(j, features[j]);
                current_neuron = j;
            }
            (symbol >> (bits - 1 - i % bits)) & 1 == 1
        });
    }

    /// Folds one feature vector (standard construction).
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the monitor dimension.
    pub fn absorb_point(&mut self, features: &[f64]) {
        let word = self.abstract_bitword(features);
        self.root = self.bdd.insert_word(self.root, &word);
        self.samples += 1;
    }

    /// Folds one perturbation estimate (robust construction): per neuron
    /// the contiguous symbol set, inserted as a product via `word2set`.
    ///
    /// # Panics
    ///
    /// Panics if `bounds.dim()` differs from the monitor dimension.
    pub fn absorb_bounds(&mut self, bounds: &BoxBounds) {
        assert_eq!(
            bounds.dim(),
            self.thresholds.len(),
            "absorb_bounds: dimension mismatch"
        );
        let blocks: Vec<Vec<u16>> = (0..self.thresholds.len())
            .map(|j| {
                self.symbol_range(j, bounds.lo()[j], bounds.hi()[j])
                    .collect()
            })
            .collect();
        let cube = self.bdd.product_of_blocks(&blocks, self.bits);
        self.root = self.bdd.or(self.root, cube);
        self.samples += 1;
    }

    /// Whether the symbol word of `features` is in the recorded set.
    pub fn contains(&self, features: &[f64]) -> bool {
        let word = self.abstract_bitword(features);
        self.bdd.eval(self.root, &word)
    }

    /// Packed membership against a pre-abstracted word.
    ///
    /// # Panics
    ///
    /// Panics if `word.len() != dim * bits`.
    #[inline]
    pub fn contains_packed(&self, word: &BitWord) -> bool {
        self.bdd.eval(self.root, word)
    }

    /// Whether some recorded bit word is within Hamming distance `tau` of
    /// `word` (over the `bits × neurons` encoding; packed or `bool`-slice
    /// form).
    ///
    /// # Panics
    ///
    /// Panics if `word.bit_len() != dim * bits`.
    pub fn contains_word_within<W: napmon_bdd::AsBits + ?Sized>(
        &self,
        word: &W,
        tau: usize,
    ) -> bool {
        self.bdd.contains_within_hamming(self.root, word, tau)
    }

    /// Number of absorbed samples.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Number of distinct symbol words admitted.
    pub fn pattern_count(&self) -> f64 {
        self.bdd.satcount(self.root)
    }

    /// Fraction of the `2^{B·d}` pattern space admitted (monitor
    /// "efficiency" in the sense of the paper's conclusion).
    pub fn coverage(&self) -> f64 {
        self.bdd.coverage(self.root)
    }

    /// BDD nodes reachable from the root (memory proxy).
    pub fn store_size(&self) -> usize {
        self.bdd.reachable_nodes(self.root)
    }

    /// Per-neuron thresholds.
    pub fn thresholds(&self) -> &[Vec<f64>] {
        &self.thresholds
    }
}

impl Monitor for IntervalPatternMonitor {
    fn extractor(&self) -> &FeatureExtractor {
        &self.extractor
    }

    fn verdict_features(&self, features: &[f64]) -> Verdict {
        let word = self.abstract_bitword(features);
        if self.contains_packed(&word) {
            Verdict::ok()
        } else {
            Verdict::warn(vec![Violation::UnknownPattern {
                word: word.to_bools(),
            }])
        }
    }

    fn verdict_features_scratch(&self, features: &[f64], scratch: &mut QueryScratch) -> Verdict {
        self.abstract_into(features, &mut scratch.word);
        if self.contains_packed(&scratch.word) {
            Verdict::ok()
        } else {
            Verdict::warn(vec![Violation::UnknownPattern {
                word: scratch.word.to_bools(),
            }])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use napmon_nn::{Activation, LayerSpec, Network};

    fn extractor(width: usize) -> FeatureExtractor {
        let net = Network::seeded(3, 2, &[LayerSpec::dense(width, Activation::Relu)]);
        FeatureExtractor::new(&net, 2).unwrap()
    }

    fn two_bit_monitor() -> IntervalPatternMonitor {
        // One neuron with thresholds c1=0, c2=1, c3=2.
        IntervalPatternMonitor::empty(extractor(1), 2, vec![vec![0.0, 1.0, 2.0]]).unwrap()
    }

    #[test]
    fn construction_validates_inputs() {
        assert!(IntervalPatternMonitor::empty(extractor(1), 0, vec![vec![]]).is_err());
        assert!(IntervalPatternMonitor::empty(extractor(1), 2, vec![vec![0.0, 1.0]]).is_err());
        assert!(IntervalPatternMonitor::empty(extractor(1), 2, vec![vec![2.0, 1.0, 0.0]]).is_err());
        assert!(IntervalPatternMonitor::empty(extractor(2), 2, vec![vec![0.0, 1.0, 2.0]]).is_err());
        assert!(two_bit_monitor().thresholds().len() == 1);
    }

    #[test]
    fn symbols_follow_paper_table() {
        let m = two_bit_monitor();
        // Paper's 2-bit encoding: 11 iff v > c3; 00 iff v <= c1.
        assert_eq!(m.symbol(0, 3.0), 3); // > c3 -> 11
        assert_eq!(m.symbol(0, 1.5), 2); // c2 < v <= c3 -> 10
        assert_eq!(m.symbol(0, 2.0), 2); // v == c3 stays 10 (paper: c3 >= v >= c2)
        assert_eq!(m.symbol(0, 0.5), 1); // c1 < v < c2 -> 01
        assert_eq!(m.symbol(0, 0.0), 0); // v == c1 -> 00 (paper: otherwise)
        assert_eq!(m.symbol(0, -1.0), 0);
    }

    #[test]
    fn figure_1_robust_encoding_all_ten_cases() {
        let m = two_bit_monitor();
        let cases: Vec<((f64, f64), Vec<u16>)> = vec![
            ((2.5, 3.0), vec![3]),           // l > c3:              {11}
            ((1.2, 1.8), vec![2]),           // c2 <= l <= u <= c3:  {10}
            ((0.3, 0.7), vec![1]),           // c1 < l <= u < c2:    {01}
            ((-1.0, -0.5), vec![0]),         // u <= c1:             {00}
            ((-0.5, 0.5), vec![0, 1]),       // straddles c1:        {00,01}
            ((0.5, 1.5), vec![1, 2]),        // straddles c2:        {01,10}
            ((1.5, 2.5), vec![2, 3]),        // straddles c3:        {10,11}
            ((-0.5, 1.5), vec![0, 1, 2]),    // c1 and c2:           {00,01,10}
            ((0.5, 2.5), vec![1, 2, 3]),     // c2 and c3:           {01,10,11}
            ((-0.5, 2.5), vec![0, 1, 2, 3]), // everything
        ];
        for ((l, u), expected) in cases {
            let got: Vec<u16> = m.symbol_range(0, l, u).collect();
            assert_eq!(got, expected, "interval [{l}, {u}]");
        }
    }

    #[test]
    fn absorbed_points_are_members() {
        let mut m = two_bit_monitor();
        m.absorb_point(&[1.5]); // symbol 10
        assert!(m.contains(&[1.2]));
        assert!(!m.contains(&[0.5]));
        assert!(!m.contains(&[2.5]));
        assert_eq!(m.pattern_count(), 1.0);
    }

    #[test]
    fn robust_absorption_admits_the_whole_range() {
        let mut m = two_bit_monitor();
        m.absorb_bounds(&BoxBounds::new(vec![0.5], vec![1.5])); // {01, 10}
        assert!(m.contains(&[0.7]));
        assert!(m.contains(&[1.3]));
        assert!(!m.contains(&[-1.0]));
        assert!(!m.contains(&[5.0]));
        assert_eq!(m.pattern_count(), 2.0);
    }

    #[test]
    fn multi_neuron_product_set() {
        let mut m = IntervalPatternMonitor::empty(
            extractor(2),
            2,
            vec![vec![0.0, 1.0, 2.0], vec![0.0, 1.0, 2.0]],
        )
        .unwrap();
        m.absorb_bounds(&BoxBounds::new(vec![0.5, -1.0], vec![1.5, 0.5]));
        // Neuron 0: {01,10}; neuron 1: {00,01} -> 4 words.
        assert_eq!(m.pattern_count(), 4.0);
        assert!(m.contains(&[0.7, -0.2]));
        assert!(m.contains(&[1.2, 0.3]));
        assert!(!m.contains(&[1.2, 1.2]));
    }

    #[test]
    fn one_bit_monitor_degenerates_to_on_off() {
        let mut m =
            IntervalPatternMonitor::empty(extractor(2), 1, vec![vec![0.0], vec![0.0]]).unwrap();
        m.absorb_point(&[1.0, -1.0]); // word 1 0
        assert!(m.contains(&[0.5, -0.5]));
        assert!(!m.contains(&[0.5, 0.5]));
    }

    #[test]
    fn three_bit_monitor_resolves_finer() {
        let thresholds: Vec<f64> = (1..8).map(|i| i as f64).collect(); // 1..7
        let mut m = IntervalPatternMonitor::empty(extractor(1), 3, vec![thresholds]).unwrap();
        m.absorb_point(&[3.5]); // symbol = #{c < 3.5} = 3
        assert!(m.contains(&[3.2]));
        assert!(!m.contains(&[4.2]));
        assert_eq!(m.abstract_symbols(&[3.5]), vec![3]);
    }

    #[test]
    fn quantile_policy_resolves_ascending_thresholds() {
        let features: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64, 42.0]).collect();
        let lists = ThresholdPolicy::Quantiles.resolve(2, 2, &features).unwrap();
        assert_eq!(lists.len(), 2);
        assert_eq!(lists[0].len(), 3);
        assert!(lists[0].windows(2).all(|w| w[0] < w[1]));
        // Constant column: nudged apart but still ascending.
        assert!(lists[1].windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn sign_and_mean_policies_only_one_bit() {
        let features = vec![vec![1.0], vec![3.0]];
        assert!(ThresholdPolicy::Sign.resolve(1, 2, &features).is_err());
        assert!(ThresholdPolicy::Mean.resolve(1, 2, &features).is_err());
        assert_eq!(
            ThresholdPolicy::Sign.resolve(1, 1, &features).unwrap(),
            vec![vec![0.0]]
        );
        assert_eq!(
            ThresholdPolicy::Mean.resolve(1, 1, &features).unwrap(),
            vec![vec![2.0]]
        );
    }

    #[test]
    fn explicit_policy_is_validated() {
        let ok = ThresholdPolicy::Explicit(vec![vec![0.0, 1.0, 2.0]]);
        assert!(ok.resolve(1, 2, &[]).is_ok());
        let wrong_len = ThresholdPolicy::Explicit(vec![vec![0.0]]);
        assert!(wrong_len.resolve(1, 2, &[]).is_err());
        let not_ascending = ThresholdPolicy::Explicit(vec![vec![1.0, 0.5, 2.0]]);
        assert!(not_ascending.resolve(1, 2, &[]).is_err());
    }

    #[test]
    fn footnote_3_minmax_generalization() {
        // c3 = max visited, c2 = min visited, c1 = -inf stand-in: interval
        // monitors generalize min-max monitors (paper footnote 3).
        let (lo, hi) = (-0.5, 2.5);
        let mut m =
            IntervalPatternMonitor::empty(extractor(1), 2, vec![vec![-1e300, lo, hi]]).unwrap();
        // Everything strictly inside (min, max] maps to symbol 10.
        m.absorb_bounds(&BoxBounds::new(vec![lo + 1e-9], vec![hi]));
        assert_eq!(m.pattern_count(), 1.0);
        assert!(m.contains(&[0.0])); // inside (min, max]
        assert!(!m.contains(&[3.0])); // above max -> 11
        assert!(!m.contains(&[-0.7])); // below min -> 01
    }
}
