//! Multi-bit interval activation-pattern monitors (§III-C of the paper).
//!
//! Instead of one on/off bit per neuron, each neuron gets `B` bits encoding
//! which of `2^B` value intervals (split by `2^B − 1` ascending thresholds)
//! the neuron landed in. The robust variant maps the perturbation estimate
//! `[l_j, u_j]` to the *set* of interval symbols it touches — always a
//! contiguous symbol range, because the symbol index is monotone in the
//! neuron value. For `B = 2` this regenerates exactly the ten cases of the
//! paper's Figure 1.
//!
//! ## Boundary convention
//!
//! We use the uniform half-open rule `symbol(v) = #{ i : v > c_i }`, which
//! coincides with the paper's 2-bit table everywhere except the measure-zero
//! boundary `v = c_2` (the paper's table mixes strict and non-strict
//! comparisons between rows; the uniform rule is the one that also agrees
//! with the paper's *on-off* monitor `b_j = 1 ⇔ v_j > c_j` at `B = 1`).

use crate::error::MonitorError;
use crate::feature::FeatureExtractor;
use crate::monitor::{Monitor, QueryScratch, Verdict, Violation};
use crate::source::{ExternalHandle, SharedPatternSource, SourceDescriptor};
use napmon_absint::BoxBounds;
use napmon_bdd::{Bdd, BitWord, NodeId};
use napmon_nn::Network;
use napmon_tensor::stats;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

/// How per-neuron thresholds are chosen from the training features.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ThresholdPolicy {
    /// All thresholds at `0.0` (the DATE 2019 "sign of the neuron value");
    /// only meaningful for 1-bit monitors.
    Sign,
    /// A single threshold at the mean visited value (1-bit only).
    Mean,
    /// `2^B − 1` evenly spaced interior quantiles of the visited values —
    /// the natural generalization for multi-bit monitors.
    Quantiles,
    /// Explicit per-neuron threshold lists (each ascending, length
    /// `2^B − 1`).
    Explicit(Vec<Vec<f64>>),
}

impl ThresholdPolicy {
    /// Resolves the policy into per-neuron ascending threshold lists.
    ///
    /// `features` holds the training feature vectors (used by the
    /// data-dependent policies).
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::InvalidConfig`] when the policy does not
    /// support the requested bit width or the explicit thresholds are
    /// malformed.
    pub fn resolve(
        &self,
        dim: usize,
        bits: usize,
        features: &[Vec<f64>],
    ) -> Result<Vec<Vec<f64>>, MonitorError> {
        let per_neuron = (1usize << bits) - 1;
        match self {
            ThresholdPolicy::Sign => {
                if bits != 1 {
                    return Err(MonitorError::InvalidConfig(
                        "Sign policy requires bits = 1".into(),
                    ));
                }
                Ok(vec![vec![0.0]; dim])
            }
            ThresholdPolicy::Mean => {
                if bits != 1 {
                    return Err(MonitorError::InvalidConfig(
                        "Mean policy requires bits = 1".into(),
                    ));
                }
                if features.is_empty() {
                    return Err(MonitorError::EmptyTrainingSet);
                }
                let mut out = Vec::with_capacity(dim);
                for j in 0..dim {
                    let column: Vec<f64> = features.iter().map(|f| f[j]).collect();
                    out.push(vec![stats::mean(&column)]);
                }
                Ok(out)
            }
            ThresholdPolicy::Quantiles => {
                if features.is_empty() {
                    return Err(MonitorError::EmptyTrainingSet);
                }
                let mut out = Vec::with_capacity(dim);
                for j in 0..dim {
                    let column: Vec<f64> = features.iter().map(|f| f[j]).collect();
                    let mut qs = stats::interior_quantiles(&column, per_neuron);
                    // Degenerate columns (constant activations) produce tied
                    // quantiles; nudge them apart so the list is ascending.
                    for i in 1..qs.len() {
                        if qs[i] <= qs[i - 1] {
                            qs[i] = qs[i - 1] + f64::EPSILON.max(qs[i - 1].abs() * 1e-12);
                        }
                    }
                    out.push(qs);
                }
                Ok(out)
            }
            ThresholdPolicy::Explicit(lists) => {
                if lists.len() != dim {
                    return Err(MonitorError::DimensionMismatch {
                        context: "explicit thresholds".into(),
                        expected: dim,
                        actual: lists.len(),
                    });
                }
                for (j, list) in lists.iter().enumerate() {
                    if list.len() != per_neuron {
                        return Err(MonitorError::InvalidConfig(format!(
                            "neuron {j}: expected {per_neuron} thresholds, got {}",
                            list.len()
                        )));
                    }
                    if list.windows(2).any(|w| w[0] >= w[1]) {
                        return Err(MonitorError::InvalidConfig(format!(
                            "neuron {j}: thresholds not ascending"
                        )));
                    }
                }
                Ok(lists.clone())
            }
        }
    }
}

/// Where an interval monitor's symbol-word set lives: the paper's BDD, or
/// an external [`crate::PatternSource`] over the packed `B·d`-bit
/// encoding.
#[derive(Debug, Clone)]
enum IntervalStore {
    Bdd { bdd: Bdd, root: NodeId },
    External(ExternalHandle),
}

/// A multi-bit interval activation-pattern monitor with `B` variables per
/// neuron (most-significant bit first), stored in a BDD (the paper's
/// choice) or delegated to an external pattern source
/// ([`IntervalPatternMonitor::with_source`]).
#[derive(Debug, Clone)]
pub struct IntervalPatternMonitor {
    extractor: FeatureExtractor,
    bits: usize,
    /// Per neuron: `2^B − 1` ascending thresholds.
    thresholds: Vec<Vec<f64>>,
    store: IntervalStore,
    samples: usize,
}

/// Serialization stays field-compatible with the historical BDD-only
/// struct (`bdd` + `root` fields inline), so existing artifacts keep
/// loading; store-backed monitors write an `external` descriptor field
/// instead of the arena. Hand-written because the vendored serde derive
/// cannot express either the enum flattening or field defaults.
impl Serialize for IntervalPatternMonitor {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::Error;
        let mut map = serde::Map::new();
        let mut put = |key: &str, value: Result<serde::Value, serde::ValueError>| {
            value.map(|v| map.insert(key.to_string(), v))
        };
        put("extractor", serde::to_value(&self.extractor)).map_err(S::Error::custom)?;
        put("bits", serde::to_value(&self.bits)).map_err(S::Error::custom)?;
        put("thresholds", serde::to_value(&self.thresholds)).map_err(S::Error::custom)?;
        put("samples", serde::to_value(&self.samples)).map_err(S::Error::custom)?;
        match &self.store {
            IntervalStore::Bdd { bdd, root } => {
                put("bdd", serde::to_value(bdd)).map_err(S::Error::custom)?;
                put("root", serde::to_value(root)).map_err(S::Error::custom)?;
            }
            IntervalStore::External(handle) => {
                put("external", serde::to_value(handle)).map_err(S::Error::custom)?;
            }
        }
        serializer.serialize_value(serde::Value::Object(map))
    }
}

impl<'de> Deserialize<'de> for IntervalPatternMonitor {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        use serde::de::Error;
        let serde::Value::Object(mut map) = deserializer.deserialize_value()? else {
            return Err(D::Error::custom(
                "expected object for IntervalPatternMonitor",
            ));
        };
        fn take<E: Error>(map: &mut serde::Map, key: &str) -> Result<serde::Value, E> {
            map.remove(key).ok_or_else(|| {
                E::custom(format!("missing field `{key}` in IntervalPatternMonitor"))
            })
        }
        let extractor: FeatureExtractor =
            serde::from_value(take(&mut map, "extractor")?).map_err(D::Error::custom)?;
        let bits: usize = serde::from_value(take(&mut map, "bits")?).map_err(D::Error::custom)?;
        let thresholds: Vec<Vec<f64>> =
            serde::from_value(take(&mut map, "thresholds")?).map_err(D::Error::custom)?;
        let samples: usize =
            serde::from_value(take(&mut map, "samples")?).map_err(D::Error::custom)?;
        let store = if let Some(external) = map.remove("external") {
            IntervalStore::External(serde::from_value(external).map_err(D::Error::custom)?)
        } else {
            IntervalStore::Bdd {
                bdd: serde::from_value(take(&mut map, "bdd")?).map_err(D::Error::custom)?,
                root: serde::from_value(take(&mut map, "root")?).map_err(D::Error::custom)?,
            }
        };
        Ok(Self {
            extractor,
            bits,
            thresholds,
            store,
            samples,
        })
    }
}

impl IntervalPatternMonitor {
    /// Creates an empty monitor.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::InvalidConfig`] for `bits` outside `1..=8`
    /// or malformed thresholds (wrong count, not ascending).
    pub fn empty(
        extractor: FeatureExtractor,
        bits: usize,
        thresholds: Vec<Vec<f64>>,
    ) -> Result<Self, MonitorError> {
        if bits == 0 || bits > 8 {
            return Err(MonitorError::InvalidConfig(format!(
                "bits per neuron must be in 1..=8, got {bits}"
            )));
        }
        if thresholds.len() != extractor.dim() {
            return Err(MonitorError::DimensionMismatch {
                context: "interval thresholds".into(),
                expected: extractor.dim(),
                actual: thresholds.len(),
            });
        }
        let per_neuron = (1usize << bits) - 1;
        for (j, list) in thresholds.iter().enumerate() {
            if list.len() != per_neuron {
                return Err(MonitorError::InvalidConfig(format!(
                    "neuron {j}: expected {per_neuron} thresholds, got {}",
                    list.len()
                )));
            }
            if list.windows(2).any(|w| w[0] >= w[1]) {
                return Err(MonitorError::InvalidConfig(format!(
                    "neuron {j}: thresholds not ascending"
                )));
            }
        }
        let bdd = Bdd::new(extractor.dim() * bits);
        Ok(Self {
            extractor,
            bits,
            thresholds,
            store: IntervalStore::Bdd {
                bdd,
                root: Bdd::FALSE,
            },
            samples: 0,
        })
    }

    /// Creates a monitor whose symbol-word set lives in an external
    /// [`crate::PatternSource`] over the packed `B·d`-bit encoding.
    ///
    /// The source may already hold words (warm start from a store on
    /// disk); they are members immediately.
    ///
    /// # Errors
    ///
    /// Same conditions as [`IntervalPatternMonitor::empty`], plus
    /// [`MonitorError::DimensionMismatch`] if the source's word width is
    /// not `extractor.dim() * bits`.
    pub fn with_source(
        extractor: FeatureExtractor,
        bits: usize,
        thresholds: Vec<Vec<f64>>,
        source: SharedPatternSource,
    ) -> Result<Self, MonitorError> {
        let mut monitor = Self::empty(extractor, bits, thresholds)?;
        let handle = ExternalHandle::attached(source);
        let expected = monitor.extractor.dim() * bits;
        if handle.descriptor().word_bits != expected {
            return Err(MonitorError::DimensionMismatch {
                context: "interval pattern source word width".into(),
                expected,
                actual: handle.descriptor().word_bits,
            });
        }
        monitor.store = IntervalStore::External(handle);
        Ok(monitor)
    }

    /// Bits per neuron `B`.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// The interval symbol of value `v` for neuron `j`:
    /// `#{ i : v > c_{j,i} }`, in `0..2^B`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn symbol(&self, j: usize, v: f64) -> u16 {
        self.thresholds[j].iter().filter(|&&c| v > c).count() as u16
    }

    /// The contiguous symbol set touched by `[l, u]` for neuron `j` —
    /// the robust encoding `ab_R` of the paper (Figure 1 for `B = 2`).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range or `l > u`.
    pub fn symbol_range(&self, j: usize, l: f64, u: f64) -> std::ops::RangeInclusive<u16> {
        assert!(l <= u, "symbol_range: empty interval [{l}, {u}]");
        self.symbol(j, l)..=self.symbol(j, u)
    }

    /// The abstraction `ab`: one symbol per neuron.
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the monitor dimension.
    pub fn abstract_symbols(&self, features: &[f64]) -> Vec<u16> {
        assert_eq!(
            features.len(),
            self.thresholds.len(),
            "abstract_symbols: dimension mismatch"
        );
        features
            .iter()
            .enumerate()
            .map(|(j, &v)| self.symbol(j, v))
            .collect()
    }

    /// The packed bit encoding of the symbol word (neuron-major, most
    /// significant bit first): the query-path abstraction. Computes the
    /// symbols inline — no intermediate symbol vector, no heap allocation
    /// for monitors up to [`napmon_bdd::INLINE_BITS`] total bits.
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the monitor dimension.
    pub fn abstract_bitword(&self, features: &[f64]) -> BitWord {
        let mut word = BitWord::zeros(self.thresholds.len() * self.bits);
        self.abstract_into(features, &mut word);
        word
    }

    /// Packs the bit encoding into a caller-owned scratch word (resized as
    /// needed; zero allocation once grown).
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the monitor dimension.
    pub fn abstract_into(&self, features: &[f64], word: &mut BitWord) {
        assert_eq!(
            features.len(),
            self.thresholds.len(),
            "abstract_symbols: dimension mismatch"
        );
        let bits = self.bits;
        // fill_with visits bits in order, so each neuron's symbol is
        // computed once and reused for its `bits` consecutive positions.
        let mut current_neuron = usize::MAX;
        let mut symbol = 0u16;
        word.fill_with(self.thresholds.len() * bits, |i| {
            let j = i / bits;
            if j != current_neuron {
                symbol = self.symbol(j, features[j]);
                current_neuron = j;
            }
            (symbol >> (bits - 1 - i % bits)) & 1 == 1
        });
    }

    /// Folds one feature vector (standard construction).
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the monitor dimension, or
    /// if an external source fails (construction loops use
    /// [`IntervalPatternMonitor::absorb_point_checked`]).
    pub fn absorb_point(&mut self, features: &[f64]) {
        self.absorb_point_checked(features)
            .expect("pattern source append failed");
    }

    /// Fallible form of [`IntervalPatternMonitor::absorb_point`]:
    /// external sources can fail on the backing medium.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::ExternalSource`] if the backing store
    /// fails.
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the monitor dimension.
    pub fn absorb_point_checked(&mut self, features: &[f64]) -> Result<(), MonitorError> {
        let word = self.abstract_bitword(features);
        match &mut self.store {
            IntervalStore::Bdd { bdd, root } => *root = bdd.insert_word(*root, &word),
            IntervalStore::External(handle) => {
                handle.insert(&word)?;
            }
        }
        self.samples += 1;
        Ok(())
    }

    /// Absorbs one feature vector through `&self` — the operation-time
    /// enlargement path for store-backed monitors; see
    /// [`crate::PatternMonitor::absorb_features_shared`] for the
    /// semantics (shared visibility, `samples` untouched).
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::ExternalSource`] for a BDD-backed monitor
    /// or a failing store.
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the monitor dimension.
    pub fn absorb_features_shared(&self, features: &[f64]) -> Result<bool, MonitorError> {
        let IntervalStore::External(handle) = &self.store else {
            return Err(MonitorError::ExternalSource(
                "operation-time absorption needs a store-backed monitor \
                 (IntervalPatternMonitor::with_source)"
                    .into(),
            ));
        };
        handle.insert(&self.abstract_bitword(features))
    }

    /// Folds one perturbation estimate (robust construction): per neuron
    /// the contiguous symbol set, inserted as a product via `word2set`.
    ///
    /// # Panics
    ///
    /// Panics if `bounds.dim()` differs from the monitor dimension, if a
    /// store-backed monitor would expand more than `2^24` words, or if an
    /// external source fails (see
    /// [`IntervalPatternMonitor::absorb_bounds_checked`]).
    pub fn absorb_bounds(&mut self, bounds: &BoxBounds) {
        self.absorb_bounds_checked(bounds)
            .expect("pattern source append failed");
    }

    /// Fallible form of [`IntervalPatternMonitor::absorb_bounds`].
    ///
    /// With the BDD store the symbol-set product inserts in time linear in
    /// the word length; an external store must materialize the product —
    /// the same footnote-2 blow-up as the hash-set on-off backend, capped
    /// at `2^24` words.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::ExternalSource`] if the backing store
    /// fails.
    ///
    /// # Panics
    ///
    /// Panics if `bounds.dim()` differs from the monitor dimension or the
    /// external product would exceed `2^24` words.
    pub fn absorb_bounds_checked(&mut self, bounds: &BoxBounds) -> Result<(), MonitorError> {
        assert_eq!(
            bounds.dim(),
            self.thresholds.len(),
            "absorb_bounds: dimension mismatch"
        );
        let blocks: Vec<Vec<u16>> = (0..self.thresholds.len())
            .map(|j| {
                self.symbol_range(j, bounds.lo()[j], bounds.hi()[j])
                    .collect()
            })
            .collect();
        let bits = self.bits;
        match &mut self.store {
            IntervalStore::Bdd { bdd, root } => {
                let cube = bdd.product_of_blocks(&blocks, bits);
                *root = bdd.or(*root, cube);
            }
            IntervalStore::External(handle) => {
                // Overflow-proof product: bail out the moment the running
                // expansion passes the cap, so a 2^64-word product can
                // neither wrap past the check nor hang the enumeration.
                let expansion = blocks
                    .iter()
                    .try_fold(1u64, |acc, b| acc.checked_mul(b.len() as u64))
                    .filter(|&n| n <= 1 << 24);
                assert!(
                    expansion.is_some(),
                    "store word2set would expand more than 2^24 words; use the BDD store"
                );
                // Mixed-radix enumeration of the symbol product.
                let mut indices = vec![0usize; blocks.len()];
                'product: loop {
                    let word = BitWord::from_fn(blocks.len() * bits, |i| {
                        let symbol = blocks[i / bits][indices[i / bits]];
                        (symbol >> (bits - 1 - i % bits)) & 1 == 1
                    });
                    handle.insert(&word)?;
                    let mut j = blocks.len();
                    loop {
                        if j == 0 {
                            break 'product;
                        }
                        j -= 1;
                        indices[j] += 1;
                        if indices[j] < blocks[j].len() {
                            break;
                        }
                        indices[j] = 0;
                    }
                }
            }
        }
        self.samples += 1;
        Ok(())
    }

    /// Whether the symbol word of `features` is in the recorded set.
    pub fn contains(&self, features: &[f64]) -> bool {
        self.contains_packed(&self.abstract_bitword(features))
    }

    /// Packed membership against a pre-abstracted word.
    ///
    /// # Panics
    ///
    /// Panics if `word.len() != dim * bits`.
    #[inline]
    pub fn contains_packed(&self, word: &BitWord) -> bool {
        match &self.store {
            IntervalStore::Bdd { bdd, root } => bdd.eval(*root, word),
            IntervalStore::External(handle) => handle.contains(word),
        }
    }

    /// Whether some recorded bit word is within Hamming distance `tau` of
    /// `word` (over the `bits × neurons` encoding; packed or `bool`-slice
    /// form).
    ///
    /// # Panics
    ///
    /// Panics if `word.bit_len() != dim * bits`.
    pub fn contains_word_within<W: napmon_bdd::AsBits + ?Sized>(
        &self,
        word: &W,
        tau: usize,
    ) -> bool {
        match &self.store {
            IntervalStore::Bdd { bdd, root } => bdd.contains_within_hamming(*root, word, tau),
            IntervalStore::External(handle) => {
                let packed = BitWord::from_fn(word.bit_len(), |i| word.bit(i));
                handle.contains_within(&packed, tau)
            }
        }
    }

    /// Number of absorbed samples.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Number of distinct symbol words admitted. Live for store-backed
    /// monitors: operation-time absorptions move it.
    pub fn pattern_count(&self) -> f64 {
        match &self.store {
            IntervalStore::Bdd { bdd, root } => bdd.satcount(*root),
            IntervalStore::External(handle) => handle.word_count() as f64,
        }
    }

    /// Fraction of the `2^{B·d}` pattern space admitted (monitor
    /// "efficiency" in the sense of the paper's conclusion).
    pub fn coverage(&self) -> f64 {
        match &self.store {
            IntervalStore::Bdd { bdd, root } => bdd.coverage(*root),
            IntervalStore::External(handle) => {
                let dim_bits = (self.thresholds.len() * self.bits) as i32;
                handle.word_count() as f64 / 2f64.powi(dim_bits)
            }
        }
    }

    /// Memory proxy: BDD nodes reachable from the root, or external-store
    /// words.
    pub fn store_size(&self) -> usize {
        match &self.store {
            IntervalStore::Bdd { bdd, root } => bdd.reachable_nodes(*root),
            IntervalStore::External(handle) => handle.store_size(),
        }
    }

    /// Per-neuron thresholds.
    pub fn thresholds(&self) -> &[Vec<f64>] {
        &self.thresholds
    }

    /// The descriptor of the external source, if the monitor is
    /// store-backed.
    pub fn external_descriptor(&self) -> Option<&SourceDescriptor> {
        match &self.store {
            IntervalStore::External(handle) => Some(handle.descriptor()),
            _ => None,
        }
    }

    /// Whether the monitor is store-backed but its handle is detached
    /// (fresh from deserialization).
    pub fn needs_source(&self) -> bool {
        matches!(&self.store, IntervalStore::External(h) if !h.is_attached())
    }

    /// Reattaches (or replaces) the external source behind a store-backed
    /// monitor.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::ExternalSource`] if the monitor is
    /// BDD-backed, or [`MonitorError::DimensionMismatch`] on word-width
    /// disagreement.
    pub fn attach_source(&mut self, source: SharedPatternSource) -> Result<(), MonitorError> {
        match &mut self.store {
            IntervalStore::External(handle) => handle.attach(source),
            _ => Err(MonitorError::ExternalSource(
                "monitor is not store-backed; nothing to attach".into(),
            )),
        }
    }

    /// Flushes the external source's buffered writes, if any.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::ExternalSource`] if the store fails.
    pub fn commit_source(&self) -> Result<(), MonitorError> {
        match &self.store {
            IntervalStore::External(handle) => handle.commit(),
            _ => Ok(()),
        }
    }
}

impl Monitor for IntervalPatternMonitor {
    fn extractor(&self) -> &FeatureExtractor {
        &self.extractor
    }

    fn verdict_features(&self, features: &[f64]) -> Verdict {
        let word = self.abstract_bitword(features);
        if self.contains_packed(&word) {
            Verdict::ok()
        } else {
            Verdict::warn(vec![Violation::UnknownPattern {
                word: word.to_bools(),
            }])
        }
    }

    fn verdict_features_scratch(&self, features: &[f64], scratch: &mut QueryScratch) -> Verdict {
        self.abstract_into(features, &mut scratch.word);
        if self.contains_packed(&scratch.word) {
            Verdict::ok()
        } else {
            Verdict::warn(vec![Violation::UnknownPattern {
                word: scratch.word.to_bools(),
            }])
        }
    }

    /// The batched query path: abstract the whole batch, then answer the
    /// exact memberships together — store-backed monitors take one read
    /// lock (and one store kernel pass) for the batch instead of one per
    /// input. Verdicts are bit-identical to the per-input loop.
    fn verdict_batch_scratch(
        &self,
        net: &Network,
        inputs: &[Vec<f64>],
        scratch: &mut QueryScratch,
        out: &mut Vec<Verdict>,
    ) -> Result<(), MonitorError> {
        out.clear();
        if scratch.batch_words.len() < inputs.len() {
            scratch.batch_words.resize(inputs.len(), BitWord::default());
        }
        let mut features = std::mem::take(&mut scratch.features);
        for (input, word) in inputs.iter().zip(scratch.batch_words.iter_mut()) {
            let extracted =
                self.extractor
                    .features_into(net, input, &mut scratch.forward, &mut features);
            if let Err(e) = extracted {
                scratch.features = features;
                return Err(e);
            }
            self.abstract_into(&features, word);
        }
        scratch.features = features;

        let words = &scratch.batch_words[..inputs.len()];
        scratch.batch_hits.clear();
        scratch.batch_hits.resize(inputs.len(), false);
        match &self.store {
            IntervalStore::Bdd { bdd, root } => {
                for (word, hit) in words.iter().zip(scratch.batch_hits.iter_mut()) {
                    *hit = bdd.eval(*root, word);
                }
            }
            // Interval monitors are exact-membership only (tau = 0).
            IntervalStore::External(handle) => {
                handle.contains_within_batch(words, 0, &mut scratch.batch_hits)
            }
        }

        out.reserve(inputs.len());
        for (word, &hit) in words.iter().zip(&scratch.batch_hits) {
            out.push(if hit {
                Verdict::ok()
            } else {
                Verdict::warn(vec![Violation::UnknownPattern {
                    word: word.to_bools(),
                }])
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use napmon_nn::{Activation, LayerSpec, Network};

    fn extractor(width: usize) -> FeatureExtractor {
        let net = Network::seeded(3, 2, &[LayerSpec::dense(width, Activation::Relu)]);
        FeatureExtractor::new(&net, 2).unwrap()
    }

    fn two_bit_monitor() -> IntervalPatternMonitor {
        // One neuron with thresholds c1=0, c2=1, c3=2.
        IntervalPatternMonitor::empty(extractor(1), 2, vec![vec![0.0, 1.0, 2.0]]).unwrap()
    }

    #[test]
    fn construction_validates_inputs() {
        assert!(IntervalPatternMonitor::empty(extractor(1), 0, vec![vec![]]).is_err());
        assert!(IntervalPatternMonitor::empty(extractor(1), 2, vec![vec![0.0, 1.0]]).is_err());
        assert!(IntervalPatternMonitor::empty(extractor(1), 2, vec![vec![2.0, 1.0, 0.0]]).is_err());
        assert!(IntervalPatternMonitor::empty(extractor(2), 2, vec![vec![0.0, 1.0, 2.0]]).is_err());
        assert!(two_bit_monitor().thresholds().len() == 1);
    }

    #[test]
    fn symbols_follow_paper_table() {
        let m = two_bit_monitor();
        // Paper's 2-bit encoding: 11 iff v > c3; 00 iff v <= c1.
        assert_eq!(m.symbol(0, 3.0), 3); // > c3 -> 11
        assert_eq!(m.symbol(0, 1.5), 2); // c2 < v <= c3 -> 10
        assert_eq!(m.symbol(0, 2.0), 2); // v == c3 stays 10 (paper: c3 >= v >= c2)
        assert_eq!(m.symbol(0, 0.5), 1); // c1 < v < c2 -> 01
        assert_eq!(m.symbol(0, 0.0), 0); // v == c1 -> 00 (paper: otherwise)
        assert_eq!(m.symbol(0, -1.0), 0);
    }

    #[test]
    fn figure_1_robust_encoding_all_ten_cases() {
        let m = two_bit_monitor();
        let cases: Vec<((f64, f64), Vec<u16>)> = vec![
            ((2.5, 3.0), vec![3]),           // l > c3:              {11}
            ((1.2, 1.8), vec![2]),           // c2 <= l <= u <= c3:  {10}
            ((0.3, 0.7), vec![1]),           // c1 < l <= u < c2:    {01}
            ((-1.0, -0.5), vec![0]),         // u <= c1:             {00}
            ((-0.5, 0.5), vec![0, 1]),       // straddles c1:        {00,01}
            ((0.5, 1.5), vec![1, 2]),        // straddles c2:        {01,10}
            ((1.5, 2.5), vec![2, 3]),        // straddles c3:        {10,11}
            ((-0.5, 1.5), vec![0, 1, 2]),    // c1 and c2:           {00,01,10}
            ((0.5, 2.5), vec![1, 2, 3]),     // c2 and c3:           {01,10,11}
            ((-0.5, 2.5), vec![0, 1, 2, 3]), // everything
        ];
        for ((l, u), expected) in cases {
            let got: Vec<u16> = m.symbol_range(0, l, u).collect();
            assert_eq!(got, expected, "interval [{l}, {u}]");
        }
    }

    #[test]
    fn absorbed_points_are_members() {
        let mut m = two_bit_monitor();
        m.absorb_point(&[1.5]); // symbol 10
        assert!(m.contains(&[1.2]));
        assert!(!m.contains(&[0.5]));
        assert!(!m.contains(&[2.5]));
        assert_eq!(m.pattern_count(), 1.0);
    }

    #[test]
    fn robust_absorption_admits_the_whole_range() {
        let mut m = two_bit_monitor();
        m.absorb_bounds(&BoxBounds::new(vec![0.5], vec![1.5])); // {01, 10}
        assert!(m.contains(&[0.7]));
        assert!(m.contains(&[1.3]));
        assert!(!m.contains(&[-1.0]));
        assert!(!m.contains(&[5.0]));
        assert_eq!(m.pattern_count(), 2.0);
    }

    #[test]
    fn multi_neuron_product_set() {
        let mut m = IntervalPatternMonitor::empty(
            extractor(2),
            2,
            vec![vec![0.0, 1.0, 2.0], vec![0.0, 1.0, 2.0]],
        )
        .unwrap();
        m.absorb_bounds(&BoxBounds::new(vec![0.5, -1.0], vec![1.5, 0.5]));
        // Neuron 0: {01,10}; neuron 1: {00,01} -> 4 words.
        assert_eq!(m.pattern_count(), 4.0);
        assert!(m.contains(&[0.7, -0.2]));
        assert!(m.contains(&[1.2, 0.3]));
        assert!(!m.contains(&[1.2, 1.2]));
    }

    #[test]
    fn one_bit_monitor_degenerates_to_on_off() {
        let mut m =
            IntervalPatternMonitor::empty(extractor(2), 1, vec![vec![0.0], vec![0.0]]).unwrap();
        m.absorb_point(&[1.0, -1.0]); // word 1 0
        assert!(m.contains(&[0.5, -0.5]));
        assert!(!m.contains(&[0.5, 0.5]));
    }

    #[test]
    fn three_bit_monitor_resolves_finer() {
        let thresholds: Vec<f64> = (1..8).map(|i| i as f64).collect(); // 1..7
        let mut m = IntervalPatternMonitor::empty(extractor(1), 3, vec![thresholds]).unwrap();
        m.absorb_point(&[3.5]); // symbol = #{c < 3.5} = 3
        assert!(m.contains(&[3.2]));
        assert!(!m.contains(&[4.2]));
        assert_eq!(m.abstract_symbols(&[3.5]), vec![3]);
    }

    #[test]
    fn quantile_policy_resolves_ascending_thresholds() {
        let features: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64, 42.0]).collect();
        let lists = ThresholdPolicy::Quantiles.resolve(2, 2, &features).unwrap();
        assert_eq!(lists.len(), 2);
        assert_eq!(lists[0].len(), 3);
        assert!(lists[0].windows(2).all(|w| w[0] < w[1]));
        // Constant column: nudged apart but still ascending.
        assert!(lists[1].windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn sign_and_mean_policies_only_one_bit() {
        let features = vec![vec![1.0], vec![3.0]];
        assert!(ThresholdPolicy::Sign.resolve(1, 2, &features).is_err());
        assert!(ThresholdPolicy::Mean.resolve(1, 2, &features).is_err());
        assert_eq!(
            ThresholdPolicy::Sign.resolve(1, 1, &features).unwrap(),
            vec![vec![0.0]]
        );
        assert_eq!(
            ThresholdPolicy::Mean.resolve(1, 1, &features).unwrap(),
            vec![vec![2.0]]
        );
    }

    #[test]
    fn explicit_policy_is_validated() {
        let ok = ThresholdPolicy::Explicit(vec![vec![0.0, 1.0, 2.0]]);
        assert!(ok.resolve(1, 2, &[]).is_ok());
        let wrong_len = ThresholdPolicy::Explicit(vec![vec![0.0]]);
        assert!(wrong_len.resolve(1, 2, &[]).is_err());
        let not_ascending = ThresholdPolicy::Explicit(vec![vec![1.0, 0.5, 2.0]]);
        assert!(not_ascending.resolve(1, 2, &[]).is_err());
    }

    #[test]
    fn external_store_matches_bdd_semantics() {
        use crate::source::{shared_source, MemoryPatternSource};
        let thresholds = vec![vec![0.0, 1.0, 2.0], vec![0.0, 1.0, 2.0]];
        let mut bdd_backed =
            IntervalPatternMonitor::empty(extractor(2), 2, thresholds.clone()).unwrap();
        let mut store_backed = IntervalPatternMonitor::with_source(
            extractor(2),
            2,
            thresholds,
            shared_source(MemoryPatternSource::new(4)),
        )
        .unwrap();
        for m in [&mut bdd_backed, &mut store_backed] {
            m.absorb_point(&[1.5, 0.5]);
            m.absorb_bounds(&BoxBounds::new(vec![0.5, -1.0], vec![1.5, 0.5]));
        }
        assert_eq!(bdd_backed.pattern_count(), store_backed.pattern_count());
        assert_eq!(bdd_backed.samples(), store_backed.samples());
        assert!((bdd_backed.coverage() - store_backed.coverage()).abs() < 1e-12);
        for a in [-1.0, 0.5, 1.2, 1.5, 2.5, 3.0] {
            for b in [-1.0, 0.5, 1.2, 2.5] {
                assert_eq!(
                    bdd_backed.contains(&[a, b]),
                    store_backed.contains(&[a, b]),
                    "features [{a}, {b}]"
                );
                let word = bdd_backed.abstract_bitword(&[a, b]);
                assert_eq!(
                    bdd_backed.contains_word_within(&word, 1),
                    store_backed.contains_word_within(&word, 1),
                    "hamming around [{a}, {b}]"
                );
            }
        }
    }

    #[test]
    fn external_serde_is_descriptor_only_and_bdd_form_is_compatible() {
        use crate::source::{shared_source, MemoryPatternSource};
        // BDD-backed: field layout unchanged (bdd + root inline).
        let mut m = two_bit_monitor();
        m.absorb_point(&[1.5]);
        let json = serde_json::to_string(&m).unwrap();
        assert!(
            json.contains("\"bdd\"") && json.contains("\"root\""),
            "{json}"
        );
        let back: IntervalPatternMonitor = serde_json::from_str(&json).unwrap();
        assert!(back.contains(&[1.2]));
        assert_eq!(back.samples(), 1);
        // Store-backed: descriptor only, reattachable after decode.
        let ext = IntervalPatternMonitor::with_source(
            extractor(1),
            2,
            vec![vec![0.0, 1.0, 2.0]],
            shared_source(MemoryPatternSource::new(2)),
        )
        .unwrap();
        let json = serde_json::to_string(&ext).unwrap();
        assert!(
            json.contains("\"external\"") && !json.contains("\"bdd\""),
            "{json}"
        );
        let mut back: IntervalPatternMonitor = serde_json::from_str(&json).unwrap();
        assert!(back.needs_source());
        back.attach_source(shared_source(MemoryPatternSource::new(2)))
            .unwrap();
        assert!(!back.needs_source());
        assert!(back
            .attach_source(shared_source(MemoryPatternSource::new(5)))
            .is_err());
    }

    #[test]
    fn shared_absorption_is_external_only() {
        use crate::source::{shared_source, MemoryPatternSource};
        let m = two_bit_monitor();
        assert!(m.absorb_features_shared(&[1.5]).is_err());
        let ext = IntervalPatternMonitor::with_source(
            extractor(1),
            2,
            vec![vec![0.0, 1.0, 2.0]],
            shared_source(MemoryPatternSource::new(2)),
        )
        .unwrap();
        assert!(ext.absorb_features_shared(&[1.5]).unwrap());
        assert!(ext.contains(&[1.2]));
        assert_eq!(ext.samples(), 0);
    }

    #[test]
    fn footnote_3_minmax_generalization() {
        // c3 = max visited, c2 = min visited, c1 = -inf stand-in: interval
        // monitors generalize min-max monitors (paper footnote 3).
        let (lo, hi) = (-0.5, 2.5);
        let mut m =
            IntervalPatternMonitor::empty(extractor(1), 2, vec![vec![-1e300, lo, hi]]).unwrap();
        // Everything strictly inside (min, max] maps to symbol 10.
        m.absorb_bounds(&BoxBounds::new(vec![lo + 1e-9], vec![hi]));
        assert_eq!(m.pattern_count(), 1.0);
        assert!(m.contains(&[0.0])); // inside (min, max]
        assert!(!m.contains(&[3.0])); // above max -> 11
        assert!(!m.contains(&[-0.7])); // below min -> 01
    }
}
