//! Multi-layer monitoring: one monitor per boundary, combined by a vote.
//!
//! The paper's §III-A notes that "extensions such as configuring to
//! multi-layer monitoring … are straightforward"; this module provides
//! that configuration. Each member monitor watches its own boundary (and
//! possibly its own neuron subset); an operational input is checked
//! against all of them and the verdicts are combined by a [`Vote`].

use crate::builder::AnyMonitor;
use crate::error::MonitorError;
use crate::monitor::{Monitor, QueryScratch, Verdict};
use napmon_nn::Network;
use serde::{Deserialize, Serialize};

/// How per-layer verdicts combine into one decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Vote {
    /// Warn if *any* member warns (most sensitive; unions the evidence).
    Any,
    /// Warn only if *all* members warn (most conservative).
    All,
    /// Warn if at least `k` members warn.
    AtLeast(usize),
}

impl Vote {
    fn decide(self, warnings: usize, members: usize) -> bool {
        match self {
            Vote::Any => warnings > 0,
            Vote::All => warnings == members,
            Vote::AtLeast(k) => warnings >= k,
        }
    }
}

/// Monitors over several boundaries of the same network, combined by a
/// vote.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiLayerMonitor {
    members: Vec<AnyMonitor>,
    vote: Vote,
}

impl MultiLayerMonitor {
    /// Combines member monitors under the given vote.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty or an `AtLeast(k)` vote demands more
    /// members than exist.
    pub fn new(members: Vec<AnyMonitor>, vote: Vote) -> Self {
        assert!(
            !members.is_empty(),
            "multi-layer monitor needs at least one member"
        );
        if let Vote::AtLeast(k) = vote {
            assert!(
                k >= 1 && k <= members.len(),
                "AtLeast({k}) with {} members",
                members.len()
            );
        }
        Self { members, vote }
    }

    /// Number of member monitors.
    pub fn num_members(&self) -> usize {
        self.members.len()
    }

    /// The voting rule.
    pub fn vote(&self) -> Vote {
        self.vote
    }

    /// The member monitors in order.
    pub fn members(&self) -> &[AnyMonitor] {
        &self.members
    }

    /// Mutable access to the member monitors (source reattachment and
    /// `&mut` absorption paths).
    pub(crate) fn members_mut(&mut self) -> &mut [AnyMonitor] {
        &mut self.members
    }

    /// Runs the network once per member boundary and combines verdicts.
    ///
    /// The underlying forward pass is shared up to each monitored
    /// boundary via [`Network::boundary_values`], so an `m`-member monitor
    /// costs one full forward pass, not `m`.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::DimensionMismatch`] for malformed inputs.
    pub fn verdict(&self, net: &Network, input: &[f64]) -> Result<Verdict, MonitorError> {
        if input.len() != net.input_dim() {
            return Err(MonitorError::DimensionMismatch {
                context: "multi-layer query input".into(),
                expected: net.input_dim(),
                actual: input.len(),
            });
        }
        let boundaries = net.boundary_values(input);
        let mut warnings = 0usize;
        let mut evidence = Vec::new();
        for member in &self.members {
            let fx = member.extractor();
            let features = fx.project(&boundaries[fx.layer()]);
            let v = member.verdict_features(&features);
            if v.warning {
                warnings += 1;
                evidence.extend(v.violations);
            }
        }
        if self.vote.decide(warnings, self.members.len()) {
            Ok(Verdict::warn(evidence))
        } else {
            Ok(Verdict::ok())
        }
    }

    /// Qualitative decision of [`MultiLayerMonitor::verdict`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`MultiLayerMonitor::verdict`].
    pub fn warns(&self, net: &Network, input: &[f64]) -> Result<bool, MonitorError> {
        Ok(self.verdict(net, input)?.warning)
    }

    /// One verdict through the caller's scratch buffers: the forward pass
    /// is shared across members, and every member's feature projection and
    /// abstraction word reuse the scratch. The boundary snapshot itself
    /// (`Network::boundary_values`) still allocates per query — the
    /// multi-layer path is not yet fully allocation-free.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::DimensionMismatch`] for malformed inputs.
    pub fn verdict_scratch(
        &self,
        net: &Network,
        input: &[f64],
        scratch: &mut QueryScratch,
    ) -> Result<Verdict, MonitorError> {
        if input.len() != net.input_dim() {
            return Err(MonitorError::DimensionMismatch {
                context: "multi-layer query input".into(),
                expected: net.input_dim(),
                actual: input.len(),
            });
        }
        let boundaries = net.boundary_values(input);
        let mut warnings = 0usize;
        let mut evidence = Vec::new();
        let mut features = std::mem::take(&mut scratch.features);
        for member in &self.members {
            let fx = member.extractor();
            fx.project_into(&boundaries[fx.layer()], &mut features);
            let v = member.verdict_features_scratch(&features, scratch);
            if v.warning {
                warnings += 1;
                evidence.extend(v.violations);
            }
        }
        scratch.features = features;
        if self.vote.decide(warnings, self.members.len()) {
            Ok(Verdict::warn(evidence))
        } else {
            Ok(Verdict::ok())
        }
    }

    /// Verdicts for a whole batch, sharing one scratch (single-threaded).
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::DimensionMismatch`] on the first malformed
    /// input.
    pub fn query_batch(
        &self,
        net: &Network,
        inputs: &[Vec<f64>],
    ) -> Result<Vec<Verdict>, MonitorError> {
        let mut scratch = QueryScratch::new();
        let mut out = Vec::with_capacity(inputs.len());
        for input in inputs {
            out.push(self.verdict_scratch(net, input, &mut scratch)?);
        }
        Ok(out)
    }

    /// Parallel batch: chunks fanned out over all cores with one scratch
    /// per worker (`std::thread::scope`; results keep input order).
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::DimensionMismatch`] if any input is
    /// malformed.
    pub fn query_batch_parallel(
        &self,
        net: &Network,
        inputs: &[Vec<f64>],
    ) -> Result<Vec<Verdict>, MonitorError> {
        self.query_batch_parallel_with(net, inputs, crate::monitor::available_threads())
    }

    /// Like [`MultiLayerMonitor::query_batch_parallel`] with a pinned
    /// worker count.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::DimensionMismatch`] if any input is
    /// malformed.
    pub fn query_batch_parallel_with(
        &self,
        net: &Network,
        inputs: &[Vec<f64>],
        threads: usize,
    ) -> Result<Vec<Verdict>, MonitorError> {
        crate::monitor::fan_out_batch(inputs, threads, |chunk| self.query_batch(net, chunk))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{MonitorBuilder, MonitorKind};
    use napmon_nn::{Activation, LayerSpec, Network};
    use napmon_tensor::Prng;

    fn setup() -> (Network, Vec<Vec<f64>>) {
        let net = Network::seeded(
            71,
            3,
            &[
                LayerSpec::dense(8, Activation::Relu),
                LayerSpec::dense(4, Activation::Relu),
                LayerSpec::dense(2, Activation::Identity),
            ],
        );
        let mut rng = Prng::seed(72);
        let data = (0..48).map(|_| rng.uniform_vec(3, -0.5, 0.5)).collect();
        (net, data)
    }

    fn multi(net: &Network, data: &[Vec<f64>], vote: Vote) -> MultiLayerMonitor {
        let m2 = MonitorBuilder::new(net, 2)
            .build(MonitorKind::min_max(), data)
            .unwrap();
        let m4 = MonitorBuilder::new(net, 4)
            .build(MonitorKind::min_max(), data)
            .unwrap();
        MultiLayerMonitor::new(vec![m2, m4], vote)
    }

    #[test]
    fn training_data_never_warns_under_any_vote() {
        let (net, data) = setup();
        for vote in [Vote::Any, Vote::All, Vote::AtLeast(1), Vote::AtLeast(2)] {
            let mm = multi(&net, &data, vote);
            for x in &data {
                assert!(!mm.warns(&net, x).unwrap(), "{vote:?}");
            }
        }
    }

    #[test]
    fn far_input_warns_and_any_is_most_sensitive() {
        let (net, data) = setup();
        let any = multi(&net, &data, Vote::Any);
        let all = multi(&net, &data, Vote::All);
        let far = vec![100.0, -100.0, 100.0];
        assert!(any.warns(&net, &far).unwrap());
        // ANY warns whenever ALL warns.
        let mut rng = Prng::seed(73);
        for _ in 0..100 {
            let probe = rng.uniform_vec(3, -3.0, 3.0);
            if all.warns(&net, &probe).unwrap() {
                assert!(any.warns(&net, &probe).unwrap());
            }
        }
    }

    #[test]
    fn at_least_interpolates_between_any_and_all() {
        let (net, data) = setup();
        let any = multi(&net, &data, Vote::Any);
        let two = multi(&net, &data, Vote::AtLeast(2));
        let all = multi(&net, &data, Vote::All);
        let mut rng = Prng::seed(74);
        for _ in 0..100 {
            let probe = rng.uniform_vec(3, -3.0, 3.0);
            let (a, t, l) = (
                any.warns(&net, &probe).unwrap(),
                two.warns(&net, &probe).unwrap(),
                all.warns(&net, &probe).unwrap(),
            );
            // With two members AtLeast(2) == All, and All implies Any.
            assert_eq!(t, l);
            if l {
                assert!(a);
            }
        }
    }

    #[test]
    fn verdict_collects_member_evidence() {
        let (net, data) = setup();
        let mm = multi(&net, &data, Vote::Any);
        let v = mm.verdict(&net, &[100.0, -100.0, 100.0]).unwrap();
        assert!(v.warning);
        assert!(!v.violations.is_empty());
    }

    #[test]
    fn wrong_dimension_is_an_error() {
        let (net, data) = setup();
        let mm = multi(&net, &data, Vote::Any);
        assert!(mm.warns(&net, &[1.0]).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_members_panic() {
        MultiLayerMonitor::new(vec![], Vote::Any);
    }

    #[test]
    fn serde_round_trip() {
        let (net, data) = setup();
        let mm = multi(&net, &data, Vote::AtLeast(1));
        let json = serde_json::to_string(&mm).unwrap();
        let back: MultiLayerMonitor = serde_json::from_str(&json).unwrap();
        let mut rng = Prng::seed(75);
        for _ in 0..50 {
            let probe = rng.uniform_vec(3, -2.0, 2.0);
            assert_eq!(
                mm.warns(&net, &probe).unwrap(),
                back.warns(&net, &probe).unwrap()
            );
        }
    }
}
