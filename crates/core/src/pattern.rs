//! On-off (Boolean) activation-pattern monitors.

use crate::error::MonitorError;
use crate::feature::FeatureExtractor;
use crate::monitor::{Monitor, QueryScratch, Verdict, Violation};
use crate::sliced::SlicedPatternSet;
use crate::source::{ExternalHandle, SharedPatternSource, SourceDescriptor};
use napmon_absint::BoxBounds;
use napmon_bdd::{Bdd, BitCube, BitWord, NodeId};
use napmon_nn::Network;
use serde::{Deserialize, Serialize};

/// Storage backend for the pattern set.
///
/// The paper stores pattern sets in BDDs so that the robust construction's
/// `word2set` (don't-care expansion) stays linear; the hash-set backend
/// materializes every word and exists for the storage ablation (experiment
/// A5) and as a differential-testing oracle. The `Store` backend delegates
/// the word set to an external [`crate::PatternSource`] (e.g. the
/// persistent log-structured store in `napmon-store`), which is what lets
/// a monitor survive restarts and absorb operation-time patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PatternBackend {
    /// Binary decision diagram (default; matches the paper).
    Bdd,
    /// Explicit hash set of packed words.
    HashSet,
    /// An external pattern source attached at build/mount time
    /// ([`PatternMonitor::with_source`]); specs declaring this backend
    /// build via `MonitorSpec::build_with_sources`.
    Store,
}

/// Words are stored packed ([`BitWord`]) and hashed with the same FxHash
/// scheme as the BDD tables: membership hashes one `u64` limb per 64
/// monitored neurons instead of SipHashing one byte per neuron, and the
/// query side never materializes a `Vec<bool>`. The hash backend also
/// keeps a bit-sliced mirror of the set ([`SlicedPatternSet`]) so
/// Hamming-tolerant queries run the block-transposed kernel instead of a
/// per-word scan; the serialized shape is unchanged (a seq of words).
#[derive(Debug, Clone, Serialize, Deserialize)]
enum Store {
    Bdd {
        bdd: Bdd,
        root: NodeId,
    },
    Hash(SlicedPatternSet),
    /// Externally-held word set; serializes as a [`SourceDescriptor`]
    /// (the words stay in the store), so this variant is what makes
    /// store-backed artifacts small and warm-startable.
    External(ExternalHandle),
}

/// A Boolean on-off pattern monitor (Cheng et al., DATE 2019; §III-A/B of
/// the paper).
///
/// Each monitored neuron `j` is abstracted to one bit via a threshold
/// `c_j` (`b_j = 1` iff `v_j > c_j`); the set of words visited over the
/// training set is the abstraction. The robust construction abstracts the
/// perturbation estimate instead: a neuron whose `[l_j, u_j]` straddles
/// `c_j` becomes a don't-care and the whole cube is inserted (`word2set`).
///
/// A query warns when its word is not in the set — or, with
/// [`PatternMonitor::set_hamming_tolerance`], not within the configured
/// Hamming distance of any stored word (the query-time enlargement studied
/// in the DATE 2019 paper).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PatternMonitor {
    extractor: FeatureExtractor,
    thresholds: Vec<f64>,
    store: Store,
    hamming_tolerance: usize,
    samples: usize,
}

impl PatternMonitor {
    /// Creates an empty monitor with per-neuron thresholds `c_j`.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::DimensionMismatch`] if
    /// `thresholds.len() != extractor.dim()`.
    pub fn empty(
        extractor: FeatureExtractor,
        thresholds: Vec<f64>,
        backend: PatternBackend,
    ) -> Result<Self, MonitorError> {
        if thresholds.len() != extractor.dim() {
            return Err(MonitorError::DimensionMismatch {
                context: "pattern thresholds".into(),
                expected: extractor.dim(),
                actual: thresholds.len(),
            });
        }
        let store = match backend {
            PatternBackend::Bdd => Store::Bdd {
                bdd: Bdd::new(extractor.dim()),
                root: Bdd::FALSE,
            },
            PatternBackend::HashSet => Store::Hash(SlicedPatternSet::default()),
            PatternBackend::Store => {
                return Err(MonitorError::InvalidConfig(
                    "the Store backend needs an attached source; build with \
                     PatternMonitor::with_source (or MonitorSpec::build_with_sources)"
                        .into(),
                ))
            }
        };
        Ok(Self {
            extractor,
            thresholds,
            store,
            hamming_tolerance: 0,
            samples: 0,
        })
    }

    /// Creates a monitor whose word set lives in an external
    /// [`crate::PatternSource`] (backend [`PatternBackend::Store`]).
    ///
    /// The source may already hold words (warm start from a store on
    /// disk); they become members immediately.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::DimensionMismatch`] if
    /// `thresholds.len() != extractor.dim()` or the source's word width
    /// disagrees with the monitor dimension.
    pub fn with_source(
        extractor: FeatureExtractor,
        thresholds: Vec<f64>,
        source: SharedPatternSource,
    ) -> Result<Self, MonitorError> {
        if thresholds.len() != extractor.dim() {
            return Err(MonitorError::DimensionMismatch {
                context: "pattern thresholds".into(),
                expected: extractor.dim(),
                actual: thresholds.len(),
            });
        }
        let handle = ExternalHandle::attached(source);
        if handle.descriptor().word_bits != extractor.dim() {
            return Err(MonitorError::DimensionMismatch {
                context: "pattern source word width".into(),
                expected: extractor.dim(),
                actual: handle.descriptor().word_bits,
            });
        }
        Ok(Self {
            extractor,
            thresholds,
            store: Store::External(handle),
            hamming_tolerance: 0,
            samples: 0,
        })
    }

    /// The Boolean abstraction `ab`: `b_j = 1` iff `v_j > c_j`, unpacked.
    ///
    /// Query paths use [`PatternMonitor::abstract_bitword`] instead; this
    /// form exists for inspection and differential tests.
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the monitor dimension.
    pub fn abstract_word(&self, features: &[f64]) -> Vec<bool> {
        assert_eq!(
            features.len(),
            self.thresholds.len(),
            "abstract_word: dimension mismatch"
        );
        features
            .iter()
            .zip(&self.thresholds)
            .map(|(v, c)| v > c)
            .collect()
    }

    /// The Boolean abstraction packed into a [`BitWord`]. Stack-only for
    /// monitors up to [`napmon_bdd::INLINE_BITS`] neurons.
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the monitor dimension.
    pub fn abstract_bitword(&self, features: &[f64]) -> BitWord {
        let mut word = BitWord::zeros(self.thresholds.len());
        self.abstract_into(features, &mut word);
        word
    }

    /// Packs the Boolean abstraction into a caller-owned scratch word
    /// (resized as needed; zero allocation once grown).
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the monitor dimension.
    pub fn abstract_into(&self, features: &[f64], word: &mut BitWord) {
        assert_eq!(
            features.len(),
            self.thresholds.len(),
            "abstract_word: dimension mismatch"
        );
        word.fill_from_iter(
            self.thresholds.len(),
            features.iter().zip(&self.thresholds).map(|(v, c)| v > c),
        );
    }

    /// The robust abstraction `ab_R` as a packed cube: `Some(true)` if
    /// `l_j > c_j`, `Some(false)` if `u_j ≤ c_j`, otherwise don't-care
    /// (the paper's `-`).
    ///
    /// # Panics
    ///
    /// Panics if `bounds.dim()` differs from the monitor dimension.
    pub fn abstract_cube(&self, bounds: &BoxBounds) -> BitCube {
        assert_eq!(
            bounds.dim(),
            self.thresholds.len(),
            "abstract_cube: dimension mismatch"
        );
        let mut cube = BitCube::free(self.thresholds.len());
        for j in 0..self.thresholds.len() {
            let c = self.thresholds[j];
            if bounds.lo()[j] > c {
                cube.set(j, Some(true));
            } else if bounds.hi()[j] <= c {
                cube.set(j, Some(false));
            }
        }
        cube
    }

    /// Folds one feature vector (standard construction, `⊎`).
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the monitor dimension, or
    /// if an external source fails; construction loops use
    /// [`PatternMonitor::absorb_point_checked`] to surface source failures
    /// as typed errors instead.
    pub fn absorb_point(&mut self, features: &[f64]) {
        self.absorb_point_checked(features)
            .expect("pattern source append failed");
    }

    /// Fallible form of [`PatternMonitor::absorb_point`]: external sources
    /// can fail on the backing medium.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::ExternalSource`] if the backing store
    /// fails (in-memory backends are infallible).
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the monitor dimension.
    pub fn absorb_point_checked(&mut self, features: &[f64]) -> Result<(), MonitorError> {
        let word = self.abstract_bitword(features);
        match &mut self.store {
            Store::Bdd { bdd, root } => *root = bdd.insert_word(*root, &word),
            Store::Hash(set) => {
                set.insert(word);
            }
            Store::External(handle) => {
                handle.insert(&word)?;
            }
        }
        self.samples += 1;
        Ok(())
    }

    /// Absorbs one feature vector through `&self` — the operation-time
    /// enlargement path. Only external sources support this (their word
    /// set sits behind a shared lock, so every clone of the monitor — in
    /// particular every serving shard — observes the new pattern
    /// immediately); in-memory backends need `&mut` via
    /// [`PatternMonitor::absorb_point`].
    ///
    /// Does not bump [`PatternMonitor::samples`], which counts
    /// construction-time training samples only.
    ///
    /// Returns `true` if the pattern was new.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::ExternalSource`] for a non-external backend
    /// or a failing store.
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the monitor dimension.
    pub fn absorb_features_shared(&self, features: &[f64]) -> Result<bool, MonitorError> {
        let Store::External(handle) = &self.store else {
            return Err(MonitorError::ExternalSource(
                "operation-time absorption needs a store-backed monitor \
                 (backend PatternBackend::Store)"
                    .into(),
            ));
        };
        handle.insert(&self.abstract_bitword(features))
    }

    /// Folds one perturbation estimate (robust construction, `⊎_R` with
    /// `word2set`).
    ///
    /// With the BDD backend the insertion is linear in the word length no
    /// matter how many don't-cares appear; the hash-set backend must
    /// enumerate all `2^{#don't-cares}` words — the blow-up the paper's
    /// footnote 2 warns about, reproduced here deliberately.
    ///
    /// # Panics
    ///
    /// Panics if `bounds.dim()` differs from the monitor dimension, if a
    /// non-BDD backend would expand more than `2^24` words, or if an
    /// external source fails (see
    /// [`PatternMonitor::absorb_bounds_checked`]).
    pub fn absorb_bounds(&mut self, bounds: &BoxBounds) {
        self.absorb_bounds_checked(bounds)
            .expect("pattern source append failed");
    }

    /// Fallible form of [`PatternMonitor::absorb_bounds`].
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::ExternalSource`] if the backing store
    /// fails.
    ///
    /// # Panics
    ///
    /// Panics if `bounds.dim()` differs from the monitor dimension or a
    /// non-BDD backend would expand more than `2^24` words.
    pub fn absorb_bounds_checked(&mut self, bounds: &BoxBounds) -> Result<(), MonitorError> {
        let cube = self.abstract_cube(bounds);
        match &mut self.store {
            Store::Bdd { bdd, root } => *root = bdd.insert_cube_packed(*root, &cube),
            Store::Hash(set) => {
                expand_cube(&cube, |w| {
                    set.insert(w);
                    Ok(())
                })?;
            }
            Store::External(handle) => {
                expand_cube(&cube, |w| handle.insert(&w).map(drop))?;
            }
        }
        self.samples += 1;
        Ok(())
    }

    /// Sets the query-time Hamming tolerance `τ`: a word is accepted when
    /// some stored word differs in at most `τ` positions.
    pub fn set_hamming_tolerance(&mut self, tau: usize) {
        self.hamming_tolerance = tau;
    }

    /// Whether `word` (exactly) is in the stored set.
    pub fn contains_word(&self, word: &[bool]) -> bool {
        self.contains_packed(&BitWord::from_bools(word))
    }

    /// Packed membership: the allocation-free hot path.
    #[inline]
    pub fn contains_packed(&self, word: &BitWord) -> bool {
        match &self.store {
            Store::Bdd { bdd, root } => bdd.eval(*root, word),
            Store::Hash(set) => set.contains(word),
            Store::External(handle) => handle.contains(word),
        }
    }

    /// Whether some stored word is within Hamming distance `tau` of `word`.
    pub fn contains_within(&self, word: &[bool], tau: usize) -> bool {
        self.contains_within_packed(&BitWord::from_bools(word), tau)
    }

    /// Packed Hamming-tolerant membership. The hash backend runs the
    /// bit-sliced kernel (a batch of one); the BDD walk explores
    /// `O(nodes · tau)` states.
    pub fn contains_within_packed(&self, word: &BitWord, tau: usize) -> bool {
        match &self.store {
            Store::Bdd { bdd, root } => bdd.contains_within_hamming(*root, word, tau),
            Store::Hash(set) => set.contains_within(word, tau),
            Store::External(handle) => handle.contains_within(word, tau),
        }
    }

    /// Number of absorbed samples.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Number of distinct words admitted by the monitor. For store-backed
    /// monitors this is a *live* figure: operation-time absorptions move
    /// it.
    pub fn pattern_count(&self) -> f64 {
        match &self.store {
            Store::Bdd { bdd, root } => bdd.satcount(*root),
            Store::Hash(set) => set.len() as f64,
            Store::External(handle) => handle.word_count() as f64,
        }
    }

    /// Fraction of the `2^d` pattern space the monitor admits — the
    /// "efficiency" measure from the paper's conclusion (a monitor covering
    /// almost everything raises almost no warnings).
    pub fn coverage(&self) -> f64 {
        self.pattern_count() / 2f64.powi(self.thresholds.len() as i32)
    }

    /// Memory proxy: BDD nodes, hash-set words, or external-store words
    /// currently stored.
    pub fn store_size(&self) -> usize {
        match &self.store {
            Store::Bdd { bdd, root } => bdd.reachable_nodes(*root),
            Store::Hash(set) => set.len(),
            Store::External(handle) => handle.store_size(),
        }
    }

    /// Per-neuron thresholds `c_j`.
    pub fn thresholds(&self) -> &[f64] {
        &self.thresholds
    }

    /// The storage backend the pattern set lives in.
    pub fn backend(&self) -> PatternBackend {
        match &self.store {
            Store::Bdd { .. } => PatternBackend::Bdd,
            Store::Hash(_) => PatternBackend::HashSet,
            Store::External(_) => PatternBackend::Store,
        }
    }

    /// The configured query-time Hamming tolerance `τ`.
    pub fn hamming_tolerance(&self) -> usize {
        self.hamming_tolerance
    }

    /// The descriptor of the external source, if the monitor is
    /// store-backed.
    pub fn external_descriptor(&self) -> Option<&SourceDescriptor> {
        match &self.store {
            Store::External(handle) => Some(handle.descriptor()),
            _ => None,
        }
    }

    /// Whether the monitor is store-backed but its handle is detached
    /// (fresh from deserialization, awaiting
    /// [`PatternMonitor::attach_source`]).
    pub fn needs_source(&self) -> bool {
        matches!(&self.store, Store::External(h) if !h.is_attached())
    }

    /// Reattaches (or replaces) the external source behind a store-backed
    /// monitor — the deserialization counterpart of
    /// [`PatternMonitor::with_source`].
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::ExternalSource`] if the monitor is not
    /// store-backed, or [`MonitorError::DimensionMismatch`] if the
    /// source's word width disagrees with the recorded descriptor.
    pub fn attach_source(&mut self, source: SharedPatternSource) -> Result<(), MonitorError> {
        match &mut self.store {
            Store::External(handle) => handle.attach(source),
            _ => Err(MonitorError::ExternalSource(
                "monitor is not store-backed; nothing to attach".into(),
            )),
        }
    }

    /// Flushes the external source's buffered writes, if any (no-op for
    /// in-memory backends).
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::ExternalSource`] if the store fails.
    pub fn commit_source(&self) -> Result<(), MonitorError> {
        match &self.store {
            Store::External(handle) => handle.commit(),
            _ => Ok(()),
        }
    }
}

/// Enumerates every concrete word of `cube` (don't-cares expanded) into
/// `sink` — the `word2set` materialization non-BDD backends pay, capped at
/// `2^24` words (the paper's footnote-2 blow-up, reproduced deliberately).
fn expand_cube(
    cube: &BitCube,
    mut sink: impl FnMut(BitWord) -> Result<(), MonitorError>,
) -> Result<(), MonitorError> {
    let free: Vec<usize> = (0..cube.len()).filter(|&i| cube.get(i).is_none()).collect();
    assert!(
        free.len() <= 24,
        "hash-set word2set would expand 2^{} words; use the BDD backend",
        free.len()
    );
    let base = BitWord::from_fn(cube.len(), |i| cube.get(i).unwrap_or(false));
    for mask in 0u64..(1u64 << free.len()) {
        let mut w = base.clone();
        for (bit, &pos) in free.iter().enumerate() {
            w.set(pos, (mask >> bit) & 1 == 1);
        }
        sink(w)?;
    }
    Ok(())
}

impl PatternMonitor {
    fn verdict_packed(&self, word: &BitWord) -> Verdict {
        let ok = if self.hamming_tolerance == 0 {
            self.contains_packed(word)
        } else {
            self.contains_within_packed(word, self.hamming_tolerance)
        };
        if ok {
            Verdict::ok()
        } else {
            // Warnings are the cold path; unpacking for the evidence is fine.
            Verdict::warn(vec![Violation::UnknownPattern {
                word: word.to_bools(),
            }])
        }
    }
}

impl Monitor for PatternMonitor {
    fn extractor(&self) -> &FeatureExtractor {
        &self.extractor
    }

    fn verdict_features(&self, features: &[f64]) -> Verdict {
        self.verdict_packed(&self.abstract_bitword(features))
    }

    fn verdict_features_scratch(&self, features: &[f64], scratch: &mut QueryScratch) -> Verdict {
        self.abstract_into(features, &mut scratch.word);
        self.verdict_packed(&scratch.word)
    }

    /// The batched query path: abstract every input first, then answer all
    /// memberships together — the hash backend runs the bit-sliced batch
    /// kernel and store-backed monitors take one read lock for the whole
    /// batch. Verdicts are bit-identical to the per-input loop.
    fn verdict_batch_scratch(
        &self,
        net: &Network,
        inputs: &[Vec<f64>],
        scratch: &mut QueryScratch,
        out: &mut Vec<Verdict>,
    ) -> Result<(), MonitorError> {
        out.clear();
        if scratch.batch_words.len() < inputs.len() {
            scratch.batch_words.resize(inputs.len(), BitWord::default());
        }
        let mut features = std::mem::take(&mut scratch.features);
        for (input, word) in inputs.iter().zip(scratch.batch_words.iter_mut()) {
            let extracted =
                self.extractor
                    .features_into(net, input, &mut scratch.forward, &mut features);
            if let Err(e) = extracted {
                scratch.features = features;
                return Err(e);
            }
            self.abstract_into(&features, word);
        }
        scratch.features = features;

        let words = &scratch.batch_words[..inputs.len()];
        scratch.batch_hits.clear();
        scratch.batch_hits.resize(inputs.len(), false);
        let tau = self.hamming_tolerance;
        match &self.store {
            // The BDD holds no sliced layout; its walk is already
            // sublinear in the set, so the batch is a plain loop.
            Store::Bdd { bdd, root } => {
                for (word, hit) in words.iter().zip(scratch.batch_hits.iter_mut()) {
                    *hit = if tau == 0 {
                        bdd.eval(*root, word)
                    } else {
                        bdd.contains_within_hamming(*root, word, tau)
                    };
                }
            }
            Store::Hash(set) => set.contains_within_batch(words, tau, &mut scratch.batch_hits),
            Store::External(handle) => {
                handle.contains_within_batch(words, tau, &mut scratch.batch_hits)
            }
        }

        out.reserve(inputs.len());
        for (word, &hit) in words.iter().zip(&scratch.batch_hits) {
            out.push(if hit {
                Verdict::ok()
            } else {
                Verdict::warn(vec![Violation::UnknownPattern {
                    word: word.to_bools(),
                }])
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use napmon_nn::{Activation, LayerSpec, Network};

    fn setup(backend: PatternBackend) -> (Network, PatternMonitor) {
        let net = Network::seeded(3, 2, &[LayerSpec::dense(4, Activation::Relu)]);
        let fx = FeatureExtractor::new(&net, 2).unwrap();
        let m = PatternMonitor::empty(fx, vec![0.0; 4], backend).unwrap();
        (net, m)
    }

    #[test]
    fn threshold_arity_is_checked() {
        let net = Network::seeded(3, 2, &[LayerSpec::dense(4, Activation::Relu)]);
        let fx = FeatureExtractor::new(&net, 2).unwrap();
        assert!(PatternMonitor::empty(fx, vec![0.0; 3], PatternBackend::Bdd).is_err());
    }

    #[test]
    fn abstraction_uses_strict_threshold() {
        let (_, m) = setup(PatternBackend::Bdd);
        assert_eq!(
            m.abstract_word(&[0.0, 0.1, -0.1, 5.0]),
            vec![false, true, false, true]
        );
    }

    #[test]
    fn robust_abstraction_emits_dont_cares() {
        let (_, m) = setup(PatternBackend::Bdd);
        let b = BoxBounds::new(vec![0.1, -0.5, -0.2, 0.0], vec![0.2, -0.1, 0.3, 0.0]);
        assert_eq!(
            m.abstract_cube(&b).to_options(),
            vec![Some(true), Some(false), None, Some(false)]
        );
    }

    #[test]
    fn absorbed_words_are_members_in_both_backends() {
        for backend in [PatternBackend::Bdd, PatternBackend::HashSet] {
            let (_, mut m) = setup(backend);
            m.absorb_point(&[1.0, -1.0, 1.0, -1.0]);
            assert!(m.contains_word(&[true, false, true, false]));
            assert!(!m.contains_word(&[true, true, true, false]));
            assert_eq!(m.pattern_count(), 1.0);
            assert_eq!(m.samples(), 1);
        }
    }

    #[test]
    fn robust_insertion_expands_dont_cares() {
        for backend in [PatternBackend::Bdd, PatternBackend::HashSet] {
            let (_, mut m) = setup(backend);
            let b = BoxBounds::new(vec![0.5, -1.0, -0.1, -1.0], vec![1.0, -0.5, 0.1, -0.5]);
            m.absorb_bounds(&b); // word 1 0 - 0 -> two words
            assert_eq!(m.pattern_count(), 2.0);
            assert!(m.contains_word(&[true, false, false, false]));
            assert!(m.contains_word(&[true, false, true, false]));
        }
    }

    #[test]
    fn backends_agree_on_membership() {
        let (_, mut a) = setup(PatternBackend::Bdd);
        let (_, mut b) = setup(PatternBackend::HashSet);
        let boxes = [
            BoxBounds::new(vec![0.5, -1.0, -0.1, -1.0], vec![1.0, -0.5, 0.1, -0.5]),
            BoxBounds::new(vec![-0.5, 0.2, -0.1, -0.2], vec![0.5, 0.4, 0.1, 0.2]),
        ];
        for bx in &boxes {
            a.absorb_bounds(bx);
            b.absorb_bounds(bx);
        }
        assert_eq!(a.pattern_count(), b.pattern_count());
        for bits in 0..16u32 {
            let w: Vec<bool> = (0..4).map(|i| (bits >> i) & 1 == 1).collect();
            assert_eq!(a.contains_word(&w), b.contains_word(&w), "word {w:?}");
        }
    }

    #[test]
    fn hamming_tolerance_accepts_near_misses() {
        for backend in [PatternBackend::Bdd, PatternBackend::HashSet] {
            let (_, mut m) = setup(backend);
            m.absorb_point(&[1.0, 1.0, 1.0, 1.0]);
            let near = [true, true, true, false]; // distance 1
            let far = [false, false, true, false]; // distance 3
            assert!(!m.contains_word(&near));
            assert!(m.contains_within(&near, 1));
            assert!(!m.contains_within(&far, 2));
            m.set_hamming_tolerance(1);
            assert!(!m.verdict_features(&[0.5, 0.5, 0.5, -0.5]).warning);
        }
    }

    #[test]
    fn verdict_carries_the_unknown_word() {
        let (_, mut m) = setup(PatternBackend::Bdd);
        m.absorb_point(&[1.0, 1.0, 1.0, 1.0]);
        let v = m.verdict_features(&[-1.0, 1.0, 1.0, 1.0]);
        assert!(v.warning);
        assert!(matches!(&v.violations[0], Violation::UnknownPattern { word } if !word[0]));
    }

    #[test]
    fn coverage_reflects_pattern_fraction() {
        let (_, mut m) = setup(PatternBackend::Bdd);
        m.absorb_point(&[1.0, 1.0, 1.0, 1.0]);
        assert!((m.coverage() - 1.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn end_to_end_monitoring_through_network() {
        let (net, mut m) = setup(PatternBackend::Bdd);
        let train = vec![vec![0.2, 0.1], vec![-0.1, 0.3], vec![0.4, -0.2]];
        for x in &train {
            let f = m.extractor().features(&net, x).unwrap();
            m.absorb_point(&f);
        }
        for x in &train {
            assert!(!m.warns(&net, x).unwrap());
        }
    }

    #[test]
    fn store_backend_requires_a_source() {
        let (_, _) = setup(PatternBackend::Bdd);
        let net = Network::seeded(3, 2, &[LayerSpec::dense(4, Activation::Relu)]);
        let fx = FeatureExtractor::new(&net, 2).unwrap();
        let err = PatternMonitor::empty(fx, vec![0.0; 4], PatternBackend::Store).unwrap_err();
        assert!(matches!(err, MonitorError::InvalidConfig(_)), "{err}");
    }

    fn external_setup() -> (Network, PatternMonitor) {
        use crate::source::{shared_source, MemoryPatternSource};
        let net = Network::seeded(3, 2, &[LayerSpec::dense(4, Activation::Relu)]);
        let fx = FeatureExtractor::new(&net, 2).unwrap();
        let source = shared_source(MemoryPatternSource::new(4));
        let m = PatternMonitor::with_source(fx, vec![0.0; 4], source).unwrap();
        (net, m)
    }

    #[test]
    fn external_backend_matches_hash_semantics() {
        let (_, mut ext) = external_setup();
        let (_, mut hash) = setup(PatternBackend::HashSet);
        assert_eq!(ext.backend(), PatternBackend::Store);
        for m in [&mut ext, &mut hash] {
            m.absorb_point(&[1.0, -1.0, 1.0, -1.0]);
            m.absorb_bounds(&BoxBounds::new(
                vec![0.5, -1.0, -0.1, -1.0],
                vec![1.0, -0.5, 0.1, -0.5],
            ));
        }
        assert_eq!(ext.pattern_count(), hash.pattern_count());
        assert_eq!(ext.samples(), hash.samples());
        for bits in 0..16u32 {
            let w: Vec<bool> = (0..4).map(|i| (bits >> i) & 1 == 1).collect();
            assert_eq!(ext.contains_word(&w), hash.contains_word(&w), "word {w:?}");
            assert_eq!(ext.contains_within(&w, 1), hash.contains_within(&w, 1));
        }
    }

    #[test]
    fn shared_absorption_needs_external_backend() {
        let (_, m) = setup(PatternBackend::Bdd);
        assert!(m.absorb_features_shared(&[1.0, 1.0, 1.0, 1.0]).is_err());
        let (_, ext) = external_setup();
        assert!(ext.absorb_features_shared(&[1.0, 1.0, 1.0, 1.0]).unwrap());
        assert!(!ext.absorb_features_shared(&[1.0, 1.0, 1.0, 1.0]).unwrap());
        assert!(ext.contains_word(&[true, true, true, true]));
        assert_eq!(
            ext.samples(),
            0,
            "shared absorption is not a training sample"
        );
    }

    #[test]
    fn external_monitor_serializes_as_descriptor_and_reattaches() {
        use crate::source::{shared_source, MemoryPatternSource};
        let (_, ext) = external_setup();
        ext.absorb_features_shared(&[1.0, 1.0, -1.0, -1.0]).unwrap();
        let json = serde_json::to_string(&ext).unwrap();
        // The word set stays in the source: only the descriptor travels.
        assert!(json.contains("\"memory\""), "{json}");
        let mut back: PatternMonitor = serde_json::from_str(&json).unwrap();
        assert!(back.needs_source());
        assert!(back
            .attach_source(shared_source(MemoryPatternSource::new(4)))
            .is_ok());
        assert!(!back.needs_source());
        // The memory source is non-persistent, so the fresh one is empty —
        // persistence is napmon-store's job.
        assert_eq!(back.pattern_count(), 0.0);
        assert!(back
            .attach_source(shared_source(MemoryPatternSource::new(3)))
            .is_err());
    }

    #[test]
    #[should_panic(expected = "use the BDD backend")]
    fn hashset_expansion_has_a_safety_cap() {
        let net = Network::seeded(5, 2, &[LayerSpec::dense(30, Activation::Relu)]);
        let fx = FeatureExtractor::new(&net, 2).unwrap();
        let mut m = PatternMonitor::empty(fx, vec![0.0; 30], PatternBackend::HashSet).unwrap();
        // All 30 dims straddle the threshold: 2^30 words.
        let b = BoxBounds::new(vec![-1.0; 30], vec![1.0; 30]);
        m.absorb_bounds(&b);
    }
}
