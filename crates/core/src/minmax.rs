//! Min-max ("outside the box") monitors.

use crate::error::MonitorError;
use crate::feature::FeatureExtractor;
use crate::monitor::{Monitor, Verdict, Violation};
use napmon_absint::BoxBounds;
use serde::{Deserialize, Serialize};

/// A per-neuron `[L_j, U_j]` monitor (Henzinger et al., ECAI 2020; also
/// §III-A of the paper).
///
/// Standard construction folds each training feature vector with
/// `L_j ← min(L_j, v_j)`, `U_j ← max(U_j, v_j)`. The robust construction
/// (§III-B) folds the *perturbation estimate* `[l_j, u_j]` instead, so the
/// recorded box already covers every `Δ`-perturbation of every training
/// input. A query warns iff some feature leaves its recorded range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MinMaxMonitor {
    extractor: FeatureExtractor,
    lo: Vec<f64>,
    hi: Vec<f64>,
    samples: usize,
}

impl MinMaxMonitor {
    /// Creates an empty monitor (`M_0 = ⟨(∞,−∞),…⟩`): every query warns
    /// until something is folded in.
    pub fn empty(extractor: FeatureExtractor) -> Self {
        let d = extractor.dim();
        Self {
            extractor,
            lo: vec![f64::INFINITY; d],
            hi: vec![f64::NEG_INFINITY; d],
            samples: 0,
        }
    }

    /// Folds one feature vector (standard construction, `⊎`).
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the monitor dimension.
    pub fn absorb_point(&mut self, features: &[f64]) {
        assert_eq!(
            features.len(),
            self.lo.len(),
            "absorb_point: dimension mismatch"
        );
        for (j, &v) in features.iter().enumerate() {
            self.lo[j] = self.lo[j].min(v);
            self.hi[j] = self.hi[j].max(v);
        }
        self.samples += 1;
    }

    /// Folds one perturbation estimate (robust construction, `⊎_R`).
    ///
    /// # Panics
    ///
    /// Panics if `bounds.dim()` differs from the monitor dimension.
    pub fn absorb_bounds(&mut self, bounds: &BoxBounds) {
        assert_eq!(
            bounds.dim(),
            self.lo.len(),
            "absorb_bounds: dimension mismatch"
        );
        for j in 0..self.lo.len() {
            self.lo[j] = self.lo[j].min(bounds.lo()[j]);
            self.hi[j] = self.hi[j].max(bounds.hi()[j]);
        }
        self.samples += 1;
    }

    /// Enlarges every recorded interval by `gamma` times its width on each
    /// side — the validation-set "bloating" knob of Henzinger et al.,
    /// included as a baseline against the paper's provable alternative.
    ///
    /// # Panics
    ///
    /// Panics if `gamma < 0`.
    pub fn enlarge(&mut self, gamma: f64) {
        assert!(gamma >= 0.0, "enlarge: negative gamma {gamma}");
        for j in 0..self.lo.len() {
            if self.lo[j] > self.hi[j] {
                continue; // untouched dimension of an empty monitor
            }
            let w = self.hi[j] - self.lo[j];
            self.lo[j] -= gamma * w;
            self.hi[j] += gamma * w;
        }
    }

    /// Recorded per-neuron lower bounds.
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Recorded per-neuron upper bounds.
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// Number of absorbed samples.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Mean recorded interval width (a capacity metric: wider boxes warn
    /// less but also detect less).
    pub fn mean_width(&self) -> f64 {
        if self.samples == 0 || self.lo.is_empty() {
            return 0.0;
        }
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(l, h)| h - l)
            .sum::<f64>()
            / self.lo.len() as f64
    }
}

impl Monitor for MinMaxMonitor {
    fn extractor(&self) -> &FeatureExtractor {
        &self.extractor
    }

    fn verdict_features(&self, features: &[f64]) -> Verdict {
        assert_eq!(features.len(), self.lo.len(), "verdict: dimension mismatch");
        let mut violations = Vec::new();
        for (j, &v) in features.iter().enumerate() {
            if v < self.lo[j] {
                violations.push(Violation::BelowMin {
                    neuron: j,
                    value: v,
                    bound: self.lo[j],
                });
            } else if v > self.hi[j] {
                violations.push(Violation::AboveMax {
                    neuron: j,
                    value: v,
                    bound: self.hi[j],
                });
            }
        }
        if violations.is_empty() {
            Verdict::ok()
        } else {
            Verdict::warn(violations)
        }
    }
}

/// Convenience: builds a standard min-max monitor from feature vectors.
///
/// # Errors
///
/// Returns [`MonitorError::EmptyTrainingSet`] if `features` is empty.
///
/// # Panics
///
/// Panics if any feature vector has the wrong dimension.
pub fn from_features(
    extractor: FeatureExtractor,
    features: &[Vec<f64>],
) -> Result<MinMaxMonitor, MonitorError> {
    if features.is_empty() {
        return Err(MonitorError::EmptyTrainingSet);
    }
    let mut m = MinMaxMonitor::empty(extractor);
    for f in features {
        m.absorb_point(f);
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use napmon_nn::{Activation, LayerSpec, Network};

    fn extractor() -> (Network, FeatureExtractor) {
        let net = Network::seeded(3, 2, &[LayerSpec::dense(3, Activation::Relu)]);
        let fx = FeatureExtractor::new(&net, 2).unwrap();
        (net, fx)
    }

    #[test]
    fn empty_monitor_warns_on_everything() {
        let (_, fx) = extractor();
        let m = MinMaxMonitor::empty(fx);
        assert!(m.warns_features(&[0.0, 0.0, 0.0]));
        assert_eq!(m.samples(), 0);
    }

    #[test]
    fn absorbed_points_do_not_warn() {
        let (_, fx) = extractor();
        let mut m = MinMaxMonitor::empty(fx);
        m.absorb_point(&[1.0, 2.0, 3.0]);
        m.absorb_point(&[0.0, 5.0, 3.0]);
        assert!(!m.warns_features(&[1.0, 2.0, 3.0]));
        assert!(!m.warns_features(&[0.5, 3.0, 3.0])); // inside the box hull
        assert!(m.warns_features(&[2.0, 3.0, 3.0])); // neuron 0 above max
    }

    #[test]
    fn verdict_reports_direction_and_neuron() {
        let (_, fx) = extractor();
        let mut m = MinMaxMonitor::empty(fx);
        m.absorb_point(&[0.0, 0.0, 0.0]);
        m.absorb_point(&[1.0, 1.0, 1.0]);
        let v = m.verdict_features(&[-0.5, 0.5, 2.0]);
        assert!(v.warning);
        assert_eq!(v.violations.len(), 2);
        assert!(matches!(
            v.violations[0],
            Violation::BelowMin { neuron: 0, .. }
        ));
        assert!(matches!(
            v.violations[1],
            Violation::AboveMax { neuron: 2, .. }
        ));
    }

    #[test]
    fn absorb_bounds_widens_like_robust_rule() {
        let (_, fx) = extractor();
        let mut m = MinMaxMonitor::empty(fx);
        m.absorb_bounds(&BoxBounds::new(vec![-0.1, 0.0, 0.5], vec![0.1, 0.2, 0.9]));
        assert!(!m.warns_features(&[0.09, 0.1, 0.6]));
        assert!(m.warns_features(&[0.2, 0.1, 0.6]));
        assert_eq!(m.lo(), &[-0.1, 0.0, 0.5]);
        assert_eq!(m.hi(), &[0.1, 0.2, 0.9]);
    }

    #[test]
    fn enlarge_bloats_symmetrically() {
        let (_, fx) = extractor();
        let mut m = MinMaxMonitor::empty(fx);
        m.absorb_point(&[0.0, 0.0, 0.0]);
        m.absorb_point(&[1.0, 2.0, 4.0]);
        m.enlarge(0.5);
        assert_eq!(m.lo(), &[-0.5, -1.0, -2.0]);
        assert_eq!(m.hi(), &[1.5, 3.0, 6.0]);
    }

    #[test]
    fn from_features_builds_hull() {
        let (_, fx) = extractor();
        let m = from_features(fx, &[vec![1.0, 0.0, 0.0], vec![0.0, 1.0, 0.0]]).unwrap();
        assert_eq!(m.samples(), 2);
        assert!(!m.warns_features(&[0.5, 0.5, 0.0]));
    }

    #[test]
    fn from_features_rejects_empty() {
        let (_, fx) = extractor();
        assert!(matches!(
            from_features(fx, &[]),
            Err(MonitorError::EmptyTrainingSet)
        ));
    }

    #[test]
    fn end_to_end_warns_through_network() {
        let (net, fx) = extractor();
        let mut m = MinMaxMonitor::empty(fx);
        let train = vec![vec![0.1, 0.1], vec![0.2, -0.1]];
        for x in &train {
            let f = m.extractor().features(&net, x).unwrap();
            m.absorb_point(&f);
        }
        for x in &train {
            assert!(!m.warns(&net, x).unwrap());
        }
        // A far-away input should trip at least one bound.
        assert!(m.warns(&net, &[50.0, -50.0]).unwrap());
    }

    #[test]
    fn mean_width_tracks_box_size() {
        let (_, fx) = extractor();
        let mut m = MinMaxMonitor::empty(fx);
        m.absorb_point(&[0.0, 0.0, 0.0]);
        assert_eq!(m.mean_width(), 0.0);
        m.absorb_point(&[3.0, 0.0, 0.0]);
        assert!((m.mean_width() - 1.0).abs() < 1e-12);
    }
}
