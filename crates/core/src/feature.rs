//! Feature extraction: which boundary and which neurons a monitor watches.

use crate::error::MonitorError;
use napmon_absint::BoxBounds;
use napmon_nn::{ForwardScratch, Network};
use serde::{Deserialize, Serialize};

/// Selects the monitored feature vector: the values of boundary `layer`
/// (the paper's `G^k`), optionally restricted to a neuron subset.
///
/// Monitoring a subset is the paper's "selecting a subset of neurons to be
/// monitored" extension; `None` monitors the whole layer.
///
/// ```
/// use napmon_core::FeatureExtractor;
/// use napmon_nn::{Activation, LayerSpec, Network};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = Network::seeded(1, 3, &[LayerSpec::dense(6, Activation::Relu)]);
/// let fx = FeatureExtractor::new(&net, 2)?; // boundary after the ReLU
/// assert_eq!(fx.dim(), 6);
/// let f = fx.features(&net, &[0.1, 0.2, 0.3])?;
/// assert_eq!(f.len(), 6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureExtractor {
    layer: usize,
    layer_dim: usize,
    neurons: Option<Vec<usize>>,
}

impl FeatureExtractor {
    /// Monitors all neurons of boundary `layer` of `net`.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::InvalidConfig`] if `layer` is not a valid
    /// boundary (`1..=net.num_layers()`; boundary 0 would monitor the raw
    /// input, which the paper rules out for image-sized inputs).
    pub fn new(net: &Network, layer: usize) -> Result<Self, MonitorError> {
        if layer == 0 || layer > net.num_layers() {
            return Err(MonitorError::InvalidConfig(format!(
                "monitored boundary {layer} out of range 1..={}",
                net.num_layers()
            )));
        }
        Ok(Self {
            layer,
            layer_dim: net.dim_at(layer),
            neurons: None,
        })
    }

    /// Restricts monitoring to the given neuron indices (deduplicated,
    /// kept in the given order).
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::InvalidConfig`] if the subset is empty or an
    /// index is out of range.
    pub fn with_neurons(mut self, neurons: Vec<usize>) -> Result<Self, MonitorError> {
        if neurons.is_empty() {
            return Err(MonitorError::InvalidConfig("neuron subset is empty".into()));
        }
        let mut seen = std::collections::HashSet::new();
        let mut unique = Vec::with_capacity(neurons.len());
        for n in neurons {
            if n >= self.layer_dim {
                return Err(MonitorError::InvalidConfig(format!(
                    "neuron {n} out of range for layer width {}",
                    self.layer_dim
                )));
            }
            if seen.insert(n) {
                unique.push(n);
            }
        }
        self.neurons = Some(unique);
        Ok(self)
    }

    /// The monitored boundary index `k`.
    pub fn layer(&self) -> usize {
        self.layer
    }

    /// Number of monitored neurons.
    pub fn dim(&self) -> usize {
        self.neurons.as_ref().map_or(self.layer_dim, Vec::len)
    }

    /// Width of the monitored boundary before subsetting.
    pub fn layer_dim(&self) -> usize {
        self.layer_dim
    }

    /// The monitored neuron indices, if a subset is configured.
    pub fn neurons(&self) -> Option<&[usize]> {
        self.neurons.as_deref()
    }

    /// Projects a full layer vector onto the monitored neurons.
    ///
    /// # Panics
    ///
    /// Panics if `full.len() != self.layer_dim()`.
    pub fn project(&self, full: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        self.project_into(full, &mut out);
        out
    }

    /// Projects a full layer vector into a reused output buffer.
    ///
    /// # Panics
    ///
    /// Panics if `full.len() != self.layer_dim()`.
    pub fn project_into(&self, full: &[f64], out: &mut Vec<f64>) {
        assert_eq!(full.len(), self.layer_dim, "project: layer width mismatch");
        out.clear();
        match &self.neurons {
            None => out.extend_from_slice(full),
            Some(idx) => out.extend(idx.iter().map(|&i| full[i])),
        }
    }

    /// Projects full-layer bounds onto the monitored neurons.
    ///
    /// # Panics
    ///
    /// Panics if `bounds.dim() != self.layer_dim()`.
    pub fn project_bounds(&self, bounds: &BoxBounds) -> BoxBounds {
        assert_eq!(
            bounds.dim(),
            self.layer_dim,
            "project_bounds: layer width mismatch"
        );
        match &self.neurons {
            None => bounds.clone(),
            Some(idx) => BoxBounds::new(
                idx.iter().map(|&i| bounds.lo()[i]).collect(),
                idx.iter().map(|&i| bounds.hi()[i]).collect(),
            ),
        }
    }

    /// Computes the monitored feature vector `G^k(input)` (projected).
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::DimensionMismatch`] if `input` does not match
    /// the network input dimension.
    pub fn features(&self, net: &Network, input: &[f64]) -> Result<Vec<f64>, MonitorError> {
        if input.len() != net.input_dim() {
            return Err(MonitorError::DimensionMismatch {
                context: "feature extraction input".into(),
                expected: net.input_dim(),
                actual: input.len(),
            });
        }
        Ok(self.project(&net.forward_prefix(input, self.layer)))
    }

    /// Computes `G^k(input)` (projected) into a reused output buffer via
    /// reused forward-pass buffers — the allocation-free query path.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::DimensionMismatch`] if `input` does not match
    /// the network input dimension.
    pub fn features_into(
        &self,
        net: &Network,
        input: &[f64],
        forward: &mut ForwardScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), MonitorError> {
        if input.len() != net.input_dim() {
            return Err(MonitorError::DimensionMismatch {
                context: "feature extraction input".into(),
                expected: net.input_dim(),
                actual: input.len(),
            });
        }
        let full = net.forward_prefix_into(input, self.layer, forward);
        self.project_into(full, out);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use napmon_nn::{Activation, LayerSpec};

    fn net() -> Network {
        Network::seeded(
            3,
            4,
            &[
                LayerSpec::dense(6, Activation::Relu),
                LayerSpec::dense(2, Activation::Identity),
            ],
        )
    }

    #[test]
    fn new_validates_boundary() {
        let net = net();
        assert!(FeatureExtractor::new(&net, 0).is_err());
        assert!(FeatureExtractor::new(&net, 4).is_err());
        assert!(FeatureExtractor::new(&net, 3).is_ok());
    }

    #[test]
    fn full_layer_features_match_prefix() {
        let net = net();
        let fx = FeatureExtractor::new(&net, 2).unwrap();
        let x = [0.1, 0.2, 0.3, 0.4];
        assert_eq!(fx.features(&net, &x).unwrap(), net.forward_prefix(&x, 2));
    }

    #[test]
    fn subset_projects_in_order_and_dedups() {
        let net = net();
        let fx = FeatureExtractor::new(&net, 2)
            .unwrap()
            .with_neurons(vec![5, 0, 5, 2])
            .unwrap();
        assert_eq!(fx.dim(), 3);
        let full: Vec<f64> = (0..6).map(|i| i as f64).collect();
        assert_eq!(fx.project(&full), vec![5.0, 0.0, 2.0]);
    }

    #[test]
    fn subset_validation() {
        let net = net();
        let fx = FeatureExtractor::new(&net, 2).unwrap();
        assert!(fx.clone().with_neurons(vec![]).is_err());
        assert!(fx.clone().with_neurons(vec![6]).is_err());
        assert!(fx.with_neurons(vec![0, 5]).is_ok());
    }

    #[test]
    fn project_bounds_selects_dimensions() {
        let net = net();
        let fx = FeatureExtractor::new(&net, 2)
            .unwrap()
            .with_neurons(vec![1, 3])
            .unwrap();
        let b = BoxBounds::new(
            (0..6).map(|i| i as f64).collect(),
            (0..6).map(|i| i as f64 + 0.5).collect(),
        );
        let p = fx.project_bounds(&b);
        assert_eq!(p.lo(), &[1.0, 3.0]);
        assert_eq!(p.hi(), &[1.5, 3.5]);
    }

    #[test]
    fn wrong_input_dim_is_reported() {
        let net = net();
        let fx = FeatureExtractor::new(&net, 1).unwrap();
        let err = fx.features(&net, &[1.0]).unwrap_err();
        assert!(matches!(err, MonitorError::DimensionMismatch { .. }));
    }
}
