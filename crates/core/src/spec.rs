//! Declarative monitor specifications: the spec-first build pipeline.
//!
//! A [`MonitorSpec`] is a fully serializable, versioned description of an
//! entire monitor build — which boundary (or boundaries) of the network to
//! watch, which monitor family ([`MonitorKind`]), whether to use the robust
//! construction of §III-B ([`RobustConfig`]), how members compose
//! ([`Composition`]), and whether construction may use all cores. Where the
//! imperative [`MonitorBuilder`](crate::builder::MonitorBuilder) chain
//! lives only as long as the process that ran it, a spec is *data*: it can
//! be written to disk, reviewed, diffed, shipped to another machine, and
//! rebuilt — or embedded in a `napmon-artifact` file next to the monitor it
//! produced, so the deployed abstraction is always traceable to the exact
//! configuration that built it.
//!
//! [`MonitorSpec::build`] runs the paper's construction loop and returns a
//! [`ComposedMonitor`] — single-boundary, multi-layer voted, or per-class —
//! which is itself serializable and mountable on the `napmon-serve` engine.
//!
//! Every invariant of a spec is checked *up front* by
//! [`MonitorSpec::validate`] / [`MonitorSpec::validate_for`]: a spec
//! deserialized from an untrusted file fails with a typed
//! [`MonitorError`] instead of panicking deep inside construction.
//!
//! # Example
//!
//! ```
//! use napmon_core::{Monitor, MonitorKind, MonitorSpec};
//! use napmon_absint::Domain;
//! use napmon_nn::{Activation, LayerSpec, Network};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = Network::seeded(7, 4, &[
//!     LayerSpec::dense(8, Activation::Relu),
//!     LayerSpec::dense(2, Activation::Identity),
//! ]);
//! let train: Vec<Vec<f64>> = (0..32)
//!     .map(|i| (0..4).map(|j| ((i + j) % 8) as f64 / 8.0).collect())
//!     .collect();
//!
//! // The whole build, declared as data.
//! let spec = MonitorSpec::new(2, MonitorKind::pattern()).robust(0.05, 0, Domain::Box);
//! let monitor = spec.build(&net, &train)?;
//! for v in &train {
//!     assert!(!monitor.warns(&net, v)?);
//! }
//! # Ok(())
//! # }
//! ```

use crate::builder::{AnyMonitor, MonitorKind, RobustConfig};
use crate::error::MonitorError;
use crate::feature::FeatureExtractor;
use crate::interval_pattern::{IntervalPatternMonitor, ThresholdPolicy};
use crate::minmax::MinMaxMonitor;
use crate::monitor::{Monitor, QueryScratch, Verdict};
use crate::multi::{MultiLayerMonitor, Vote};
use crate::pattern::{PatternBackend, PatternMonitor};
use crate::per_class::PerClassMonitor;
use crate::perturb::perturbation_estimate_with;
use crate::source::{SharedPatternSource, SourceDescriptor, SourceProvider};
use napmon_absint::{propagate::Propagator, BoxBounds, Domain};
use napmon_nn::Network;
use serde::{Deserialize, Serialize};

/// The spec schema version this crate reads and writes.
pub const MONITOR_SPEC_VERSION: u32 = 1;

/// One watched network boundary: the paper's `G^k`, optionally restricted
/// to a neuron subset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WatchedLayer {
    /// Monitored boundary index (`1..=net.num_layers()`).
    pub layer: usize,
    /// Monitored neuron indices; `None` watches the whole boundary.
    pub neurons: Option<Vec<usize>>,
}

impl WatchedLayer {
    /// Watches every neuron of boundary `layer`.
    pub fn whole(layer: usize) -> Self {
        Self {
            layer,
            neurons: None,
        }
    }

    /// Watches only the given neuron indices of boundary `layer`.
    pub fn subset(layer: usize, neurons: Vec<usize>) -> Self {
        Self {
            layer,
            neurons: Some(neurons),
        }
    }
}

/// How member monitors compose into the deployed decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Composition {
    /// One monitor over one boundary (the paper's default setup).
    Single,
    /// One member per watched boundary, combined by a [`Vote`].
    MultiLayer {
        /// The voting rule combining per-boundary verdicts.
        vote: Vote,
    },
    /// One member per output class; queries dispatch on the predicted
    /// class (the DATE 2019 setup).
    PerClass {
        /// Number of classes (one member monitor each).
        num_classes: usize,
    },
}

/// A declarative, versioned description of an entire monitor build.
///
/// See the [module docs](self) for the deployment story. Construct with
/// [`MonitorSpec::new`] (or [`MonitorSpec::multi_layer`]) and refine with
/// the chainable setters; every field is also public, so a spec can be
/// assembled literally or deserialized from JSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonitorSpec {
    /// Spec schema version ([`MONITOR_SPEC_VERSION`]).
    pub version: u32,
    /// The watched boundary (or boundaries, for multi-layer composition).
    pub layers: Vec<WatchedLayer>,
    /// The monitor family and its parameters.
    pub kind: MonitorKind,
    /// Robust-construction parameters; `None` builds the standard monitor.
    pub robust: Option<RobustConfig>,
    /// How members compose into the deployed decision.
    pub composition: Composition,
    /// Parallelism hint: compute per-sample forward passes / perturbation
    /// estimates on all cores during construction.
    pub parallel: bool,
}

impl MonitorSpec {
    /// A single-boundary spec watching all of boundary `layer`.
    pub fn new(layer: usize, kind: MonitorKind) -> Self {
        Self {
            version: MONITOR_SPEC_VERSION,
            layers: vec![WatchedLayer::whole(layer)],
            kind,
            robust: None,
            composition: Composition::Single,
            parallel: false,
        }
    }

    /// A multi-layer spec: one member per watched boundary, combined by
    /// `vote`.
    pub fn multi_layer(layers: Vec<WatchedLayer>, kind: MonitorKind, vote: Vote) -> Self {
        Self {
            version: MONITOR_SPEC_VERSION,
            layers,
            kind,
            robust: None,
            composition: Composition::MultiLayer { vote },
            parallel: false,
        }
    }

    /// Restricts the (single) watched boundary to the given neurons.
    pub fn with_neurons(mut self, neurons: Vec<usize>) -> Self {
        if let Some(first) = self.layers.first_mut() {
            first.neurons = Some(neurons);
        }
        self
    }

    /// Switches to the robust construction of §III-B.
    pub fn robust(mut self, delta: f64, kp: usize, domain: Domain) -> Self {
        self.robust = Some(RobustConfig { delta, kp, domain });
        self
    }

    /// Same as [`MonitorSpec::robust`] with a pre-assembled config.
    pub fn robust_config(mut self, config: RobustConfig) -> Self {
        self.robust = Some(config);
        self
    }

    /// Switches to per-class composition with `num_classes` classes.
    pub fn per_class(mut self, num_classes: usize) -> Self {
        self.composition = Composition::PerClass { num_classes };
        self
    }

    /// Sets the construction parallelism hint.
    pub fn parallel(mut self, yes: bool) -> Self {
        self.parallel = yes;
        self
    }

    /// Checks every network-independent invariant of the spec.
    ///
    /// This is the guard that makes deserialized specs safe: a malformed
    /// file — unknown version, zero watched layers, interval `bits` out of
    /// range, explicit thresholds whose count disagrees with `2^bits − 1`,
    /// negative or non-finite `delta`, `kp` not below every watched layer,
    /// a vote demanding more members than exist — fails here with a typed
    /// [`MonitorError`] instead of panicking inside construction.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::InvalidConfig`] describing the first
    /// violated invariant.
    pub fn validate(&self) -> Result<(), MonitorError> {
        if self.version != MONITOR_SPEC_VERSION {
            return Err(MonitorError::InvalidConfig(format!(
                "unsupported spec version {} (this build reads version {MONITOR_SPEC_VERSION})",
                self.version
            )));
        }
        if self.layers.is_empty() {
            return Err(MonitorError::InvalidConfig("spec watches no layers".into()));
        }
        for watched in &self.layers {
            if watched.layer == 0 {
                return Err(MonitorError::InvalidConfig(
                    "boundary 0 (the raw input) cannot be monitored".into(),
                ));
            }
            if let Some(neurons) = &watched.neurons {
                if neurons.is_empty() {
                    return Err(MonitorError::InvalidConfig(format!(
                        "boundary {}: neuron subset is empty",
                        watched.layer
                    )));
                }
            }
        }
        match &self.composition {
            Composition::Single | Composition::PerClass { .. } => {
                if self.layers.len() != 1 {
                    return Err(MonitorError::InvalidConfig(format!(
                        "{} composition watches exactly one boundary, got {}",
                        match self.composition {
                            Composition::PerClass { .. } => "per-class",
                            _ => "single",
                        },
                        self.layers.len()
                    )));
                }
                if let Composition::PerClass { num_classes } = self.composition {
                    if num_classes == 0 {
                        return Err(MonitorError::InvalidConfig(
                            "per-class composition needs num_classes >= 1".into(),
                        ));
                    }
                }
            }
            Composition::MultiLayer { vote } => {
                if let Vote::AtLeast(k) = vote {
                    if *k == 0 || *k > self.layers.len() {
                        return Err(MonitorError::InvalidConfig(format!(
                            "vote AtLeast({k}) with {} watched layers",
                            self.layers.len()
                        )));
                    }
                }
            }
        }
        self.validate_kind()?;
        if let Some(r) = &self.robust {
            if r.delta < 0.0 || !r.delta.is_finite() {
                return Err(MonitorError::InvalidConfig(format!(
                    "delta must be finite and non-negative, got {}",
                    r.delta
                )));
            }
            if let Some(min_layer) = self.layers.iter().map(|w| w.layer).min() {
                if r.kp >= min_layer {
                    return Err(MonitorError::InvalidConfig(format!(
                        "robust config needs kp < monitored layer: kp={}, layer={min_layer}",
                        r.kp
                    )));
                }
            }
        }
        Ok(())
    }

    /// The family-specific half of [`MonitorSpec::validate`].
    fn validate_kind(&self) -> Result<(), MonitorError> {
        match &self.kind {
            MonitorKind::MinMax { gamma } => {
                if *gamma < 0.0 || !gamma.is_finite() {
                    return Err(MonitorError::InvalidConfig(format!(
                        "gamma must be finite and non-negative, got {gamma}"
                    )));
                }
            }
            MonitorKind::Pattern { policy, .. } => {
                validate_policy(policy, 1)?;
            }
            MonitorKind::IntervalPattern { bits, policy } => {
                if *bits == 0 || *bits > 8 {
                    return Err(MonitorError::InvalidConfig(format!(
                        "bits per neuron must be in 1..=8, got {bits}"
                    )));
                }
                validate_policy(policy, *bits)?;
            }
        }
        Ok(())
    }

    /// Checks the spec against a concrete network: boundary indices in
    /// range, neuron subsets within the boundary width, explicit threshold
    /// lists matching the monitored dimension.
    ///
    /// Runs [`MonitorSpec::validate`] first, so one call covers both
    /// halves — this is what `napmon-artifact` calls on load.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::InvalidConfig`] or
    /// [`MonitorError::DimensionMismatch`] describing the first violated
    /// invariant.
    pub fn validate_for(&self, net: &Network) -> Result<(), MonitorError> {
        self.validate()?;
        for watched in &self.layers {
            if watched.layer > net.num_layers() {
                return Err(MonitorError::InvalidConfig(format!(
                    "monitored boundary {} out of range 1..={}",
                    watched.layer,
                    net.num_layers()
                )));
            }
            let width = net.dim_at(watched.layer);
            let dim = match &watched.neurons {
                None => width,
                Some(neurons) => {
                    for &n in neurons {
                        if n >= width {
                            return Err(MonitorError::InvalidConfig(format!(
                                "neuron {n} out of range for layer width {width}"
                            )));
                        }
                    }
                    let mut seen = std::collections::HashSet::new();
                    neurons.iter().filter(|n| seen.insert(**n)).count()
                }
            };
            let explicit = match &self.kind {
                MonitorKind::Pattern {
                    policy: ThresholdPolicy::Explicit(lists),
                    ..
                }
                | MonitorKind::IntervalPattern {
                    policy: ThresholdPolicy::Explicit(lists),
                    ..
                } => Some(lists),
                _ => None,
            };
            if let Some(lists) = explicit {
                if lists.len() != dim {
                    return Err(MonitorError::DimensionMismatch {
                        context: format!("explicit thresholds at boundary {}", watched.layer),
                        expected: dim,
                        actual: lists.len(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Runs the construction loop of §III-A/B and returns the composed
    /// monitor.
    ///
    /// Per-class composition labels each training sample with the
    /// network's *predicted* class (the deployment-faithful choice: in
    /// operation the dispatch uses predictions too); use
    /// [`MonitorSpec::build_with_labels`] to train against ground-truth
    /// labels instead.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::EmptyTrainingSet`] for empty data,
    /// [`MonitorError::DimensionMismatch`] for malformed samples, and
    /// [`MonitorError::InvalidConfig`] for any violated spec invariant.
    pub fn build(&self, net: &Network, data: &[Vec<f64>]) -> Result<ComposedMonitor, MonitorError> {
        self.build_impl(net, data, None, None)
    }

    /// Like [`MonitorSpec::build`], with explicit per-sample class labels
    /// for per-class composition (`labels[i]` is the class of `data[i]`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`MonitorSpec::build`], plus
    /// [`MonitorError::InvalidConfig`] when labels are out of range or a
    /// class has no samples.
    pub fn build_with_labels(
        &self,
        net: &Network,
        data: &[Vec<f64>],
        labels: &[usize],
    ) -> Result<ComposedMonitor, MonitorError> {
        self.build_impl(net, data, Some(labels), None)
    }

    /// Runs the construction loop with every pattern-set member backed by
    /// an external [`crate::PatternSource`] from `provider` — the
    /// store-backed build.
    ///
    /// The provider is asked for one source per member (member index `0`
    /// for single composition, the boundary position for multi-layer, the
    /// class index for per-class), at the member's packed word width; the
    /// training patterns are absorbed *into the sources*, so the monitor's
    /// word set lives wherever the provider put it (e.g. the
    /// `napmon-store` segments on disk). Pattern-kind specs must declare
    /// [`PatternBackend::Store`] so the spec stays an honest description
    /// of the deployment; interval monitors are store-backed whenever a
    /// provider is given (their `MonitorKind` carries no backend field).
    /// Min-max specs have no pattern set and are rejected.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MonitorSpec::build`], plus
    /// [`MonitorError::InvalidConfig`] for kind/backend disagreements and
    /// [`MonitorError::ExternalSource`] for provider or store failures.
    pub fn build_with_sources(
        &self,
        net: &Network,
        data: &[Vec<f64>],
        provider: &mut dyn SourceProvider,
    ) -> Result<ComposedMonitor, MonitorError> {
        self.build_impl(net, data, None, Some(provider))
    }

    /// Mounts the spec over *already-populated* external sources without
    /// any training data: the warm-start path, where every pattern the
    /// monitor admits comes from the store segments the provider opens.
    ///
    /// Because there is no data to resolve data-dependent thresholds
    /// from, the spec's policy must be data-free
    /// ([`ThresholdPolicy::Sign`] or [`ThresholdPolicy::Explicit`]);
    /// min-max specs cannot mount (their bounds have no external store).
    /// Member `samples()` counters start at zero — provenance lives with
    /// the artifact that built the store, not the mount.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::InvalidConfig`] for invalid specs,
    /// data-dependent policies, or min-max kinds, and
    /// [`MonitorError::ExternalSource`] for provider failures.
    pub fn mount_with_sources(
        &self,
        net: &Network,
        provider: &mut dyn SourceProvider,
    ) -> Result<ComposedMonitor, MonitorError> {
        self.validate_for(net)?;
        let mounts: Vec<(usize, &WatchedLayer)> = match &self.composition {
            Composition::Single => vec![(0, &self.layers[0])],
            Composition::MultiLayer { .. } => self.layers.iter().enumerate().collect(),
            Composition::PerClass { num_classes } => {
                (0..*num_classes).map(|c| (c, &self.layers[0])).collect()
            }
        };
        let mut members = Vec::with_capacity(mounts.len());
        for (member, watched) in mounts {
            members.push(mount_member(net, watched, &self.kind, member, provider)?);
        }
        Ok(match &self.composition {
            Composition::Single => {
                ComposedMonitor::Single(members.pop().expect("one member mounted"))
            }
            Composition::MultiLayer { vote } => {
                ComposedMonitor::MultiLayer(MultiLayerMonitor::new(members, *vote))
            }
            Composition::PerClass { .. } => {
                ComposedMonitor::PerClass(PerClassMonitor::new(members))
            }
        })
    }

    /// The shared construction path behind `build*`: optional explicit
    /// labels (per-class), optional external sources.
    fn build_impl(
        &self,
        net: &Network,
        data: &[Vec<f64>],
        labels: Option<&[usize]>,
        mut provider: Option<&mut dyn SourceProvider>,
    ) -> Result<ComposedMonitor, MonitorError> {
        self.validate_for(net)?;
        check_training_data(net, data)?;
        match &self.composition {
            Composition::Single => Ok(ComposedMonitor::Single(build_member(
                net,
                &self.layers[0],
                &self.kind,
                self.robust,
                self.parallel,
                data,
                0,
                provider.as_deref_mut(),
            )?)),
            Composition::MultiLayer { vote } => {
                let mut members = Vec::with_capacity(self.layers.len());
                for (i, watched) in self.layers.iter().enumerate() {
                    members.push(build_member(
                        net,
                        watched,
                        &self.kind,
                        self.robust,
                        self.parallel,
                        data,
                        i,
                        provider.as_deref_mut(),
                    )?);
                }
                Ok(ComposedMonitor::MultiLayer(MultiLayerMonitor::new(
                    members, *vote,
                )))
            }
            Composition::PerClass { num_classes } => {
                // Validation above ran before predicting labels:
                // predict_class panics on wrong-dimension samples, and
                // malformed input must surface as the typed error the
                // build methods document.
                let predicted: Vec<usize>;
                let labels = match labels {
                    Some(labels) => labels,
                    None => {
                        predicted = data.iter().map(|x| net.predict_class(x)).collect();
                        &predicted
                    }
                };
                if labels.len() != data.len() {
                    return Err(MonitorError::DimensionMismatch {
                        context: "per-class labels".into(),
                        expected: data.len(),
                        actual: labels.len(),
                    });
                }
                let mut partitions: Vec<Vec<Vec<f64>>> = vec![Vec::new(); *num_classes];
                for (v, &c) in data.iter().zip(labels) {
                    if c >= *num_classes {
                        return Err(MonitorError::InvalidConfig(format!(
                            "label {c} out of range 0..{num_classes}"
                        )));
                    }
                    partitions[c].push(v.clone());
                }
                let watched = &self.layers[0];
                let mut monitors = Vec::with_capacity(*num_classes);
                for (c, part) in partitions.iter().enumerate() {
                    if part.is_empty() {
                        return Err(MonitorError::InvalidConfig(format!(
                            "class {c} has no training samples"
                        )));
                    }
                    monitors.push(build_member(
                        net,
                        watched,
                        &self.kind,
                        self.robust,
                        self.parallel,
                        part,
                        c,
                        provider.as_deref_mut(),
                    )?);
                }
                Ok(ComposedMonitor::PerClass(PerClassMonitor::new(monitors)))
            }
        }
    }
}

/// Static validity of a threshold policy for a given bit width.
fn validate_policy(policy: &ThresholdPolicy, bits: usize) -> Result<(), MonitorError> {
    let per_neuron = (1usize << bits) - 1;
    match policy {
        ThresholdPolicy::Sign | ThresholdPolicy::Mean => {
            if bits != 1 {
                return Err(MonitorError::InvalidConfig(format!(
                    "{policy:?} policy requires bits = 1, got {bits}"
                )));
            }
        }
        ThresholdPolicy::Quantiles => {}
        ThresholdPolicy::Explicit(lists) => {
            for (j, list) in lists.iter().enumerate() {
                if list.len() != per_neuron {
                    return Err(MonitorError::InvalidConfig(format!(
                        "neuron {j}: expected {per_neuron} thresholds for {bits}-bit \
                         patterns, got {}",
                        list.len()
                    )));
                }
                if list.windows(2).any(|w| w[0] >= w[1]) {
                    return Err(MonitorError::InvalidConfig(format!(
                        "neuron {j}: thresholds not ascending"
                    )));
                }
                if list.iter().any(|c| !c.is_finite()) {
                    return Err(MonitorError::InvalidConfig(format!(
                        "neuron {j}: thresholds must be finite"
                    )));
                }
            }
        }
    }
    Ok(())
}

/// Shared training-data checks: non-empty, every sample matching the
/// network input dimension.
fn check_training_data(net: &Network, data: &[Vec<f64>]) -> Result<(), MonitorError> {
    if data.is_empty() {
        return Err(MonitorError::EmptyTrainingSet);
    }
    for (i, v) in data.iter().enumerate() {
        if v.len() != net.input_dim() {
            return Err(MonitorError::DimensionMismatch {
                context: format!("training sample {i}"),
                expected: net.input_dim(),
                actual: v.len(),
            });
        }
    }
    Ok(())
}

/// Resolves the external source backing one member, if the kind/provider
/// combination calls for one; rejects the combinations that cannot work.
fn member_source<P: SourceProvider + ?Sized>(
    kind: &MonitorKind,
    member: usize,
    word_bits: usize,
    provider: Option<&mut P>,
) -> Result<Option<SharedPatternSource>, MonitorError> {
    match (kind, provider) {
        (MonitorKind::MinMax { .. }, Some(_)) => Err(MonitorError::InvalidConfig(
            "min-max monitors have no pattern set to externalize; \
             remove the source provider or change the kind"
                .into(),
        )),
        (MonitorKind::Pattern { backend, .. }, Some(provider)) => {
            if *backend != PatternBackend::Store {
                return Err(MonitorError::InvalidConfig(format!(
                    "sources were provided but the spec declares backend {backend:?}; \
                     declare PatternBackend::Store"
                )));
            }
            provider.open_source(member, word_bits).map(Some)
        }
        (
            MonitorKind::Pattern {
                backend: PatternBackend::Store,
                ..
            },
            None,
        ) => Err(MonitorError::InvalidConfig(
            "PatternBackend::Store needs a source provider; build with \
             MonitorSpec::build_with_sources (or mount_with_sources)"
                .into(),
        )),
        (MonitorKind::IntervalPattern { .. }, Some(provider)) => {
            provider.open_source(member, word_bits).map(Some)
        }
        _ => Ok(None),
    }
}

/// The packed word width of a member's pattern set (1 bit per neuron for
/// on-off patterns, `bits` per neuron for interval patterns).
fn member_word_bits(kind: &MonitorKind, dim: usize) -> usize {
    match kind {
        MonitorKind::IntervalPattern { bits, .. } => dim * bits,
        _ => dim,
    }
}

/// Builds one member monitor over one watched boundary: the §III-A/B
/// construction loop the spec (and therefore the builder shim) lowers to.
/// `member` indexes the member within its composition; `provider`, when
/// given, supplies the external source its pattern set is absorbed into.
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_member<P: SourceProvider + ?Sized>(
    net: &Network,
    watched: &WatchedLayer,
    kind: &MonitorKind,
    robust: Option<RobustConfig>,
    parallel: bool,
    data: &[Vec<f64>],
    member: usize,
    provider: Option<&mut P>,
) -> Result<AnyMonitor, MonitorError> {
    let fx = FeatureExtractor::new(net, watched.layer)?;
    let fx = match &watched.neurons {
        None => fx,
        Some(neurons) => fx.with_neurons(neurons.clone())?,
    };
    let source = member_source(kind, member, member_word_bits(kind, fx.dim()), provider)?;
    let (features, bounds) = compute_samples(net, &fx, watched.layer, robust, parallel, data);
    let monitor = match kind {
        MonitorKind::MinMax { gamma } => {
            let mut m = MinMaxMonitor::empty(fx);
            match &bounds {
                Some(bs) => bs.iter().for_each(|b| m.absorb_bounds(b)),
                None => features.iter().for_each(|f| m.absorb_point(f)),
            }
            if *gamma > 0.0 {
                m.enlarge(*gamma);
            }
            AnyMonitor::MinMax(m)
        }
        MonitorKind::Pattern {
            policy,
            backend,
            hamming,
        } => {
            let lists = policy.resolve(fx.dim(), 1, &features)?;
            let thresholds: Vec<f64> = lists.into_iter().map(|l| l[0]).collect();
            let mut m = match source {
                Some(source) => PatternMonitor::with_source(fx, thresholds, source)?,
                None => PatternMonitor::empty(fx, thresholds, *backend)?,
            };
            m.set_hamming_tolerance(*hamming);
            match &bounds {
                Some(bs) => {
                    for b in bs {
                        m.absorb_bounds_checked(b)?;
                    }
                }
                None => {
                    for f in &features {
                        m.absorb_point_checked(f)?;
                    }
                }
            }
            m.commit_source()?;
            AnyMonitor::Pattern(m)
        }
        MonitorKind::IntervalPattern { bits, policy } => {
            let lists = policy.resolve(fx.dim(), *bits, &features)?;
            let mut m = match source {
                Some(source) => IntervalPatternMonitor::with_source(fx, *bits, lists, source)?,
                None => IntervalPatternMonitor::empty(fx, *bits, lists)?,
            };
            match &bounds {
                Some(bs) => {
                    for b in bs {
                        m.absorb_bounds_checked(b)?;
                    }
                }
                None => {
                    for f in &features {
                        m.absorb_point_checked(f)?;
                    }
                }
            }
            m.commit_source()?;
            AnyMonitor::Interval(m)
        }
    };
    Ok(monitor)
}

/// Mounts one member over an already-populated external source (no
/// training data; see [`MonitorSpec::mount_with_sources`]).
fn mount_member(
    net: &Network,
    watched: &WatchedLayer,
    kind: &MonitorKind,
    member: usize,
    provider: &mut dyn SourceProvider,
) -> Result<AnyMonitor, MonitorError> {
    let fx = FeatureExtractor::new(net, watched.layer)?;
    let fx = match &watched.neurons {
        None => fx,
        Some(neurons) => fx.with_neurons(neurons.clone())?,
    };
    let data_free = |policy: &ThresholdPolicy, bits: usize| {
        policy.resolve(fx.dim(), bits, &[]).map_err(|e| match e {
            MonitorError::EmptyTrainingSet => MonitorError::InvalidConfig(format!(
                "{policy:?} thresholds need training data; warm starts require a \
                 data-free policy (Sign or Explicit)"
            )),
            other => other,
        })
    };
    match kind {
        MonitorKind::MinMax { .. } => Err(MonitorError::InvalidConfig(
            "min-max monitors keep their bounds in the artifact, not a pattern \
             store; load them through napmon-artifact instead of mounting"
                .into(),
        )),
        MonitorKind::Pattern {
            policy,
            backend,
            hamming,
        } => {
            if *backend != PatternBackend::Store {
                return Err(MonitorError::InvalidConfig(format!(
                    "mounting needs backend PatternBackend::Store, spec declares {backend:?}"
                )));
            }
            let thresholds: Vec<f64> = data_free(policy, 1)?.into_iter().map(|l| l[0]).collect();
            let source = provider.open_source(member, fx.dim())?;
            let mut m = PatternMonitor::with_source(fx, thresholds, source)?;
            m.set_hamming_tolerance(*hamming);
            Ok(AnyMonitor::Pattern(m))
        }
        MonitorKind::IntervalPattern { bits, policy } => {
            let lists = data_free(policy, *bits)?;
            let source = provider.open_source(member, fx.dim() * *bits)?;
            Ok(AnyMonitor::Interval(IntervalPatternMonitor::with_source(
                fx, *bits, lists, source,
            )?))
        }
    }
}

/// Per-sample features and (when robust) perturbation estimates, both
/// projected to the monitored neurons.
fn compute_samples(
    net: &Network,
    fx: &FeatureExtractor,
    layer: usize,
    robust: Option<RobustConfig>,
    parallel: bool,
    data: &[Vec<f64>],
) -> (Vec<Vec<f64>>, Option<Vec<BoxBounds>>) {
    let results: Vec<(Vec<f64>, Option<BoxBounds>)> = if !parallel || data.len() < 64 {
        // Serial path reuses one propagator across samples.
        let prop = robust.map(|r| Propagator::new(net, r.domain));
        data.iter()
            .map(|sample| sample_one(net, fx, layer, robust, prop.as_ref(), sample))
            .collect()
    } else {
        let threads = std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(4);
        let chunk_size = data.len().div_ceil(threads);
        std::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(chunk_size)
                .map(|chunk| {
                    s.spawn(move || {
                        // One cached propagator per worker.
                        let prop = robust.map(|r| Propagator::new(net, r.domain));
                        chunk
                            .iter()
                            .map(|sample| sample_one(net, fx, layer, robust, prop.as_ref(), sample))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("worker panicked"))
                .collect()
        })
    };
    let (features, bounds): (Vec<_>, Vec<_>) = results.into_iter().unzip();
    let bounds: Option<Vec<BoxBounds>> = if robust.is_some() {
        Some(
            bounds
                .into_iter()
                .map(|b| b.expect("robust bounds computed"))
                .collect(),
        )
    } else {
        None
    };
    (features, bounds)
}

/// One sample of the construction loop: projected features plus (when
/// robust) the projected perturbation estimate.
fn sample_one(
    net: &Network,
    fx: &FeatureExtractor,
    layer: usize,
    robust: Option<RobustConfig>,
    prop: Option<&Propagator<'_>>,
    sample: &[f64],
) -> (Vec<f64>, Option<BoxBounds>) {
    let features = fx.project(&net.forward_prefix(sample, layer));
    let bounds = robust.map(|r| {
        let pe = perturbation_estimate_with(
            prop.expect("propagator exists when robust"),
            sample,
            r.kp,
            layer,
            r.delta,
        )
        .expect("validated robust config");
        fx.project_bounds(&pe)
    });
    (features, bounds)
}

/// A deployable monitor of any composition, as produced by
/// [`MonitorSpec::build`]: single-boundary, multi-layer voted, or
/// per-class dispatched. Serializable as a unit, so a whole deployment —
/// not just one member abstraction — round-trips through a
/// `napmon-artifact` file.
// One `ComposedMonitor` exists per deployment (not per request), so the
// size skew between a composite's `Vec` indirection and an inline
// single-boundary monitor is irrelevant; boxing would only add a pointer
// chase to the query hot path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ComposedMonitor {
    /// One monitor over one boundary.
    Single(AnyMonitor),
    /// One member per boundary, combined by a vote.
    MultiLayer(MultiLayerMonitor),
    /// One member per output class, dispatched on the predicted class.
    PerClass(PerClassMonitor),
}

impl ComposedMonitor {
    /// The single-boundary monitor, if that is what was built.
    pub fn as_single(&self) -> Option<&AnyMonitor> {
        match self {
            ComposedMonitor::Single(m) => Some(m),
            _ => None,
        }
    }

    /// The multi-layer monitor, if that is what was built.
    pub fn as_multi_layer(&self) -> Option<&MultiLayerMonitor> {
        match self {
            ComposedMonitor::MultiLayer(m) => Some(m),
            _ => None,
        }
    }

    /// The per-class monitor, if that is what was built.
    pub fn as_per_class(&self) -> Option<&PerClassMonitor> {
        match self {
            ComposedMonitor::PerClass(m) => Some(m),
            _ => None,
        }
    }

    /// The member monitors, flattened: one for `Single`, one per boundary
    /// for `MultiLayer`, one per class for `PerClass`.
    pub fn members(&self) -> Vec<&AnyMonitor> {
        match self {
            ComposedMonitor::Single(m) => vec![m],
            ComposedMonitor::MultiLayer(m) => m.members().iter().collect(),
            ComposedMonitor::PerClass(m) => {
                (0..m.num_classes()).map(|c| m.class_monitor(c)).collect()
            }
        }
    }

    /// Mutable access to the member monitors, in [`ComposedMonitor::members`]
    /// order.
    fn members_mut(&mut self) -> Vec<&mut AnyMonitor> {
        match self {
            ComposedMonitor::Single(m) => vec![m],
            ComposedMonitor::MultiLayer(m) => m.members_mut().iter_mut().collect(),
            ComposedMonitor::PerClass(m) => m.monitors_mut().iter_mut().collect(),
        }
    }

    /// Per member (in [`ComposedMonitor::members`] order): the descriptor
    /// of its external pattern source, or `None` for in-memory members.
    /// This is how an artifact (and an operator) reads the store-backed
    /// composition off a deployed monitor.
    pub fn external_descriptors(&self) -> Vec<Option<SourceDescriptor>> {
        self.members()
            .iter()
            .map(|m| m.external_descriptor().cloned())
            .collect()
    }

    /// Whether any member is store-backed but detached (fresh from
    /// deserialization, awaiting
    /// [`ComposedMonitor::attach_external_sources`]).
    pub fn needs_sources(&self) -> bool {
        self.members().iter().any(|m| m.needs_source())
    }

    /// Reattaches live sources to every store-backed member: `resolve` is
    /// called once per such member with its index (in
    /// [`ComposedMonitor::members`] order) and recorded descriptor, and
    /// must reopen the source it points to. Returns the number of members
    /// attached.
    ///
    /// # Errors
    ///
    /// Propagates `resolve` failures and word-width mismatches.
    pub fn attach_external_sources(
        &mut self,
        resolve: &mut dyn FnMut(
            usize,
            &SourceDescriptor,
        ) -> Result<SharedPatternSource, MonitorError>,
    ) -> Result<usize, MonitorError> {
        let mut attached = 0;
        for (i, member) in self.members_mut().into_iter().enumerate() {
            if let Some(descriptor) = member.external_descriptor().cloned() {
                member.attach_source(resolve(i, &descriptor)?)?;
                attached += 1;
            }
        }
        Ok(attached)
    }

    /// Flushes every store-backed member's buffered writes (no-op for
    /// in-memory members) — the durability point after operation-time
    /// absorption.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::ExternalSource`] if a store fails.
    pub fn commit_external_sources(&self) -> Result<(), MonitorError> {
        for member in self.members() {
            member.commit_source()?;
        }
        Ok(())
    }

    /// Absorbs one operational input into the store-backed members through
    /// `&self` — the serving engine's enlargement path. Single and
    /// multi-layer compositions absorb into every member; per-class
    /// absorbs into the predicted class's member (matching the query-time
    /// dispatch). The new patterns are visible to every subsequent query
    /// on any clone of the monitor, with no rebuild.
    ///
    /// Returns the number of members that stored a *new* pattern.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::ExternalSource`] if no touched member is
    /// store-backed (in-memory monitors need
    /// [`ComposedMonitor::absorb_mut`]), plus any extraction or store
    /// error.
    pub fn absorb_operation(&self, net: &Network, input: &[f64]) -> Result<usize, MonitorError> {
        let mut fresh = 0;
        match self {
            ComposedMonitor::Single(m) => {
                fresh += usize::from(m.absorb_input_shared(net, input)?);
            }
            ComposedMonitor::MultiLayer(m) => {
                if input.len() != net.input_dim() {
                    return Err(MonitorError::DimensionMismatch {
                        context: "multi-layer absorb input".into(),
                        expected: net.input_dim(),
                        actual: input.len(),
                    });
                }
                // One forward pass shared across members, exactly like
                // the multi-layer query path.
                let boundaries = net.boundary_values(input);
                for member in m.members() {
                    let fx = member.extractor();
                    let features = fx.project(&boundaries[fx.layer()]);
                    fresh += usize::from(member.absorb_features_shared(&features)?);
                }
            }
            ComposedMonitor::PerClass(m) => {
                if input.len() != net.input_dim() {
                    return Err(MonitorError::DimensionMismatch {
                        context: "per-class absorb input".into(),
                        expected: net.input_dim(),
                        actual: input.len(),
                    });
                }
                let class = net.predict_class(input);
                let member = (class < m.num_classes())
                    .then(|| m.class_monitor(class))
                    .ok_or_else(|| {
                        MonitorError::InvalidConfig(format!(
                            "predicted class {class} has no monitor ({} classes)",
                            m.num_classes()
                        ))
                    })?;
                fresh += usize::from(member.absorb_input_shared(net, input)?);
            }
        }
        Ok(fresh)
    }

    /// Absorbs one operational input through `&mut self`, for any backend:
    /// in-memory members fold the pattern into their BDD/hash set (and
    /// count it as a sample), store-backed members append to their source.
    /// The `&self` counterpart for serving is
    /// [`ComposedMonitor::absorb_operation`].
    ///
    /// # Errors
    ///
    /// Any extraction or store error.
    pub fn absorb_mut(&mut self, net: &Network, input: &[f64]) -> Result<(), MonitorError> {
        match self {
            ComposedMonitor::Single(m) => m.absorb_input_mut(net, input),
            ComposedMonitor::MultiLayer(m) => {
                if input.len() != net.input_dim() {
                    return Err(MonitorError::DimensionMismatch {
                        context: "multi-layer absorb input".into(),
                        expected: net.input_dim(),
                        actual: input.len(),
                    });
                }
                let boundaries = net.boundary_values(input);
                for member in m.members_mut() {
                    let fx = member.extractor();
                    let features = fx.project(&boundaries[fx.layer()]);
                    member.absorb_features_mut(&features)?;
                }
                Ok(())
            }
            ComposedMonitor::PerClass(m) => {
                if input.len() != net.input_dim() {
                    return Err(MonitorError::DimensionMismatch {
                        context: "per-class absorb input".into(),
                        expected: net.input_dim(),
                        actual: input.len(),
                    });
                }
                let class = net.predict_class(input);
                let num_classes = m.num_classes();
                m.monitors_mut()
                    .get_mut(class)
                    .ok_or_else(|| {
                        MonitorError::InvalidConfig(format!(
                            "predicted class {class} has no monitor ({num_classes} classes)"
                        ))
                    })?
                    .absorb_input_mut(net, input)
            }
        }
    }
}

impl Monitor for ComposedMonitor {
    /// The *primary* extractor: the single member's, the first boundary's
    /// (multi-layer), or class 0's (per-class). Composite monitors watch
    /// more than this one extractor describes — use
    /// [`ComposedMonitor::members`] for the full picture.
    fn extractor(&self) -> &FeatureExtractor {
        match self {
            ComposedMonitor::Single(m) => m.extractor(),
            ComposedMonitor::MultiLayer(m) => m.members()[0].extractor(),
            ComposedMonitor::PerClass(m) => m.class_monitor(0).extractor(),
        }
    }

    /// Feature-level verdict.
    ///
    /// # Panics
    ///
    /// Panics for composite (multi-layer / per-class) monitors: their
    /// decision needs the full network input, not one feature vector. Use
    /// [`Monitor::verdict`] / [`Monitor::verdict_scratch`], which work for
    /// every composition.
    fn verdict_features(&self, features: &[f64]) -> Verdict {
        match self {
            ComposedMonitor::Single(m) => m.verdict_features(features),
            _ => panic!(
                "composite monitors have no single feature vector; \
                 query with verdict()/verdict_scratch() on the network input"
            ),
        }
    }

    fn verdict_features_scratch(&self, features: &[f64], scratch: &mut QueryScratch) -> Verdict {
        match self {
            ComposedMonitor::Single(m) => m.verdict_features_scratch(features, scratch),
            _ => self.verdict_features(features),
        }
    }

    fn verdict_batch_scratch(
        &self,
        net: &Network,
        inputs: &[Vec<f64>],
        scratch: &mut QueryScratch,
        out: &mut Vec<Verdict>,
    ) -> Result<(), MonitorError> {
        match self {
            // Single members get the bit-sliced batch kernel; composites
            // keep the default per-input loop (their verdict depends on
            // full-network routing, not one feature vector).
            ComposedMonitor::Single(m) => m.verdict_batch_scratch(net, inputs, scratch, out),
            _ => {
                out.clear();
                out.reserve(inputs.len());
                for input in inputs {
                    out.push(self.verdict_scratch(net, input, scratch)?);
                }
                Ok(())
            }
        }
    }

    fn verdict(&self, net: &Network, input: &[f64]) -> Result<Verdict, MonitorError> {
        match self {
            ComposedMonitor::Single(m) => m.verdict(net, input),
            ComposedMonitor::MultiLayer(m) => m.verdict(net, input),
            ComposedMonitor::PerClass(m) => m.verdict(net, input),
        }
    }

    fn verdict_scratch(
        &self,
        net: &Network,
        input: &[f64],
        scratch: &mut QueryScratch,
    ) -> Result<Verdict, MonitorError> {
        match self {
            ComposedMonitor::Single(m) => m.verdict_scratch(net, input, scratch),
            ComposedMonitor::MultiLayer(m) => m.verdict_scratch(net, input, scratch),
            ComposedMonitor::PerClass(m) => m.verdict_scratch(net, input, scratch),
        }
    }

    fn query_batch(
        &self,
        net: &Network,
        inputs: &[Vec<f64>],
    ) -> Result<Vec<Verdict>, MonitorError> {
        match self {
            ComposedMonitor::Single(m) => m.query_batch(net, inputs),
            ComposedMonitor::MultiLayer(m) => m.query_batch(net, inputs),
            ComposedMonitor::PerClass(m) => m.query_batch(net, inputs),
        }
    }

    fn query_batch_parallel_with(
        &self,
        net: &Network,
        inputs: &[Vec<f64>],
        threads: usize,
    ) -> Result<Vec<Verdict>, MonitorError> {
        match self {
            ComposedMonitor::Single(m) => m.query_batch_parallel_with(net, inputs, threads),
            ComposedMonitor::MultiLayer(m) => m.query_batch_parallel_with(net, inputs, threads),
            ComposedMonitor::PerClass(m) => m.query_batch_parallel_with(net, inputs, threads),
        }
    }
}

impl std::fmt::Display for ComposedMonitor {
    /// A one-line composition card wrapping the member cards.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ComposedMonitor::Single(m) => write!(f, "{m}"),
            ComposedMonitor::MultiLayer(m) => write!(
                f,
                "multi-layer monitor ({} members, vote {:?})",
                m.num_members(),
                m.vote()
            ),
            ComposedMonitor::PerClass(m) => {
                write!(f, "per-class monitor ({} classes)", m.num_classes())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::PatternBackend;
    use napmon_nn::{Activation, LayerSpec};
    use napmon_tensor::Prng;

    fn net() -> Network {
        Network::seeded(
            23,
            3,
            &[
                LayerSpec::dense(8, Activation::Relu),
                LayerSpec::dense(4, Activation::Relu),
                LayerSpec::dense(2, Activation::Identity),
            ],
        )
    }

    fn train_data(n: usize) -> Vec<Vec<f64>> {
        let mut rng = Prng::seed(99);
        (0..n).map(|_| rng.uniform_vec(3, -0.5, 0.5)).collect()
    }

    #[test]
    fn spec_builds_match_builder_builds() {
        let net = net();
        let data = train_data(48);
        for kind in [
            MonitorKind::min_max(),
            MonitorKind::pattern(),
            MonitorKind::interval(2),
        ] {
            let from_spec = MonitorSpec::new(4, kind.clone())
                .build(&net, &data)
                .unwrap();
            let from_builder = crate::builder::MonitorBuilder::new(&net, 4)
                .build(kind, &data)
                .unwrap();
            let mut rng = Prng::seed(5);
            for _ in 0..64 {
                let probe = rng.uniform_vec(3, -2.0, 2.0);
                assert_eq!(
                    from_spec.verdict(&net, &probe).unwrap(),
                    from_builder.verdict(&net, &probe).unwrap()
                );
            }
        }
    }

    #[test]
    fn spec_serde_round_trip_preserves_build() {
        let net = net();
        let data = train_data(32);
        let spec = MonitorSpec::new(4, MonitorKind::interval(2))
            .robust(0.03, 0, Domain::Box)
            .with_neurons(vec![0, 2]);
        let json = serde_json::to_string(&spec).unwrap();
        let back: MonitorSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
        let a = spec.build(&net, &data).unwrap();
        let b = back.build(&net, &data).unwrap();
        let mut rng = Prng::seed(6);
        for _ in 0..32 {
            let probe = rng.uniform_vec(3, -2.0, 2.0);
            assert_eq!(
                a.verdict(&net, &probe).unwrap(),
                b.verdict(&net, &probe).unwrap()
            );
        }
    }

    #[test]
    fn validate_rejects_malformed_specs() {
        // Unknown version.
        let mut spec = MonitorSpec::new(2, MonitorKind::pattern());
        spec.version = 99;
        assert!(spec.validate().is_err());
        // No layers.
        let mut spec = MonitorSpec::new(2, MonitorKind::pattern());
        spec.layers.clear();
        assert!(spec.validate().is_err());
        // Boundary 0.
        assert!(MonitorSpec::new(0, MonitorKind::pattern())
            .validate()
            .is_err());
        // Empty neuron subset.
        assert!(MonitorSpec::new(2, MonitorKind::pattern())
            .with_neurons(vec![])
            .validate()
            .is_err());
        // Interval bits out of range.
        assert!(MonitorSpec::new(2, MonitorKind::interval(0))
            .validate()
            .is_err());
        assert!(MonitorSpec::new(2, MonitorKind::interval(9))
            .validate()
            .is_err());
        // Explicit thresholds disagreeing with bits.
        let bad = MonitorKind::interval_with(
            2,
            ThresholdPolicy::Explicit(vec![vec![0.0]]), // needs 3 per neuron
        );
        assert!(MonitorSpec::new(2, bad).validate().is_err());
        // Sign policy on a multi-bit monitor.
        let bad = MonitorKind::interval_with(2, ThresholdPolicy::Sign);
        assert!(MonitorSpec::new(2, bad).validate().is_err());
        // Negative / non-finite delta.
        assert!(MonitorSpec::new(2, MonitorKind::pattern())
            .robust(-0.1, 0, Domain::Box)
            .validate()
            .is_err());
        assert!(MonitorSpec::new(2, MonitorKind::pattern())
            .robust(f64::NAN, 0, Domain::Box)
            .validate()
            .is_err());
        // kp not below the watched layer.
        assert!(MonitorSpec::new(2, MonitorKind::pattern())
            .robust(0.1, 2, Domain::Box)
            .validate()
            .is_err());
        // Vote arity.
        let spec = MonitorSpec::multi_layer(
            vec![WatchedLayer::whole(2), WatchedLayer::whole(4)],
            MonitorKind::min_max(),
            Vote::AtLeast(3),
        );
        assert!(spec.validate().is_err());
        // Per-class with zero classes.
        assert!(MonitorSpec::new(2, MonitorKind::pattern())
            .per_class(0)
            .validate()
            .is_err());
        // Negative gamma.
        assert!(MonitorSpec::new(2, MonitorKind::min_max_enlarged(-1.0))
            .validate()
            .is_err());
        // The good spec still validates.
        assert!(MonitorSpec::new(2, MonitorKind::pattern())
            .validate()
            .is_ok());
    }

    #[test]
    fn validate_for_checks_network_dimensions() {
        let net = net();
        // Boundary out of range (network has 5 layers incl. activations).
        let spec = MonitorSpec::new(99, MonitorKind::pattern());
        assert!(spec.validate_for(&net).is_err());
        // Neuron index out of range for the boundary width.
        let spec = MonitorSpec::new(4, MonitorKind::pattern()).with_neurons(vec![99]);
        assert!(spec.validate_for(&net).is_err());
        // Explicit threshold count vs monitored dimension.
        let spec = MonitorSpec::new(
            4,
            MonitorKind::pattern_with(
                ThresholdPolicy::Explicit(vec![vec![0.0]]),
                PatternBackend::Bdd,
                0,
            ),
        );
        assert!(spec.validate_for(&net).is_err());
        // A good spec passes.
        assert!(MonitorSpec::new(4, MonitorKind::pattern())
            .validate_for(&net)
            .is_ok());
    }

    #[test]
    fn deserialized_malformed_spec_fails_with_typed_error_not_panic() {
        let json = r#"{
            "version": 1,
            "layers": [{"layer": 2, "neurons": null}],
            "kind": {"IntervalPattern": {"bits": 3, "policy": {"Explicit": [[0.0, 1.0]]}}},
            "robust": null,
            "composition": "Single",
            "parallel": false
        }"#;
        let spec: MonitorSpec = serde_json::from_str(json).unwrap();
        let net = net();
        let err = spec.build(&net, &train_data(8)).unwrap_err();
        assert!(matches!(err, MonitorError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn multi_layer_spec_builds_voted_monitor() {
        let net = net();
        let data = train_data(40);
        let spec = MonitorSpec::multi_layer(
            vec![WatchedLayer::whole(2), WatchedLayer::whole(4)],
            MonitorKind::min_max(),
            Vote::Any,
        );
        let m = spec.build(&net, &data).unwrap();
        assert_eq!(m.as_multi_layer().unwrap().num_members(), 2);
        for x in &data {
            assert!(!m.warns(&net, x).unwrap());
        }
        assert!(m.warns(&net, &[100.0, -100.0, 100.0]).unwrap());
    }

    #[test]
    fn per_class_build_returns_typed_error_on_malformed_samples() {
        let net = net(); // 3-dimensional input
        let spec = MonitorSpec::new(4, MonitorKind::pattern()).per_class(2);
        // Wrong-dimension sample must be the documented typed error, not a
        // panic inside predict_class.
        let err = spec.build(&net, &[vec![0.0; 5]]).unwrap_err();
        assert!(
            matches!(err, MonitorError::DimensionMismatch { .. }),
            "{err}"
        );
        assert!(matches!(
            spec.build(&net, &[]),
            Err(MonitorError::EmptyTrainingSet)
        ));
    }

    #[test]
    fn per_class_spec_builds_with_predicted_labels() {
        let net = net();
        let data = train_data(60);
        let spec = MonitorSpec::new(4, MonitorKind::pattern()).per_class(2);
        let m = spec.build(&net, &data).unwrap();
        assert_eq!(m.as_per_class().unwrap().num_classes(), 2);
        for x in &data {
            assert!(!m.warns(&net, x).unwrap());
        }
    }

    #[test]
    fn composed_monitor_batch_matches_sequential() {
        let net = net();
        let data = train_data(40);
        let spec = MonitorSpec::multi_layer(
            vec![WatchedLayer::whole(2), WatchedLayer::whole(4)],
            MonitorKind::pattern(),
            Vote::Any,
        );
        let m = spec.build(&net, &data).unwrap();
        let mut rng = Prng::seed(17);
        let probes: Vec<Vec<f64>> = (0..50).map(|_| rng.uniform_vec(3, -2.0, 2.0)).collect();
        let batch = m.query_batch(&net, &probes).unwrap();
        let parallel = m.query_batch_parallel_with(&net, &probes, 2).unwrap();
        assert_eq!(batch, parallel);
        for (p, v) in probes.iter().zip(&batch) {
            assert_eq!(m.verdict(&net, p).unwrap(), *v);
        }
    }

    #[test]
    #[should_panic(expected = "no single feature vector")]
    fn composite_feature_level_query_panics_with_guidance() {
        let net = net();
        let data = train_data(16);
        let spec = MonitorSpec::multi_layer(
            vec![WatchedLayer::whole(2), WatchedLayer::whole(4)],
            MonitorKind::min_max(),
            Vote::Any,
        );
        let m = spec.build(&net, &data).unwrap();
        m.verdict_features(&[0.0; 8]);
    }

    fn memory_provider() -> impl SourceProvider {
        |_member: usize, word_bits: usize| {
            Ok(crate::source::shared_source(
                crate::source::MemoryPatternSource::new(word_bits),
            ))
        }
    }

    #[test]
    fn store_backed_builds_match_in_memory_bit_for_bit() {
        let net = net();
        let data = train_data(48);
        let probes: Vec<Vec<f64>> = {
            let mut rng = Prng::seed(41);
            (0..64).map(|_| rng.uniform_vec(3, -2.0, 2.0)).collect()
        };
        for robust in [false, true] {
            for (in_mem_kind, stored_kind) in [
                (
                    MonitorKind::pattern(),
                    MonitorKind::pattern_with(ThresholdPolicy::Sign, PatternBackend::Store, 0),
                ),
                (MonitorKind::interval(2), MonitorKind::interval(2)),
            ] {
                let mut reference = MonitorSpec::new(4, in_mem_kind);
                let mut stored = MonitorSpec::new(4, stored_kind);
                if robust {
                    reference = reference.robust(0.02, 0, Domain::Box);
                    stored = stored.robust(0.02, 0, Domain::Box);
                }
                let a = reference.build(&net, &data).unwrap();
                let b = stored
                    .build_with_sources(&net, &data, &mut memory_provider())
                    .unwrap();
                assert_eq!(
                    a.query_batch(&net, &probes).unwrap(),
                    b.query_batch(&net, &probes).unwrap(),
                    "robust={robust}"
                );
            }
        }
    }

    #[test]
    fn store_backed_multi_layer_and_per_class_compose() {
        let net = net();
        let data = train_data(60);
        let multi = MonitorSpec::multi_layer(
            vec![WatchedLayer::whole(2), WatchedLayer::whole(4)],
            MonitorKind::interval(2),
            Vote::Any,
        )
        .build_with_sources(&net, &data, &mut memory_provider())
        .unwrap();
        assert_eq!(
            multi.external_descriptors().iter().flatten().count(),
            2,
            "both members are store-backed"
        );
        let per_class = MonitorSpec::new(
            4,
            MonitorKind::pattern_with(ThresholdPolicy::Sign, PatternBackend::Store, 0),
        )
        .per_class(2)
        .build_with_sources(&net, &data, &mut memory_provider())
        .unwrap();
        assert_eq!(per_class.external_descriptors().iter().flatten().count(), 2);
        for x in &data {
            assert!(!multi.warns(&net, x).unwrap());
            assert!(!per_class.warns(&net, x).unwrap());
        }
    }

    #[test]
    fn source_kind_mismatches_are_typed() {
        let net = net();
        let data = train_data(16);
        // Store backend without sources.
        let spec = MonitorSpec::new(
            4,
            MonitorKind::pattern_with(ThresholdPolicy::Sign, PatternBackend::Store, 0),
        );
        assert!(matches!(
            spec.build(&net, &data).unwrap_err(),
            MonitorError::InvalidConfig(_)
        ));
        // Sources with a non-store pattern backend.
        let spec = MonitorSpec::new(4, MonitorKind::pattern());
        assert!(spec
            .build_with_sources(&net, &data, &mut memory_provider())
            .is_err());
        // Sources with min-max.
        let spec = MonitorSpec::new(4, MonitorKind::min_max());
        assert!(spec
            .build_with_sources(&net, &data, &mut memory_provider())
            .is_err());
    }

    #[test]
    fn mount_requires_data_free_policies() {
        let net = net();
        // Quantile thresholds need data: mount must refuse.
        let spec = MonitorSpec::new(4, MonitorKind::interval(2));
        let err = spec
            .mount_with_sources(&net, &mut memory_provider())
            .unwrap_err();
        assert!(matches!(err, MonitorError::InvalidConfig(_)), "{err}");
        // Sign thresholds mount fine (empty set: everything warns).
        let spec = MonitorSpec::new(
            4,
            MonitorKind::pattern_with(ThresholdPolicy::Sign, PatternBackend::Store, 0),
        );
        let m = spec
            .mount_with_sources(&net, &mut memory_provider())
            .unwrap();
        assert!(m.warns(&net, &[0.1, 0.2, 0.3]).unwrap());
        // Min-max cannot mount.
        let spec = MonitorSpec::new(4, MonitorKind::min_max());
        assert!(spec
            .mount_with_sources(&net, &mut memory_provider())
            .is_err());
    }

    #[test]
    fn operation_time_absorption_enlarges_the_monitor() {
        let net = net();
        let data = train_data(32);
        let spec = MonitorSpec::new(
            4,
            MonitorKind::pattern_with(ThresholdPolicy::Sign, PatternBackend::Store, 0),
        );
        let m = spec
            .build_with_sources(&net, &data, &mut memory_provider())
            .unwrap();
        // Find an input the monitor warns on.
        let mut rng = Prng::seed(77);
        let novel = loop {
            let probe = rng.uniform_vec(3, -3.0, 3.0);
            if m.warns(&net, &probe).unwrap() {
                break probe;
            }
        };
        // Shared absorption (through &self, as the serving engine does)
        // makes it a member without a rebuild.
        assert_eq!(m.absorb_operation(&net, &novel).unwrap(), 1);
        assert!(!m.warns(&net, &novel).unwrap());
        assert_eq!(m.absorb_operation(&net, &novel).unwrap(), 0, "dedup");
        m.commit_external_sources().unwrap();
        // In-memory monitors take the &mut path instead.
        let mut in_mem = MonitorSpec::new(4, MonitorKind::pattern())
            .build(&net, &data)
            .unwrap();
        assert!(in_mem.absorb_operation(&net, &novel).is_err());
        in_mem.absorb_mut(&net, &novel).unwrap();
        assert!(!in_mem.warns(&net, &novel).unwrap());
    }

    #[test]
    fn display_names_the_composition() {
        let net = net();
        let data = train_data(24);
        let single = MonitorSpec::new(4, MonitorKind::min_max())
            .build(&net, &data)
            .unwrap();
        assert!(single.to_string().contains("min-max"));
        let multi = MonitorSpec::multi_layer(
            vec![WatchedLayer::whole(2), WatchedLayer::whole(4)],
            MonitorKind::min_max(),
            Vote::All,
        )
        .build(&net, &data)
        .unwrap();
        assert!(multi.to_string().contains("multi-layer"));
        let pc = MonitorSpec::new(4, MonitorKind::min_max())
            .per_class(2)
            .build(&net, &data)
            .unwrap();
        assert!(pc.to_string().contains("per-class"));
    }
}
