//! The perturbation estimate of Definition 1.

use crate::error::MonitorError;
use napmon_absint::{propagate::Propagator, BoxBounds, Domain};
use napmon_nn::Network;

/// Computes the paper's `pe^G_k(v_tr, kp, Δ)`:
/// sound per-neuron bounds `⟨(l_1,u_1),…,(l_{d_k},u_{d_k})⟩` at boundary `k`
/// over all perturbations `δ` with `|δ_j| ≤ Δ` applied at the output of
/// layer `kp` (with `kp = 0` meaning the raw input).
///
/// The guarantee (Definition 1, eq. 1): for every `v̆` with
/// `|v̆_j − G^{kp}_j(v_tr)| ≤ Δ`, each component of `G^{kp+1→k}(v̆)` lies in
/// `[l_j, u_j]`.
///
/// # Errors
///
/// Returns [`MonitorError::InvalidConfig`] if `kp >= k` or `k` exceeds the
/// network depth, [`MonitorError::DimensionMismatch`] if `v_tr` has the
/// wrong dimension, and `InvalidConfig` for negative `Δ`.
///
/// ```
/// use napmon_core::perturbation_estimate;
/// use napmon_absint::Domain;
/// use napmon_nn::{Activation, LayerSpec, Network};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = Network::seeded(5, 2, &[LayerSpec::dense(3, Activation::Relu)]);
/// let pe = perturbation_estimate(&net, &[0.5, -0.5], 0, 2, 0.1, Domain::Box)?;
/// // The unperturbed image is inside its own estimate.
/// let y = net.forward_prefix(&[0.5, -0.5], 2);
/// assert!(pe.contains(&y));
/// # Ok(())
/// # }
/// ```
pub fn perturbation_estimate(
    net: &Network,
    v_tr: &[f64],
    kp: usize,
    k: usize,
    delta: f64,
    domain: Domain,
) -> Result<BoxBounds, MonitorError> {
    let prop = Propagator::new(net, domain);
    perturbation_estimate_with(&prop, v_tr, kp, k, delta)
}

/// Like [`perturbation_estimate`], reusing a cached [`Propagator`].
///
/// Monitor construction calls this once per training sample; caching the
/// propagator's affine views across samples is what keeps robust
/// construction `O(|Dtr| · network)` instead of re-extracting every layer.
///
/// # Errors
///
/// Same conditions as [`perturbation_estimate`].
pub fn perturbation_estimate_with(
    prop: &Propagator<'_>,
    v_tr: &[f64],
    kp: usize,
    k: usize,
    delta: f64,
) -> Result<BoxBounds, MonitorError> {
    let net = prop.network();
    if k > net.num_layers() || kp >= k {
        return Err(MonitorError::InvalidConfig(format!(
            "perturbation estimate needs 0 <= kp < k <= {}, got kp={kp}, k={k}",
            net.num_layers()
        )));
    }
    if delta < 0.0 || !delta.is_finite() {
        return Err(MonitorError::InvalidConfig(format!(
            "delta must be finite and non-negative, got {delta}"
        )));
    }
    if v_tr.len() != net.input_dim() {
        return Err(MonitorError::DimensionMismatch {
            context: "perturbation estimate input".into(),
            expected: net.input_dim(),
            actual: v_tr.len(),
        });
    }
    let at_kp = net.forward_prefix(v_tr, kp);
    let input = BoxBounds::from_center_radius(&at_kp, delta);
    Ok(prop.bounds(kp, k, &input))
}

#[cfg(test)]
mod tests {
    use super::*;
    use napmon_nn::{Activation, LayerSpec};
    use napmon_tensor::Prng;

    fn net() -> Network {
        Network::seeded(
            9,
            3,
            &[
                LayerSpec::dense(8, Activation::Relu),
                LayerSpec::dense(6, Activation::Relu),
                LayerSpec::dense(2, Activation::Identity),
            ],
        )
    }

    #[test]
    fn validates_ranges() {
        let net = net();
        let x = [0.0, 0.0, 0.0];
        assert!(perturbation_estimate(&net, &x, 2, 2, 0.1, Domain::Box).is_err());
        assert!(perturbation_estimate(&net, &x, 0, 99, 0.1, Domain::Box).is_err());
        assert!(perturbation_estimate(&net, &x, 0, 2, -0.1, Domain::Box).is_err());
        assert!(perturbation_estimate(&net, &[0.0], 0, 2, 0.1, Domain::Box).is_err());
        assert!(perturbation_estimate(&net, &x, 0, 2, 0.1, Domain::Box).is_ok());
    }

    #[test]
    fn definition_1_guarantee_at_input_layer() {
        // Sample perturbed inputs; their layer-k images must stay enclosed.
        let net = net();
        let mut rng = Prng::seed(51);
        let v = [0.2, -0.1, 0.5];
        let delta = 0.08;
        let k = net.num_layers();
        let pe = perturbation_estimate(&net, &v, 0, k, delta, Domain::Box).unwrap();
        for _ in 0..500 {
            let pert: Vec<f64> = v.iter().map(|&c| c + rng.uniform(-delta, delta)).collect();
            assert!(pe.contains(&net.forward_prefix(&pert, k)));
        }
    }

    #[test]
    fn definition_1_guarantee_at_hidden_boundary() {
        // Perturbation injected at boundary kp=2 (after first ReLU).
        let net = net();
        let mut rng = Prng::seed(52);
        let v = [0.3, 0.3, -0.4];
        let (kp, k, delta) = (2, 4, 0.05);
        let pe = perturbation_estimate(&net, &v, kp, k, delta, Domain::Box).unwrap();
        let at_kp = net.forward_prefix(&v, kp);
        for _ in 0..500 {
            let pert: Vec<f64> = at_kp
                .iter()
                .map(|&c| c + rng.uniform(-delta, delta))
                .collect();
            assert!(pe.contains(&net.forward_range(&pert, kp, k)));
        }
    }

    #[test]
    fn zero_delta_estimate_hugs_the_point() {
        let net = net();
        let v = [0.1, 0.9, -0.3];
        let k = 2;
        let pe = perturbation_estimate(&net, &v, 0, k, 0.0, Domain::Box).unwrap();
        let y = net.forward_prefix(&v, k);
        assert!(pe.contains(&y));
        assert!(pe.mean_width() < 1e-10, "width {}", pe.mean_width());
    }

    #[test]
    fn estimates_grow_with_delta() {
        let net = net();
        let v = [0.4, -0.2, 0.0];
        let k = net.num_layers();
        let small = perturbation_estimate(&net, &v, 0, k, 0.01, Domain::Box).unwrap();
        let large = perturbation_estimate(&net, &v, 0, k, 0.1, Domain::Box).unwrap();
        assert!(large.encloses(&small));
        assert!(large.mean_width() > small.mean_width());
    }

    #[test]
    fn all_domains_agree_on_containment() {
        let net = net();
        let v = [0.25, 0.5, -0.25];
        let k = net.num_layers();
        let mut rng = Prng::seed(53);
        for domain in Domain::ALL {
            let pe = perturbation_estimate(&net, &v, 0, k, 0.06, domain).unwrap();
            for _ in 0..200 {
                let pert: Vec<f64> = v.iter().map(|&c| c + rng.uniform(-0.06, 0.06)).collect();
                assert!(pe.contains(&net.forward(&pert)), "{domain}");
            }
        }
    }
}
