//! Quantitative monitor scores.
//!
//! The paper's related work (Lukina et al., "Into the Unknown") replaces
//! the binary in/out decision with a *quantitative* measure of how far an
//! observation sits from the recorded abstraction. This module adds such
//! scores on top of the qualitative monitors:
//!
//! - for a [`MinMaxMonitor`], the largest per-neuron distance outside the
//!   recorded box (`0.0` means inside);
//! - for the pattern families, the minimum Hamming distance between the
//!   observed word and the recorded pattern set.
//!
//! Scores enable threshold sweeps and ROC analysis (see
//! `napmon-eval::metrics::roc`), which the binary verdicts cannot express.

use crate::builder::AnyMonitor;
use crate::interval_pattern::IntervalPatternMonitor;
use crate::minmax::MinMaxMonitor;
use crate::monitor::Monitor;
use crate::pattern::PatternMonitor;

/// A monitor that can quantify *how far* outside the abstraction an
/// observation lies (0.0 = inside; larger = farther out).
pub trait ScoredMonitor: Monitor {
    /// Out-of-abstraction score of an extracted feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the monitor dimension.
    fn score_features(&self, features: &[f64]) -> f64;
}

impl ScoredMonitor for MinMaxMonitor {
    fn score_features(&self, features: &[f64]) -> f64 {
        assert_eq!(features.len(), self.lo().len(), "score: dimension mismatch");
        let mut worst = 0.0f64;
        for (j, &v) in features.iter().enumerate() {
            let below = self.lo()[j] - v;
            let above = v - self.hi()[j];
            worst = worst.max(below).max(above);
        }
        worst.max(0.0)
    }
}

impl ScoredMonitor for PatternMonitor {
    /// Minimum Hamming distance from the observed word to the pattern set
    /// (in bits).
    fn score_features(&self, features: &[f64]) -> f64 {
        let word = self.abstract_bitword(features);
        for tau in 0..=word.len() {
            if self.contains_within_packed(&word, tau) {
                return tau as f64;
            }
        }
        word.len() as f64
    }
}

impl ScoredMonitor for IntervalPatternMonitor {
    /// Minimum Hamming distance in the bit encoding of the symbol word.
    fn score_features(&self, features: &[f64]) -> f64 {
        let word = self.abstract_bitword(features);
        for tau in 0..=word.len() {
            if self.contains_word_within(&word, tau) {
                return tau as f64;
            }
        }
        word.len() as f64
    }
}

impl ScoredMonitor for AnyMonitor {
    fn score_features(&self, features: &[f64]) -> f64 {
        match self {
            AnyMonitor::MinMax(m) => m.score_features(features),
            AnyMonitor::Pattern(m) => m.score_features(features),
            AnyMonitor::Interval(m) => m.score_features(features),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{MonitorBuilder, MonitorKind};
    use crate::feature::FeatureExtractor;
    use napmon_nn::{Activation, LayerSpec, Network};
    use napmon_tensor::Prng;

    fn net() -> Network {
        Network::seeded(81, 2, &[LayerSpec::dense(4, Activation::Relu)])
    }

    #[test]
    fn minmax_score_is_zero_inside_and_grows_outside() {
        let n = net();
        let fx = FeatureExtractor::new(&n, 2).unwrap();
        let mut m = MinMaxMonitor::empty(fx);
        m.absorb_point(&[0.0, 0.0, 0.0, 0.0]);
        m.absorb_point(&[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(m.score_features(&[0.5, 0.5, 0.5, 0.5]), 0.0);
        assert!((m.score_features(&[1.5, 0.5, 0.5, 0.5]) - 0.5).abs() < 1e-12);
        assert!((m.score_features(&[-2.0, 0.5, 0.5, 0.5]) - 2.0).abs() < 1e-12);
        // Score increases with distance.
        assert!(m.score_features(&[3.0, 0.0, 0.0, 0.0]) > m.score_features(&[2.0, 0.0, 0.0, 0.0]));
    }

    #[test]
    fn pattern_score_counts_flipped_bits() {
        let n = net();
        let fx = FeatureExtractor::new(&n, 2).unwrap();
        let mut m =
            PatternMonitor::empty(fx, vec![0.0; 4], crate::pattern::PatternBackend::Bdd).unwrap();
        m.absorb_point(&[1.0, 1.0, 1.0, 1.0]); // word 1111
        assert_eq!(m.score_features(&[1.0, 1.0, 1.0, 1.0]), 0.0);
        assert_eq!(m.score_features(&[-1.0, 1.0, 1.0, 1.0]), 1.0);
        assert_eq!(m.score_features(&[-1.0, -1.0, 1.0, 1.0]), 2.0);
        assert_eq!(m.score_features(&[-1.0, -1.0, -1.0, -1.0]), 4.0);
    }

    #[test]
    fn interval_score_counts_encoded_bits() {
        let n = net();
        let fx = FeatureExtractor::new(&n, 2).unwrap();
        let mut m = IntervalPatternMonitor::empty(fx, 2, vec![vec![0.0, 1.0, 2.0]; 4]).unwrap();
        m.absorb_point(&[0.5, 0.5, 0.5, 0.5]); // all symbol 01
        assert_eq!(m.score_features(&[0.5, 0.5, 0.5, 0.5]), 0.0);
        // One neuron to symbol 00 flips one bit.
        assert_eq!(m.score_features(&[-0.5, 0.5, 0.5, 0.5]), 1.0);
        // One neuron to symbol 10 flips two bits (01 -> 10).
        assert_eq!(m.score_features(&[1.5, 0.5, 0.5, 0.5]), 2.0);
    }

    #[test]
    fn score_zero_iff_no_warning() {
        let n = net();
        let mut rng = Prng::seed(83);
        let data: Vec<Vec<f64>> = (0..32).map(|_| rng.uniform_vec(2, -1.0, 1.0)).collect();
        for kind in [
            MonitorKind::min_max(),
            MonitorKind::pattern(),
            MonitorKind::interval(2),
        ] {
            let m = MonitorBuilder::new(&n, 2).build(kind, &data).unwrap();
            for _ in 0..100 {
                let probe = rng.uniform_vec(2, -2.0, 2.0);
                let features = m.extractor().features(&n, &probe).unwrap();
                let warns = m.warns_features(&features);
                let score = m.score_features(&features);
                assert_eq!(warns, score > 0.0, "score/warning disagree");
            }
        }
    }
}
