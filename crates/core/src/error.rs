//! Error type for monitor construction and queries.

use std::fmt;

/// Errors returned by fallible monitor operations.
///
/// Marked `#[non_exhaustive]`: future spec/artifact format versions may
/// add variants without breaking downstream matches.
#[derive(Debug)]
#[non_exhaustive]
pub enum MonitorError {
    /// A vector has the wrong dimension for the network or monitor.
    DimensionMismatch {
        /// What was being checked.
        context: String,
        /// Expected dimension.
        expected: usize,
        /// Provided dimension.
        actual: usize,
    },
    /// The monitor cannot be built from an empty training set.
    EmptyTrainingSet,
    /// A configuration value is invalid (layer out of range, kp ≥ k, …).
    InvalidConfig(String),
    /// An external pattern source (e.g. an on-disk store) failed or is
    /// unusable in the requested role.
    ExternalSource(String),
}

impl fmt::Display for MonitorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MonitorError::DimensionMismatch {
                context,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "dimension mismatch in {context}: expected {expected}, got {actual}"
                )
            }
            MonitorError::EmptyTrainingSet => {
                write!(f, "monitor construction needs a non-empty training set")
            }
            MonitorError::InvalidConfig(msg) => write!(f, "invalid monitor configuration: {msg}"),
            MonitorError::ExternalSource(msg) => write!(f, "external pattern source: {msg}"),
        }
    }
}

impl std::error::Error for MonitorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MonitorError::DimensionMismatch {
            context: "query input".into(),
            expected: 4,
            actual: 3,
        };
        assert_eq!(
            e.to_string(),
            "dimension mismatch in query input: expected 4, got 3"
        );
        assert!(MonitorError::EmptyTrainingSet
            .to_string()
            .contains("non-empty"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MonitorError>();
    }
}
