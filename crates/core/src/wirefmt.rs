//! Binary wire encoding for monitor verdicts.
//!
//! `napmon-wire` serves verdicts over a framed TCP protocol; the payload
//! encoding of the core types lives here, next to the types themselves, so
//! the serving layer and any future transport share one definition. The
//! format is little-endian, length-prefixed at every variable-size point,
//! and fully self-delimiting: a decoder either consumes exactly one value
//! or fails with a typed [`WireDecodeError`] — malformed bytes never panic
//! and never read past the buffer (the decoder property tests in
//! `napmon-wire` pin this against arbitrary byte strings).
//!
//! Layout of one [`Verdict`]:
//!
//! ```text
//! u8           warning (0 | 1)
//! u32          violation count
//! per violation:
//!   u8         tag: 0 BelowMin, 1 AboveMax, 2 UnknownPattern
//!   BelowMin / AboveMax:  u32 neuron, f64 value, f64 bound
//!   UnknownPattern:       u32 bit count, ceil(n/8) packed bytes (LSB-first)
//! ```

use crate::monitor::{Verdict, Violation};

/// A decode failure: the bytes do not spell a value of the expected type.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireDecodeError {
    /// The buffer ended before the value did.
    Truncated,
    /// The bytes are structurally invalid for the expected type.
    Malformed(&'static str),
}

impl std::fmt::Display for WireDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireDecodeError::Truncated => write!(f, "truncated value"),
            WireDecodeError::Malformed(what) => write!(f, "malformed value: {what}"),
        }
    }
}

impl std::error::Error for WireDecodeError {}

/// Violation tags on the wire.
const TAG_BELOW_MIN: u8 = 0;
const TAG_ABOVE_MAX: u8 = 1;
const TAG_UNKNOWN_PATTERN: u8 = 2;

/// A decoded count no honest peer would send; bounds speculative
/// allocation before the buffer length proves the count false.
const SANE_COUNT: usize = 1 << 24;

// ---- primitives ---------------------------------------------------------

/// Appends a `u32` little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its little-endian IEEE-754 bits.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Reads a `u32`, advancing `bytes`.
///
/// # Errors
///
/// [`WireDecodeError::Truncated`] if fewer than four bytes remain.
pub fn get_u32(bytes: &mut &[u8]) -> Result<u32, WireDecodeError> {
    let (head, rest) = bytes
        .split_first_chunk::<4>()
        .ok_or(WireDecodeError::Truncated)?;
    *bytes = rest;
    Ok(u32::from_le_bytes(*head))
}

/// Reads a `u64`, advancing `bytes`.
///
/// # Errors
///
/// [`WireDecodeError::Truncated`] if fewer than eight bytes remain.
pub fn get_u64(bytes: &mut &[u8]) -> Result<u64, WireDecodeError> {
    let (head, rest) = bytes
        .split_first_chunk::<8>()
        .ok_or(WireDecodeError::Truncated)?;
    *bytes = rest;
    Ok(u64::from_le_bytes(*head))
}

/// Reads an `f64` from its little-endian IEEE-754 bits, advancing `bytes`.
///
/// # Errors
///
/// [`WireDecodeError::Truncated`] if fewer than eight bytes remain.
pub fn get_f64(bytes: &mut &[u8]) -> Result<f64, WireDecodeError> {
    Ok(f64::from_bits(get_u64(bytes)?))
}

fn get_u8(bytes: &mut &[u8]) -> Result<u8, WireDecodeError> {
    let (&head, rest) = bytes.split_first().ok_or(WireDecodeError::Truncated)?;
    *bytes = rest;
    Ok(head)
}

// ---- feature vectors ----------------------------------------------------

/// Appends a feature/input vector: `u32` length then the raw `f64`s.
pub fn put_features(out: &mut Vec<u8>, features: &[f64]) {
    put_u32(out, features.len() as u32);
    for &x in features {
        put_f64(out, x);
    }
}

/// Reads a vector written by [`put_features`], advancing `bytes`.
///
/// # Errors
///
/// [`WireDecodeError::Truncated`] if the declared length outruns the
/// buffer.
pub fn get_features(bytes: &mut &[u8]) -> Result<Vec<f64>, WireDecodeError> {
    let n = get_u32(bytes)? as usize;
    // Cheap length proof before allocating: each element needs 8 bytes.
    if bytes.len() / 8 < n {
        return Err(WireDecodeError::Truncated);
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_f64(bytes)?);
    }
    Ok(out)
}

// ---- verdicts -----------------------------------------------------------

/// Appends one verdict (see the [module docs](self) for the layout).
pub fn put_verdict(out: &mut Vec<u8>, verdict: &Verdict) {
    out.push(u8::from(verdict.warning));
    put_u32(out, verdict.violations.len() as u32);
    for violation in &verdict.violations {
        match violation {
            Violation::BelowMin {
                neuron,
                value,
                bound,
            } => {
                out.push(TAG_BELOW_MIN);
                put_u32(out, *neuron as u32);
                put_f64(out, *value);
                put_f64(out, *bound);
            }
            Violation::AboveMax {
                neuron,
                value,
                bound,
            } => {
                out.push(TAG_ABOVE_MAX);
                put_u32(out, *neuron as u32);
                put_f64(out, *value);
                put_f64(out, *bound);
            }
            Violation::UnknownPattern { word } => {
                out.push(TAG_UNKNOWN_PATTERN);
                put_u32(out, word.len() as u32);
                let mut byte = 0u8;
                for (i, &bit) in word.iter().enumerate() {
                    byte |= u8::from(bit) << (i % 8);
                    if i % 8 == 7 {
                        out.push(byte);
                        byte = 0;
                    }
                }
                if word.len() % 8 != 0 {
                    out.push(byte);
                }
            }
        }
    }
}

/// Reads one verdict written by [`put_verdict`], advancing `bytes`.
///
/// # Errors
///
/// [`WireDecodeError::Truncated`] on a short buffer,
/// [`WireDecodeError::Malformed`] on an unknown violation tag or a
/// non-boolean warning byte.
pub fn get_verdict(bytes: &mut &[u8]) -> Result<Verdict, WireDecodeError> {
    let warning = match get_u8(bytes)? {
        0 => false,
        1 => true,
        _ => return Err(WireDecodeError::Malformed("warning byte is not 0 or 1")),
    };
    let count = get_u32(bytes)? as usize;
    if count > SANE_COUNT {
        return Err(WireDecodeError::Malformed("violation count out of range"));
    }
    let mut violations = Vec::with_capacity(count.min(bytes.len()));
    for _ in 0..count {
        let violation = match get_u8(bytes)? {
            TAG_BELOW_MIN => Violation::BelowMin {
                neuron: get_u32(bytes)? as usize,
                value: get_f64(bytes)?,
                bound: get_f64(bytes)?,
            },
            TAG_ABOVE_MAX => Violation::AboveMax {
                neuron: get_u32(bytes)? as usize,
                value: get_f64(bytes)?,
                bound: get_f64(bytes)?,
            },
            TAG_UNKNOWN_PATTERN => {
                let bits = get_u32(bytes)? as usize;
                let len = bits.div_ceil(8);
                if bytes.len() < len {
                    return Err(WireDecodeError::Truncated);
                }
                let (packed, rest) = bytes.split_at(len);
                *bytes = rest;
                let word = (0..bits)
                    .map(|i| packed[i / 8] >> (i % 8) & 1 == 1)
                    .collect();
                Violation::UnknownPattern { word }
            }
            _ => return Err(WireDecodeError::Malformed("unknown violation tag")),
        };
        violations.push(violation);
    }
    if warning == violations.is_empty() {
        // `Verdict::ok`/`Verdict::warn` are the only shapes the encoder
        // produces; anything else is a forged buffer.
        return Err(WireDecodeError::Malformed(
            "warning flag disagrees with violation count",
        ));
    }
    Ok(Verdict {
        warning,
        violations,
    })
}

/// Appends a batch of verdicts: `u32` count then each verdict.
pub fn put_verdicts(out: &mut Vec<u8>, verdicts: &[Verdict]) {
    put_u32(out, verdicts.len() as u32);
    for verdict in verdicts {
        put_verdict(out, verdict);
    }
}

/// Reads a batch written by [`put_verdicts`], advancing `bytes`.
///
/// # Errors
///
/// Any [`get_verdict`] error.
pub fn get_verdicts(bytes: &mut &[u8]) -> Result<Vec<Verdict>, WireDecodeError> {
    let count = get_u32(bytes)? as usize;
    // A verdict is at least 5 bytes; reject counts the buffer cannot hold.
    if bytes.len() / 5 < count {
        return Err(WireDecodeError::Truncated);
    }
    // An in-memory `Verdict` is ~10x its minimum wire size, so a hostile
    // count that passes the length proof could still reserve far more
    // than the buffer's worth of memory up front — cap the speculative
    // reservation and let the vector grow with what actually decodes.
    let mut out = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        out.push(get_verdict(bytes)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_verdicts() -> Vec<Verdict> {
        vec![
            Verdict::ok(),
            Verdict::warn(vec![Violation::BelowMin {
                neuron: 3,
                value: -1.5,
                bound: 0.0,
            }]),
            Verdict::warn(vec![
                Violation::AboveMax {
                    neuron: 7,
                    value: 9.25,
                    bound: 2.0,
                },
                Violation::UnknownPattern {
                    word: (0..13).map(|i| i % 3 == 0).collect(),
                },
            ]),
        ]
    }

    #[test]
    fn verdict_round_trip_is_lossless() {
        for verdict in sample_verdicts() {
            let mut buf = Vec::new();
            put_verdict(&mut buf, &verdict);
            let mut bytes = buf.as_slice();
            assert_eq!(get_verdict(&mut bytes).unwrap(), verdict);
            assert!(bytes.is_empty(), "decoder left {} bytes", bytes.len());
        }
    }

    #[test]
    fn verdict_batch_round_trip_is_lossless() {
        let verdicts = sample_verdicts();
        let mut buf = Vec::new();
        put_verdicts(&mut buf, &verdicts);
        let mut bytes = buf.as_slice();
        assert_eq!(get_verdicts(&mut bytes).unwrap(), verdicts);
        assert!(bytes.is_empty());
    }

    #[test]
    fn features_round_trip_is_lossless() {
        let features = vec![0.0, -1.25, f64::MAX, f64::MIN_POSITIVE, 3.5];
        let mut buf = Vec::new();
        put_features(&mut buf, &features);
        let mut bytes = buf.as_slice();
        assert_eq!(get_features(&mut bytes).unwrap(), features);
        assert!(bytes.is_empty());
    }

    #[test]
    fn truncated_buffers_fail_typed() {
        let mut buf = Vec::new();
        put_verdict(&mut buf, &sample_verdicts()[2]);
        for cut in 0..buf.len() {
            let mut bytes = &buf[..cut];
            assert!(
                get_verdict(&mut bytes).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn forged_counts_fail_without_allocating() {
        // A count of u32::MAX with a 4-byte body must fail on the length
        // proof, not attempt a 4-billion-element allocation.
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX);
        put_u32(&mut buf, 7);
        let mut bytes = buf.as_slice();
        assert_eq!(get_features(&mut bytes), Err(WireDecodeError::Truncated));
        let mut bytes = buf.as_slice();
        assert_eq!(get_verdicts(&mut bytes), Err(WireDecodeError::Truncated));
    }

    #[test]
    fn inconsistent_warning_flag_is_malformed() {
        let mut buf = Vec::new();
        put_verdict(&mut buf, &Verdict::ok());
        buf[0] = 1; // claim a warning with zero violations
        let mut bytes = buf.as_slice();
        assert!(matches!(
            get_verdict(&mut bytes),
            Err(WireDecodeError::Malformed(_))
        ));
        buf[0] = 2; // not a boolean at all
        let mut bytes = buf.as_slice();
        assert!(matches!(
            get_verdict(&mut bytes),
            Err(WireDecodeError::Malformed(_))
        ));
    }
}
