//! Provably-robust runtime monitors of neuron activation patterns.
//!
//! This crate is the primary contribution of *"Provably-Robust Runtime
//! Monitoring of Neuron Activation Patterns"* (Cheng, DATE 2021). A monitor
//! watches the neuron values of one network boundary (`G^k` in the paper's
//! notation) and answers, per operational input, *"is this activation
//! pattern consistent with anything seen over the training set?"* — a
//! warning means provably **no** training input produced a close-by
//! feature vector, which is the sound out-of-distribution signal the paper
//! builds on.
//!
//! Three monitor families are provided, each in a *standard* and a *robust*
//! construction:
//!
//! | family | abstraction | reference |
//! |---|---|---|
//! | [`MinMaxMonitor`] | per-neuron `[min, max]` over the training set | Henzinger et al., ECAI 2020 |
//! | [`PatternMonitor`] | Boolean on/off words in a BDD (or hash set) | Cheng et al., DATE 2019 |
//! | [`IntervalPatternMonitor`] | multi-bit interval words in a BDD | **this paper**, §III-C |
//!
//! The *robust* construction (§III-B) replaces each training feature vector
//! with the **perturbation estimate** of Definition 1
//! ([`perturbation_estimate`]): a sound per-neuron enclosure of every value
//! the monitored layer can take when the input (or an intermediate layer
//! `kp`) is perturbed by at most `Δ` per dimension. The abstraction then
//! absorbs the whole enclosure — min-max bounds widen, Boolean bits become
//! don't-cares, interval symbols become symbol *sets* — so that, by
//! construction:
//!
//! > **Lemma 1.** If the robust monitor warns on `v_op`, then no training
//! > input `v_tr` satisfies `|G^{kp}_j(v_op) − G^{kp}_j(v_tr)| ≤ Δ` for all
//! > `j`.
//!
//! Equivalently: inputs `Δ`-close to the training data (at boundary `kp`)
//! never warn, which is exactly the false-positive mechanism the paper
//! eliminates. Property tests in this crate check Lemma 1 directly.
//!
//! # Example
//!
//! Construction is *spec-first*: a [`MonitorSpec`] declares the whole
//! build as serializable data (family, boundary, robustness, composition),
//! and [`MonitorSpec::build`] runs the paper's construction loop. The
//! imperative [`MonitorBuilder`] remains as a thin shim that lowers to a
//! spec.
//!
//! ```
//! use napmon_core::{Monitor, MonitorKind, MonitorSpec};
//! use napmon_absint::Domain;
//! use napmon_nn::{Activation, LayerSpec, Network};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = Network::seeded(7, 4, &[
//!     LayerSpec::dense(8, Activation::Relu),
//!     LayerSpec::dense(2, Activation::Identity),
//! ]);
//! let train: Vec<Vec<f64>> = (0..32)
//!     .map(|i| (0..4).map(|j| ((i + j) % 8) as f64 / 8.0).collect())
//!     .collect();
//!
//! // Robust on-off monitor at the post-ReLU boundary (layer 2),
//! // tolerating Δ=0.05 input perturbation — declared as data.
//! let spec = MonitorSpec::new(2, MonitorKind::pattern()).robust(0.05, 0, Domain::Box);
//! let monitor = spec.build(&net, &train)?;
//!
//! // Lemma 1: training inputs (and anything Δ-close) never warn.
//! for v in &train {
//!     assert!(!monitor.warns(&net, v)?);
//! }
//! # Ok(())
//! # }
//! ```

pub mod builder;
pub mod error;
pub mod feature;
pub mod interval_pattern;
pub mod minmax;
pub mod monitor;
pub mod multi;
pub mod pattern;
pub mod per_class;
pub mod perturb;
pub mod score;
mod sliced;
pub mod source;
pub mod spec;
pub mod wirefmt;

pub use builder::{AnyMonitor, MonitorBuilder, MonitorKind, RobustConfig};
pub use error::MonitorError;
pub use feature::FeatureExtractor;
pub use interval_pattern::{IntervalPatternMonitor, ThresholdPolicy};
pub use minmax::MinMaxMonitor;
pub use monitor::{Monitor, QueryScratch, Verdict, Violation};
pub use multi::{MultiLayerMonitor, Vote};
pub use pattern::{PatternBackend, PatternMonitor};
pub use per_class::PerClassMonitor;
pub use perturb::perturbation_estimate;
pub use score::ScoredMonitor;
pub use source::{
    shared_source, ExternalHandle, MemoryPatternSource, PatternSource, SharedPatternSource,
    SourceDescriptor, SourceProvider,
};
pub use spec::{ComposedMonitor, Composition, MonitorSpec, WatchedLayer, MONITOR_SPEC_VERSION};
