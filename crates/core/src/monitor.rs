//! The common monitor interface and query verdicts.

use crate::error::MonitorError;
use crate::feature::FeatureExtractor;
use napmon_nn::Network;

/// Why a monitor warned about one neuron (or the pattern as a whole).
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// A neuron value fell below the recorded minimum.
    BelowMin {
        /// Monitored-neuron index (position within the feature vector).
        neuron: usize,
        /// Observed value.
        value: f64,
        /// Recorded lower bound.
        bound: f64,
    },
    /// A neuron value rose above the recorded maximum.
    AboveMax {
        /// Monitored-neuron index.
        neuron: usize,
        /// Observed value.
        value: f64,
        /// Recorded upper bound.
        bound: f64,
    },
    /// The abstracted word was not in the recorded pattern set.
    UnknownPattern {
        /// The bit word the observation abstracted to (neuron-major,
        /// most-significant bit first for multi-bit monitors).
        word: Vec<bool>,
    },
}

/// Outcome of one monitor query.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// Whether the monitor raises a warning (the paper's `M(v_op) = true`).
    pub warning: bool,
    /// Supporting evidence; empty when no warning is raised.
    pub violations: Vec<Violation>,
}

impl Verdict {
    /// The all-clear verdict.
    pub fn ok() -> Self {
        Self { warning: false, violations: Vec::new() }
    }

    /// A warning carrying its evidence.
    pub fn warn(violations: Vec<Violation>) -> Self {
        Self { warning: true, violations }
    }
}

/// A runtime monitor over one network boundary.
///
/// Implementations are queried with the *feature vector* (the projected
/// neuron values of the monitored boundary); the provided methods run the
/// network first. Queries never mutate the monitor — in operation the
/// abstraction is frozen, exactly as in the paper.
pub trait Monitor {
    /// The feature extractor describing what this monitor watches.
    fn extractor(&self) -> &FeatureExtractor;

    /// Full verdict for an already-extracted feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the monitor's feature
    /// dimension.
    fn verdict_features(&self, features: &[f64]) -> Verdict;

    /// Qualitative decision for an already-extracted feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the monitor's feature
    /// dimension.
    fn warns_features(&self, features: &[f64]) -> bool {
        self.verdict_features(features).warning
    }

    /// Runs `net` on `input` and returns the full verdict.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::DimensionMismatch`] if `input` does not
    /// match the network.
    fn verdict(&self, net: &Network, input: &[f64]) -> Result<Verdict, MonitorError> {
        let features = self.extractor().features(net, input)?;
        Ok(self.verdict_features(&features))
    }

    /// Runs `net` on `input` and returns the qualitative decision.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::DimensionMismatch`] if `input` does not
    /// match the network.
    fn warns(&self, net: &Network, input: &[f64]) -> Result<bool, MonitorError> {
        Ok(self.verdict(net, input)?.warning)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_constructors() {
        assert!(!Verdict::ok().warning);
        assert!(Verdict::ok().violations.is_empty());
        let v = Verdict::warn(vec![Violation::BelowMin { neuron: 3, value: -1.0, bound: 0.0 }]);
        assert!(v.warning);
        assert_eq!(v.violations.len(), 1);
    }
}
