//! The common monitor interface and query verdicts.

use crate::error::MonitorError;
use crate::feature::FeatureExtractor;
use napmon_bdd::BitWord;
use napmon_nn::{ForwardScratch, Network};

/// Why a monitor warned about one neuron (or the pattern as a whole).
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// A neuron value fell below the recorded minimum.
    BelowMin {
        /// Monitored-neuron index (position within the feature vector).
        neuron: usize,
        /// Observed value.
        value: f64,
        /// Recorded lower bound.
        bound: f64,
    },
    /// A neuron value rose above the recorded maximum.
    AboveMax {
        /// Monitored-neuron index.
        neuron: usize,
        /// Observed value.
        value: f64,
        /// Recorded upper bound.
        bound: f64,
    },
    /// The abstracted word was not in the recorded pattern set.
    UnknownPattern {
        /// The bit word the observation abstracted to (neuron-major,
        /// most-significant bit first for multi-bit monitors).
        word: Vec<bool>,
    },
}

/// Outcome of one monitor query.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// Whether the monitor raises a warning (the paper's `M(v_op) = true`).
    pub warning: bool,
    /// Supporting evidence; empty when no warning is raised.
    pub violations: Vec<Violation>,
}

impl Verdict {
    /// The all-clear verdict.
    pub fn ok() -> Self {
        Self {
            warning: false,
            violations: Vec::new(),
        }
    }

    /// A warning carrying its evidence.
    pub fn warn(violations: Vec<Violation>) -> Self {
        Self {
            warning: true,
            violations,
        }
    }
}

/// Reusable per-thread buffers for the steady-state query path.
///
/// One scratch holds everything a query needs to touch the heap for:
/// the network's ping-pong forward buffers, the projected feature vector,
/// and the packed abstraction word. [`Monitor::query_batch`] (and the
/// parallel variant) allocate one scratch per worker and reuse it across
/// the whole batch, so per-query heap allocation drops to zero once the
/// buffers have grown — the operational regime the paper's "operation
/// time" monitors run in.
#[derive(Debug, Clone, Default)]
pub struct QueryScratch {
    pub(crate) forward: ForwardScratch,
    pub(crate) features: Vec<f64>,
    pub(crate) word: BitWord,
    /// Per-input abstraction words for [`Monitor::verdict_batch_scratch`]:
    /// pattern monitors abstract the whole batch first, then answer all
    /// memberships against each pattern block while it is cache-hot.
    pub(crate) batch_words: Vec<BitWord>,
    /// Membership answers of the batched kernel, one per input.
    pub(crate) batch_hits: Vec<bool>,
}

impl QueryScratch {
    /// An empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// A runtime monitor over one network boundary.
///
/// Implementations are queried with the *feature vector* (the projected
/// neuron values of the monitored boundary); the provided methods run the
/// network first. Queries never mutate the monitor — in operation the
/// abstraction is frozen, exactly as in the paper.
pub trait Monitor {
    /// The feature extractor describing what this monitor watches.
    fn extractor(&self) -> &FeatureExtractor;

    /// Full verdict for an already-extracted feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the monitor's feature
    /// dimension.
    fn verdict_features(&self, features: &[f64]) -> Verdict;

    /// Like [`Monitor::verdict_features`] but reusing the caller's scratch
    /// buffers, so repeated queries stay allocation-free on the membership
    /// path. The default ignores the scratch; pattern monitors override it.
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the monitor's feature
    /// dimension.
    fn verdict_features_scratch(&self, features: &[f64], scratch: &mut QueryScratch) -> Verdict {
        let _ = scratch;
        self.verdict_features(features)
    }

    /// Qualitative decision for an already-extracted feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the monitor's feature
    /// dimension.
    fn warns_features(&self, features: &[f64]) -> bool {
        self.verdict_features(features).warning
    }

    /// Runs `net` on `input` and returns the full verdict.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::DimensionMismatch`] if `input` does not
    /// match the network.
    fn verdict(&self, net: &Network, input: &[f64]) -> Result<Verdict, MonitorError> {
        let features = self.extractor().features(net, input)?;
        Ok(self.verdict_features(&features))
    }

    /// Runs `net` on `input` and returns the qualitative decision.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::DimensionMismatch`] if `input` does not
    /// match the network.
    fn warns(&self, net: &Network, input: &[f64]) -> Result<bool, MonitorError> {
        Ok(self.verdict(net, input)?.warning)
    }

    /// Runs `net` on `input` through the caller's scratch buffers and
    /// returns the full verdict. Steady state (buffers grown, verdict OK)
    /// performs no heap allocation for dense networks.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::DimensionMismatch`] if `input` does not
    /// match the network.
    fn verdict_scratch(
        &self,
        net: &Network,
        input: &[f64],
        scratch: &mut QueryScratch,
    ) -> Result<Verdict, MonitorError> {
        // The feature buffer is taken out of the scratch for the duration
        // of the call so the monitor can borrow the rest of the scratch
        // mutably alongside it.
        let mut features = std::mem::take(&mut scratch.features);
        let result = self
            .extractor()
            .features_into(net, input, &mut scratch.forward, &mut features)
            .map(|()| self.verdict_features_scratch(&features, scratch));
        scratch.features = features;
        result
    }

    /// Verdicts for a whole batch of inputs through one scratch, appended
    /// to `out` (cleared first). This is the entry point that lets a
    /// backend answer the batch's membership queries *together*: pattern
    /// monitors override it to abstract every input first and then run
    /// the bit-sliced batch kernel, which walks each pattern block once
    /// per batch instead of once per query. The default simply loops
    /// [`Monitor::verdict_scratch`].
    ///
    /// Verdicts are bit-identical to the sequential loop for every
    /// monitor kind and backend (pinned by the differential suites in
    /// `tests/`).
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::DimensionMismatch`] if any input is
    /// malformed; `out` is left empty or partially filled and must not be
    /// interpreted.
    fn verdict_batch_scratch(
        &self,
        net: &Network,
        inputs: &[Vec<f64>],
        scratch: &mut QueryScratch,
        out: &mut Vec<Verdict>,
    ) -> Result<(), MonitorError> {
        out.clear();
        out.reserve(inputs.len());
        for input in inputs {
            out.push(self.verdict_scratch(net, input, scratch)?);
        }
        Ok(())
    }

    /// Verdicts for a whole batch of inputs, sharing one scratch across
    /// the batch (single-threaded).
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::DimensionMismatch`] on the first malformed
    /// input.
    fn query_batch(
        &self,
        net: &Network,
        inputs: &[Vec<f64>],
    ) -> Result<Vec<Verdict>, MonitorError> {
        let mut scratch = QueryScratch::new();
        let mut out = Vec::with_capacity(inputs.len());
        self.verdict_batch_scratch(net, inputs, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// Verdicts for a whole batch, fanned out over all available cores
    /// with one reusable scratch per worker thread.
    ///
    /// Implemented with `std::thread::scope` (the build environment has no
    /// registry access for `rayon`; the chunked scope achieves the same
    /// embarrassingly-parallel split). Results keep input order.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::DimensionMismatch`] if any input is
    /// malformed.
    fn query_batch_parallel(
        &self,
        net: &Network,
        inputs: &[Vec<f64>],
    ) -> Result<Vec<Verdict>, MonitorError>
    where
        Self: Sync,
    {
        self.query_batch_parallel_with(net, inputs, available_threads())
    }

    /// Like [`Monitor::query_batch_parallel`] but with a pinned worker
    /// count, for callers that need the fan-out width under their own
    /// control rather than the machine's — the differential tests pin it
    /// to 1/2/4 to prove scheduling cannot change verdicts. (The
    /// `napmon-serve` engine does its own sharding over long-lived
    /// workers; each shard runs the sequential [`Monitor::verdict_scratch`]
    /// loop this method is proven identical to.)
    ///
    /// `threads == 0` is treated as `1`. Results keep input order and are
    /// bit-identical to a sequential [`Monitor::verdict_scratch`] loop for
    /// every worker count (each worker runs that exact loop on a
    /// contiguous chunk).
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::DimensionMismatch`] if any input is
    /// malformed.
    fn query_batch_parallel_with(
        &self,
        net: &Network,
        inputs: &[Vec<f64>],
        threads: usize,
    ) -> Result<Vec<Verdict>, MonitorError>
    where
        Self: Sync,
    {
        fan_out_batch(inputs, threads, |chunk| self.query_batch(net, chunk))
    }
}

/// Worker count used by the parallelism-defaulted batch APIs.
pub(crate) fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(4)
}

/// Shared fan-out behind every `query_batch_parallel`: chunks `inputs`
/// across `threads` workers via `std::thread::scope`, runs `query_chunk`
/// per worker (each call gets a contiguous sub-slice and allocates its own
/// scratch inside), and restitches results in input order. Falls back to
/// one direct call when parallelism cannot pay for the thread spawns.
pub(crate) fn fan_out_batch<F>(
    inputs: &[Vec<f64>],
    threads: usize,
    query_chunk: F,
) -> Result<Vec<Verdict>, MonitorError>
where
    F: Fn(&[Vec<f64>]) -> Result<Vec<Verdict>, MonitorError> + Sync,
{
    if threads <= 1 || inputs.len() < 2 * threads {
        return query_chunk(inputs);
    }
    let chunk_size = inputs.len().div_ceil(threads);
    let chunk_results: Vec<Result<Vec<Verdict>, MonitorError>> = std::thread::scope(|scope| {
        let query_chunk = &query_chunk;
        let handles: Vec<_> = inputs
            .chunks(chunk_size)
            .map(|chunk| scope.spawn(move || query_chunk(chunk)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("query worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(inputs.len());
    for chunk in chunk_results {
        out.extend(chunk?);
    }
    Ok(out)
}

/// Compile-time proof that every monitor (and the verdict machinery) can
/// be shared across the shard threads of a long-lived serving engine: the
/// `napmon-serve` workers hold monitors behind `Arc` and query them
/// concurrently, which is only sound because queries never mutate the
/// abstraction.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<crate::builder::AnyMonitor>();
    assert_send_sync::<crate::minmax::MinMaxMonitor>();
    assert_send_sync::<crate::pattern::PatternMonitor>();
    assert_send_sync::<crate::interval_pattern::IntervalPatternMonitor>();
    assert_send_sync::<crate::multi::MultiLayerMonitor>();
    assert_send_sync::<crate::per_class::PerClassMonitor>();
    assert_send_sync::<crate::spec::ComposedMonitor>();
    assert_send_sync::<crate::spec::MonitorSpec>();
    assert_send_sync::<Verdict>();
    assert_send_sync::<QueryScratch>();
    assert_send_sync::<MonitorError>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_constructors() {
        assert!(!Verdict::ok().warning);
        assert!(Verdict::ok().violations.is_empty());
        let v = Verdict::warn(vec![Violation::BelowMin {
            neuron: 3,
            value: -1.0,
            bound: 0.0,
        }]);
        assert!(v.warning);
        assert_eq!(v.violations.len(), 1);
    }
}
