//! Weight-initialization schemes.

use crate::{Matrix, Prng};

/// Initialization scheme for a dense weight matrix.
///
/// The variance-scaling schemes take the layer fan-in/fan-out from the
/// matrix shape (`rows` = fan-out, `cols` = fan-in, matching the
/// `y = W x + b` convention used by `napmon-nn`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Init {
    /// All zeros (used for biases).
    Zeros,
    /// Uniform in `[-a, a]`.
    Uniform,
    /// Glorot/Xavier uniform: `a = sqrt(6 / (fan_in + fan_out))`.
    XavierUniform,
    /// He/Kaiming normal: `sigma = sqrt(2 / fan_in)`; the right default in
    /// front of ReLU activations.
    HeNormal,
}

impl Init {
    /// Samples a `rows x cols` weight matrix under this scheme.
    pub fn matrix(self, rng: &mut Prng, rows: usize, cols: usize) -> Matrix {
        match self {
            Init::Zeros => Matrix::zeros(rows, cols),
            Init::Uniform => {
                let a = 0.05;
                Matrix::from_fn(rows, cols, |_, _| rng.uniform(-a, a))
            }
            Init::XavierUniform => {
                let a = (6.0 / (rows + cols) as f64).sqrt();
                Matrix::from_fn(rows, cols, |_, _| rng.uniform(-a, a))
            }
            Init::HeNormal => {
                let sigma = (2.0 / cols.max(1) as f64).sqrt();
                Matrix::from_fn(rows, cols, |_, _| rng.normal(0.0, sigma))
            }
        }
    }

    /// Samples a bias vector of length `n` under this scheme (fan-in 1).
    pub fn vector(self, rng: &mut Prng, n: usize) -> Vec<f64> {
        match self {
            Init::Zeros => vec![0.0; n],
            Init::Uniform => rng.uniform_vec(n, -0.05, 0.05),
            Init::XavierUniform => {
                let a = (6.0 / (n + 1) as f64).sqrt();
                rng.uniform_vec(n, -a, a)
            }
            Init::HeNormal => rng.normal_vec(n, 0.0, (2.0_f64).sqrt()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_is_all_zero() {
        let mut rng = Prng::seed(0);
        let m = Init::Zeros.matrix(&mut rng, 4, 4);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
        assert!(Init::Zeros.vector(&mut rng, 3).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn xavier_bounds_shrink_with_size() {
        let mut rng = Prng::seed(1);
        let small = Init::XavierUniform.matrix(&mut rng, 4, 4);
        let big = Init::XavierUniform.matrix(&mut rng, 512, 512);
        let max_small = small
            .as_slice()
            .iter()
            .fold(0.0_f64, |m, &v| m.max(v.abs()));
        let max_big = big.as_slice().iter().fold(0.0_f64, |m, &v| m.max(v.abs()));
        assert!(max_small <= (6.0 / 8.0_f64).sqrt());
        assert!(max_big <= (6.0 / 1024.0_f64).sqrt());
        assert!(max_big < max_small);
    }

    #[test]
    fn he_normal_variance_tracks_fan_in() {
        let mut rng = Prng::seed(2);
        let m = Init::HeNormal.matrix(&mut rng, 64, 128);
        let n = (m.rows() * m.cols()) as f64;
        let var = m.as_slice().iter().map(|v| v * v).sum::<f64>() / n;
        // Expected variance 2/128 = 0.015625.
        assert!((var - 0.015625).abs() < 0.003, "var {var}");
    }

    #[test]
    fn init_is_deterministic_under_seed() {
        let a = Init::HeNormal.matrix(&mut Prng::seed(9), 8, 8);
        let b = Init::HeNormal.matrix(&mut Prng::seed(9), 8, 8);
        assert_eq!(a, b);
    }
}
