//! Slice-based vector helpers.
//!
//! Vectors throughout the workspace are plain `Vec<f64>` / `&[f64]`; these
//! free functions provide the arithmetic the other crates need without
//! wrapping the data in a newtype (feature vectors flow between crates and
//! into user code, so bare slices keep the API friction-free).

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the lengths differ.
///
/// ```
/// assert_eq!(napmon_tensor::vector::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(
        a.len(),
        b.len(),
        "dot: length mismatch {} vs {}",
        a.len(),
        b.len()
    );
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Elementwise sum `a + b`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(
        a.len(),
        b.len(),
        "add: length mismatch {} vs {}",
        a.len(),
        b.len()
    );
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Elementwise difference `a - b`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(
        a.len(),
        b.len(),
        "sub: length mismatch {} vs {}",
        a.len(),
        b.len()
    );
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// In-place `a += alpha * b`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn axpy(a: &mut [f64], alpha: f64, b: &[f64]) {
    assert_eq!(
        a.len(),
        b.len(),
        "axpy: length mismatch {} vs {}",
        a.len(),
        b.len()
    );
    for (x, y) in a.iter_mut().zip(b) {
        *x += alpha * y;
    }
}

/// Scales a vector in place.
pub fn scale(a: &mut [f64], alpha: f64) {
    for x in a {
        *x *= alpha;
    }
}

/// Euclidean (L2) norm.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Maximum absolute entry (L∞ norm); `0.0` for the empty slice.
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0, |m, &v| m.max(v.abs()))
}

/// L∞ distance between two equal-length slices.
///
/// This is the "closeness" metric of the paper's Lemma 1: two points are
/// `Δ`-close when every coordinate differs by at most `Δ`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn linf_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(
        a.len(),
        b.len(),
        "linf_distance: length mismatch {} vs {}",
        a.len(),
        b.len()
    );
    a.iter().zip(b).fold(0.0, |m, (x, y)| m.max((x - y).abs()))
}

/// Index of the largest entry, breaking ties toward the lower index.
///
/// # Panics
///
/// Panics if the slice is empty.
pub fn argmax(a: &[f64]) -> usize {
    assert!(!a.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &v) in a.iter().enumerate().skip(1) {
        if v > a[best] {
            best = i;
        }
    }
    best
}

/// Numerically-stable softmax.
///
/// # Panics
///
/// Panics if the slice is empty.
pub fn softmax(a: &[f64]) -> Vec<f64> {
    assert!(!a.is_empty(), "softmax of empty slice");
    let max = a.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = a.iter().map(|&v| (v - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.iter().map(|&e| e / sum).collect()
}

/// Clamps every entry of `a` into `[lo[i], hi[i]]`.
///
/// # Panics
///
/// Panics if the lengths differ or any `lo[i] > hi[i]`.
pub fn clamp_into(a: &mut [f64], lo: &[f64], hi: &[f64]) {
    assert_eq!(a.len(), lo.len(), "clamp_into: length mismatch");
    assert_eq!(a.len(), hi.len(), "clamp_into: length mismatch");
    for i in 0..a.len() {
        assert!(lo[i] <= hi[i], "clamp_into: lo[{i}] > hi[{i}]");
        a[i] = a[i].clamp(lo[i], hi[i]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dot_of_orthogonal_vectors_is_zero() {
        assert_eq!(dot(&[1.0, 0.0], &[0.0, 5.0]), 0.0);
    }

    #[test]
    fn add_sub_round_trip() {
        let a = [1.0, -2.0, 3.5];
        let b = [0.5, 0.5, 0.5];
        assert_eq!(sub(&add(&a, &b), &b), a.to_vec());
    }

    #[test]
    fn axpy_matches_add_scaled() {
        let mut a = vec![1.0, 2.0];
        axpy(&mut a, 2.0, &[3.0, -1.0]);
        assert_eq!(a, vec![7.0, 0.0]);
    }

    #[test]
    fn norms_of_unit_vectors() {
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(norm_inf(&[-7.0, 4.0]), 7.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn linf_distance_is_max_coordinate_gap() {
        assert_eq!(linf_distance(&[0.0, 0.0], &[0.5, -2.0]), 2.0);
        assert_eq!(linf_distance(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn argmax_breaks_ties_low() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[5.0]), 0);
    }

    #[test]
    fn softmax_sums_to_one_and_preserves_order() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[0] < p[1] && p[1] < p[2]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&[1.0, 2.0]);
        let b = softmax(&[1001.0, 1002.0]);
        assert!((a[0] - b[0]).abs() < 1e-12);
    }

    #[test]
    fn clamp_into_respects_bounds() {
        let mut a = vec![-5.0, 0.5, 5.0];
        clamp_into(&mut a, &[0.0, 0.0, 0.0], &[1.0, 1.0, 1.0]);
        assert_eq!(a, vec![0.0, 0.5, 1.0]);
    }

    proptest! {
        #[test]
        fn dot_is_symmetric(
            a in proptest::collection::vec(-100.0..100.0f64, 0..16),
        ) {
            let b: Vec<f64> = a.iter().rev().cloned().collect();
            prop_assert_eq!(dot(&a, &b), dot(&b, &a));
        }

        #[test]
        fn linf_distance_triangle_inequality(
            a in proptest::collection::vec(-10.0..10.0f64, 4),
            b in proptest::collection::vec(-10.0..10.0f64, 4),
            c in proptest::collection::vec(-10.0..10.0f64, 4),
        ) {
            prop_assert!(linf_distance(&a, &c) <= linf_distance(&a, &b) + linf_distance(&b, &c) + 1e-12);
        }

        #[test]
        fn softmax_output_is_distribution(
            a in proptest::collection::vec(-50.0..50.0f64, 1..10),
        ) {
            let p = softmax(&a);
            prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
            prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }
}
