//! Deterministic pseudo-random number generation.
//!
//! Every stochastic component of the workspace (weight initialization, data
//! synthesis, training shuffles, perturbation sampling in tests) draws from
//! a [`Prng`] seeded with an explicit `u64`, so that every experiment in
//! `EXPERIMENTS.md` is reproducible bit-for-bit.
//!
//! The generator is a self-contained xoshiro256\*\* seeded through
//! SplitMix64 — the standard construction recommended by its authors. We
//! implement it here instead of depending on `rand` because the monitors
//! need generators that are `Clone + Serialize` and whose streams never
//! change across dependency upgrades (rand 0.10 removed `Clone` from
//! `StdRng` and reshuffled its sampling traits).

use serde::{Deserialize, Serialize};

/// A seeded pseudo-random number generator (xoshiro256\*\*) with the
/// distributions used in this workspace.
///
/// Equal seeds yield equal streams forever: the algorithm is pinned in this
/// crate, not inherited from an external dependency.
///
/// ```
/// use napmon_tensor::Prng;
/// let mut a = Prng::seed(7);
/// let mut b = Prng::seed(7);
/// assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Prng {
    state: [u64; 4],
    /// Cached second output of the Box–Muller transform, stored as bits so
    /// the struct stays `Eq`.
    spare_normal: Option<u64>,
}

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Prng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn seed(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self {
            state,
            spare_normal: None,
        }
    }

    /// Next raw 64-bit output (xoshiro256\*\*).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Derives an independent generator for a named sub-stream.
    ///
    /// Splitting avoids accidental stream sharing when one experiment seeds
    /// several components (data, init, training) from one master seed.
    pub fn split(&mut self, stream: u64) -> Prng {
        Prng::seed(self.next_u64() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Uniform sample in `[0, 1)` with 53 bits of precision.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is non-finite.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo < hi && lo.is_finite() && hi.is_finite(),
            "uniform: bad range [{lo}, {hi})"
        );
        lo + (hi - lo) * self.unit()
    }

    /// Standard normal sample via the Box–Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(bits) = self.spare_normal.take() {
            return f64::from_bits(bits);
        }
        // Box–Muller needs u1 in (0, 1]; unit() yields [0, 1).
        let u1 = 1.0 - self.unit();
        let u2 = self.unit();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some((r * theta.sin()).to_bits());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `sigma < 0`.
    pub fn normal(&mut self, mu: f64, sigma: f64) -> f64 {
        assert!(sigma >= 0.0, "normal: negative sigma {sigma}");
        mu + sigma * self.standard_normal()
    }

    /// Uniform integer in `[0, below)` via rejection-free Lemire reduction.
    ///
    /// # Panics
    ///
    /// Panics if `below == 0`.
    pub fn index(&mut self, below: usize) -> usize {
        assert!(below > 0, "index: empty range");
        // Multiply-shift: maps 64 random bits onto [0, below) with bias
        // below 2^-64 * below — negligible for the sizes used here.
        let wide = (self.next_u64() as u128) * (below as u128);
        (wide >> 64) as usize
    }

    /// Bernoulli sample: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "chance: p={p} outside [0,1]");
        self.unit() < p
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// A vector of `n` uniform samples in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_vec(&mut self, n: usize, lo: f64, hi: f64) -> Vec<f64> {
        (0..n).map(|_| self.uniform(lo, hi)).collect()
    }

    /// A vector of `n` normal samples.
    pub fn normal_vec(&mut self, n: usize, mu: f64, sigma: f64) -> Vec<f64> {
        (0..n).map(|_| self.normal(mu, sigma)).collect()
    }

    /// Samples `k` distinct indices from `[0, n)` (a uniform k-subset),
    /// returned in ascending order.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "sample_indices: k={k} > n={n}");
        let mut all: Vec<usize> = (0..n).collect();
        // Partial Fisher–Yates: the first k slots become the sample.
        for i in 0..k {
            let j = i + self.index(n - i);
            all.swap(i, j);
        }
        let mut picked = all[..k].to_vec();
        picked.sort_unstable();
        picked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = Prng::seed(123);
        let mut b = Prng::seed(123);
        for _ in 0..32 {
            assert_eq!(a.uniform(-1.0, 1.0), b.uniform(-1.0, 1.0));
            assert_eq!(a.standard_normal(), b.standard_normal());
            assert_eq!(a.index(10), b.index(10));
        }
    }

    #[test]
    fn known_first_output_is_stable() {
        // Regression pin: if this changes, every experiment seed changes.
        let mut rng = Prng::seed(0);
        assert_eq!(rng.next_u64(), 11091344671253066420);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Prng::seed(1);
        let mut b = Prng::seed(2);
        let va: Vec<f64> = (0..8).map(|_| a.uniform(0.0, 1.0)).collect();
        let vb: Vec<f64> = (0..8).map(|_| b.uniform(0.0, 1.0)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn split_streams_differ_from_parent_and_each_other() {
        let mut root = Prng::seed(99);
        let mut s1 = root.split(1);
        let mut s2 = root.split(2);
        let a = s1.uniform(0.0, 1.0);
        let b = s2.uniform(0.0, 1.0);
        assert_ne!(a, b);
        assert_ne!(a, root.uniform(0.0, 1.0));
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = Prng::seed(5);
        let _ = a.normal_vec(7, 0.0, 1.0);
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = Prng::seed(5);
        for _ in 0..1000 {
            let v = rng.uniform(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn unit_covers_both_halves() {
        let mut rng = Prng::seed(8);
        let lows = (0..1000).filter(|_| rng.unit() < 0.5).count();
        assert!((400..600).contains(&lows), "lows {lows}");
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = Prng::seed(42);
        let n = 20_000;
        let samples = rng.normal_vec(n, 1.5, 2.0);
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 1.5).abs() < 0.06, "mean {mean}");
        assert!((var - 4.0).abs() < 0.25, "var {var}");
    }

    #[test]
    fn index_is_roughly_uniform() {
        let mut rng = Prng::seed(3);
        let mut counts = [0usize; 5];
        for _ in 0..10_000 {
            counts[rng.index(5)] += 1;
        }
        for &c in &counts {
            assert!((1800..2200).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Prng::seed(11);
        let mut items: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut items);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(items, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn chance_frequency_tracks_p() {
        let mut rng = Prng::seed(77);
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!(
            (hits as f64 / 10_000.0 - 0.25).abs() < 0.02,
            "rate {}",
            hits as f64 / 10_000.0
        );
    }

    #[test]
    fn sample_indices_are_distinct_sorted_in_range() {
        let mut rng = Prng::seed(21);
        for _ in 0..100 {
            let s = rng.sample_indices(20, 7);
            assert_eq!(s.len(), 7);
            assert!(s.windows(2).all(|w| w[0] < w[1]));
            assert!(s.iter().all(|&i| i < 20));
        }
    }

    #[test]
    fn sample_indices_full_set_is_identity() {
        let mut rng = Prng::seed(22);
        assert_eq!(rng.sample_indices(5, 5), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "bad range")]
    fn uniform_rejects_inverted_range() {
        Prng::seed(0).uniform(1.0, 1.0);
    }

    #[test]
    fn serde_round_trip_preserves_stream() {
        let mut a = Prng::seed(13);
        let _ = a.standard_normal();
        let json = serde_json::to_string(&a).unwrap();
        let mut b: Prng = serde_json::from_str(&json).unwrap();
        assert_eq!(a.standard_normal(), b.standard_normal());
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
