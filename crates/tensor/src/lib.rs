//! Dense linear-algebra primitives for the `napmon` workspace.
//!
//! Everything in the workspace operates on `f64` data: networks are small
//! (the paper monitors close-to-output layers of perception networks, and the
//! monitored feature vectors have tens-to-hundreds of dimensions), so a
//! simple row-major [`Matrix`] plus slice-based vector helpers beats pulling
//! in a BLAS. The [`rng`] module wraps a seeded PRNG with the handful of
//! distributions the workspace needs so that every experiment is
//! reproducible from a single `u64` seed.
//!
//! ```
//! use napmon_tensor::{Matrix, vector};
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let y = a.matvec(&[1.0, 1.0]);
//! assert_eq!(y, vec![3.0, 7.0]);
//! assert!((vector::dot(&y, &y) - 58.0).abs() < 1e-12);
//! ```

pub mod init;
pub mod matrix;
pub mod rng;
pub mod stats;
pub mod vector;

pub use matrix::Matrix;
pub use rng::Prng;
