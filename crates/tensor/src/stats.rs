//! Summary statistics over `f64` slices.
//!
//! Used by threshold selection (per-neuron activation quantiles), dataset
//! normalization, and the evaluation harness.

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance; `0.0` for slices with fewer than two elements.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Minimum value; `+inf` for an empty slice.
pub fn min(xs: &[f64]) -> f64 {
    xs.iter().cloned().fold(f64::INFINITY, f64::min)
}

/// Maximum value; `-inf` for an empty slice.
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
}

/// Linear-interpolation quantile, `q` in `[0, 1]`.
///
/// Matches numpy's default (`linear`) method. Sorting happens on a copy.
///
/// # Panics
///
/// Panics if `xs` is empty or `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile q={q} outside [0,1]");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = pos - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// `k` evenly spaced interior quantiles (excluding 0 and 1).
///
/// For `k = 3` this returns the 25th/50th/75th percentiles — exactly the
/// threshold layout a 2-bit interval monitor needs.
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn interior_quantiles(xs: &[f64], k: usize) -> Vec<f64> {
    (1..=k)
        .map(|i| quantile(xs, i as f64 / (k + 1) as f64))
        .collect()
}

/// Histogram of `xs` over `bins` equal-width buckets spanning `[lo, hi]`.
///
/// Out-of-range values clamp into the first/last bucket.
///
/// # Panics
///
/// Panics if `bins == 0` or `lo >= hi`.
pub fn histogram(xs: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<usize> {
    assert!(bins > 0, "histogram: zero bins");
    assert!(lo < hi, "histogram: bad range [{lo}, {hi}]");
    let mut counts = vec![0usize; bins];
    let w = (hi - lo) / bins as f64;
    for &x in xs {
        let b = (((x - lo) / w).floor() as isize).clamp(0, bins as isize - 1) as usize;
        counts[b] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_and_variance_of_known_data() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert_eq!(variance(&xs), 4.0);
        assert_eq!(std_dev(&xs), 2.0);
    }

    #[test]
    fn empty_slice_conventions() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(min(&[]), f64::INFINITY);
        assert_eq!(max(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn quantile_endpoints_are_min_max() {
        let xs = [3.0, 1.0, 2.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 3.0);
        assert_eq!(quantile(&xs, 0.5), 2.0);
    }

    #[test]
    fn quantile_interpolates_linearly() {
        let xs = [0.0, 10.0];
        assert_eq!(quantile(&xs, 0.25), 2.5);
        assert_eq!(quantile(&xs, 0.75), 7.5);
    }

    #[test]
    fn interior_quantiles_are_sorted_quartiles() {
        let xs: Vec<f64> = (0..=100).map(|i| i as f64).collect();
        let qs = interior_quantiles(&xs, 3);
        assert_eq!(qs, vec![25.0, 50.0, 75.0]);
    }

    #[test]
    fn histogram_counts_everything_once() {
        let xs = [-10.0, 0.1, 0.2, 0.5, 0.9, 10.0];
        let h = histogram(&xs, 0.0, 1.0, 2);
        assert_eq!(h.iter().sum::<usize>(), xs.len());
        assert_eq!(h, vec![3, 3]);
    }

    proptest! {
        #[test]
        fn quantile_is_monotone_in_q(
            xs in proptest::collection::vec(-100.0..100.0f64, 1..64),
            q1 in 0.0..1.0f64,
            q2 in 0.0..1.0f64,
        ) {
            let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            prop_assert!(quantile(&xs, lo) <= quantile(&xs, hi));
        }

        #[test]
        fn quantile_is_bounded_by_min_max(
            xs in proptest::collection::vec(-100.0..100.0f64, 1..64),
            q in 0.0..=1.0f64,
        ) {
            let v = quantile(&xs, q);
            prop_assert!(v >= min(&xs) && v <= max(&xs));
        }

        #[test]
        fn variance_is_translation_invariant(
            xs in proptest::collection::vec(-10.0..10.0f64, 2..32),
            shift in -5.0..5.0f64,
        ) {
            let shifted: Vec<f64> = xs.iter().map(|v| v + shift).collect();
            prop_assert!((variance(&xs) - variance(&shifted)).abs() < 1e-9);
        }
    }
}
