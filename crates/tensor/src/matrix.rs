//! Row-major dense matrix.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major `f64` matrix.
///
/// The workspace uses [`Matrix`] for layer weights, Jacobians and zonotope
/// generator matrices. Dimensions are validated eagerly: every constructor
/// and operation panics on mismatched shapes rather than returning garbage,
/// because a shape error here is always a programming error upstream.
///
/// ```
/// use napmon_tensor::Matrix;
/// let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f64);
/// assert_eq!(m[(1, 2)], 5.0);
/// assert_eq!(m.transpose()[(2, 1)], 5.0);
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let len = rows.checked_mul(cols).expect("matrix size overflow");
        Self {
            rows,
            cols,
            data: vec![0.0; len],
        }
    }

    /// Creates a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "from_rows: need at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(
                row.len(),
                cols,
                "from_rows: row {i} has length {} != {cols}",
                row.len()
            );
            data.extend_from_slice(row);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix that owns `data`, interpreted row-major.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_vec: {} elements for {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// The `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        Self::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrows the underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the underlying row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(
            r < self.rows,
            "row {r} out of bounds for {} rows",
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(
            r < self.rows,
            "row {r} out of bounds for {} rows",
            self.rows
        );
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(
            c < self.cols,
            "col {c} out of bounds for {} cols",
            self.cols
        );
        (0..self.rows)
            .map(|r| self.data[r * self.cols + c])
            .collect()
    }

    /// Matrix-vector product `A * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = Vec::new();
        self.matvec_into(x, &mut y);
        y
    }

    /// Matrix-vector product `A * x` written into `y` (resized to
    /// `self.rows()`); the allocation-free primitive behind the monitors'
    /// batched query path.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec_into(&self, x: &[f64], y: &mut Vec<f64>) {
        assert_eq!(
            x.len(),
            self.cols,
            "matvec: vector length {} != cols {}",
            x.len(),
            self.cols
        );
        y.clear();
        y.reserve(self.rows);
        // Row slices are hoisted via chunks_exact so the inner dot product
        // compiles without per-element bounds checks.
        for row in self.data.chunks_exact(self.cols.max(1)) {
            let mut acc = 0.0;
            for (w, xv) in row.iter().zip(x) {
                acc += w * xv;
            }
            y.push(acc);
        }
        // chunks_exact yields nothing for 0-column matrices; pad explicitly.
        y.resize(self.rows, 0.0);
    }

    /// Transposed matrix-vector product `A^T * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()`.
    pub fn matvec_transposed(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(
            x.len(),
            self.rows,
            "matvec_transposed: length {} != rows {}",
            x.len(),
            self.rows
        );
        let mut y = vec![0.0; self.cols];
        if self.cols == 0 {
            return y;
        }
        for (row, &xr) in self.data.chunks_exact(self.cols).zip(x) {
            for (yc, w) in y.iter_mut().zip(row) {
                *yc += w * xr;
            }
        }
        y
    }

    /// Matrix product `self * rhs`.
    ///
    /// Iterates i-k-j (row of `self`, then contraction index, then column
    /// of `rhs`) with both inner slices hoisted, so the innermost loop is a
    /// bounds-check-free axpy over contiguous memory.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        if self.cols == 0 || rhs.cols == 0 {
            return out; // degenerate shapes: chunks_exact needs width > 0
        }
        for (lhs_row, out_row) in self
            .data
            .chunks_exact(self.cols)
            .zip(out.data.chunks_exact_mut(rhs.cols))
        {
            for (&a, rhs_row) in lhs_row.iter().zip(rhs.data.chunks_exact(rhs.cols)) {
                if a == 0.0 {
                    continue;
                }
                for (o, b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.data[c * self.cols + r])
    }

    /// Applies `f` to every entry, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Adds `rhs` scaled by `alpha` in place (`self += alpha * rhs`).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn axpy(&mut self, alpha: f64, rhs: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "axpy: shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
    }

    /// Scales every entry in place.
    pub fn scale(&mut self, alpha: f64) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Fills the matrix with zeros in place.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Iterates over `(row, col, value)` triples in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        let cols = self.cols;
        self.data
            .iter()
            .enumerate()
            .map(move |(i, &v)| (i / cols, i % cols, v))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of {}x{}",
            self.rows,
            self.cols
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:9.4}", self.data[r * self.cols + c])?;
                if c + 1 < self.cols.min(8) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_has_requested_shape() {
        let m = Matrix::zeros(3, 5);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 5);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_rows_round_trips_entries() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "row 1 has length")]
    fn from_rows_rejects_ragged_input() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[1.0]]);
    }

    #[test]
    fn matvec_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, -1.0], &[2.0, 0.5]]);
        assert_eq!(a.matvec(&[3.0, 4.0]), vec![-1.0, 8.0]);
    }

    #[test]
    fn matvec_transposed_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, -1.0, 0.5], &[2.0, 0.5, -3.0]]);
        let x = [3.0, 4.0];
        assert_eq!(a.matvec_transposed(&x), a.transpose().matvec(&x));
    }

    #[test]
    fn identity_is_matmul_neutral() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn transpose_is_involutive() {
        let a = Matrix::from_fn(3, 4, |r, c| (r * 10 + c) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::zeros(2, 2);
        let b = Matrix::identity(2);
        a.axpy(2.5, &b);
        assert_eq!(a[(0, 0)], 2.5);
        assert_eq!(a[(0, 1)], 0.0);
    }

    #[test]
    fn frobenius_norm_of_identity() {
        assert!((Matrix::identity(4).frobenius_norm() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn iter_yields_row_major_triples() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let triples: Vec<_> = m.iter().collect();
        assert_eq!(
            triples,
            vec![(0, 0, 1.0), (0, 1, 2.0), (1, 0, 3.0), (1, 1, 4.0)]
        );
    }

    proptest! {
        #[test]
        fn matmul_associates_with_matvec(
            a in proptest::collection::vec(-10.0..10.0f64, 6),
            b in proptest::collection::vec(-10.0..10.0f64, 6),
            x in proptest::collection::vec(-10.0..10.0f64, 2),
        ) {
            // (A * B) x == A (B x) with A: 2x3, B: 3x2, x: len 2.
            let a = Matrix::from_vec(2, 3, a);
            let b = Matrix::from_vec(3, 2, b);
            let lhs = a.matmul(&b).matvec(&x);
            let rhs = a.matvec(&b.matvec(&x));
            for (l, r) in lhs.iter().zip(&rhs) {
                prop_assert!((l - r).abs() <= 1e-9 * (1.0 + l.abs().max(r.abs())));
            }
        }

        #[test]
        fn transpose_swaps_indices(
            data in proptest::collection::vec(-5.0..5.0f64, 12),
            r in 0usize..3,
            c in 0usize..4,
        ) {
            let m = Matrix::from_vec(3, 4, data);
            prop_assert_eq!(m.transpose()[(c, r)], m[(r, c)]);
        }
    }
}
