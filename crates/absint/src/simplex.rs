//! A dense two-phase simplex solver for the star-set domain.
//!
//! Solves `maximize c·x subject to A x ≤ b, x ≥ 0` with Bland's rule
//! (guaranteeing termination). The star-set bound queries translate their
//! boxed variables into this form; problem sizes are small (tens to a few
//! hundred variables), so a dense tableau is the right tool.

use std::fmt;

/// Errors from the LP solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    /// The constraint system has no feasible point.
    Infeasible,
    /// The objective is unbounded above on the feasible region.
    Unbounded,
    /// Inconsistent matrix/vector dimensions.
    BadShape(String),
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
            LpError::BadShape(msg) => write!(f, "bad linear program shape: {msg}"),
        }
    }
}

impl std::error::Error for LpError {}

/// An optimal LP solution.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Optimal objective value.
    pub objective: f64,
    /// An optimal point.
    pub point: Vec<f64>,
}

/// Two-phase dense simplex.
///
/// ```
/// use napmon_absint::Simplex;
/// // max x + y  s.t.  x + 2y <= 4,  3x + y <= 6,  x,y >= 0  -> opt 2.8 at (1.6, 1.2)
/// let sol = Simplex::new(2)
///     .less_equal(&[1.0, 2.0], 4.0)
///     .less_equal(&[3.0, 1.0], 6.0)
///     .maximize(&[1.0, 1.0])
///     .unwrap();
/// assert!((sol.objective - 2.8).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct Simplex {
    num_vars: usize,
    rows: Vec<Vec<f64>>,
    rhs: Vec<f64>,
}

impl Simplex {
    /// Starts an LP over `num_vars` non-negative variables.
    pub fn new(num_vars: usize) -> Self {
        Self {
            num_vars,
            rows: Vec::new(),
            rhs: Vec::new(),
        }
    }

    /// Adds a constraint `coeffs · x ≤ bound`. Returns `self` for chaining.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != num_vars`.
    pub fn less_equal(mut self, coeffs: &[f64], bound: f64) -> Self {
        assert_eq!(coeffs.len(), self.num_vars, "constraint arity");
        self.rows.push(coeffs.to_vec());
        self.rhs.push(bound);
        self
    }

    /// Number of constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.rows.len()
    }

    /// Maximizes `objective · x` over the feasible region.
    ///
    /// # Errors
    ///
    /// [`LpError::Infeasible`] when no point satisfies the constraints,
    /// [`LpError::Unbounded`] when the objective grows without bound,
    /// [`LpError::BadShape`] on arity mismatch.
    pub fn maximize(&self, objective: &[f64]) -> Result<LpSolution, LpError> {
        if objective.len() != self.num_vars {
            return Err(LpError::BadShape(format!(
                "objective arity {} != variables {}",
                objective.len(),
                self.num_vars
            )));
        }
        let m = self.rows.len();
        let n = self.num_vars;
        // Tableau columns: n structural + m slack + m artificial + rhs.
        // One artificial per row keeps the code simple; unused ones just
        // never enter the basis.
        let cols = n + m + m + 1;
        let mut t = vec![vec![0.0; cols]; m];
        let mut basis = vec![0usize; m];
        for (i, row) in self.rows.iter().enumerate() {
            let flip = self.rhs[i] < 0.0;
            let s = if flip { -1.0 } else { 1.0 };
            for (j, &a) in row.iter().enumerate() {
                t[i][j] = s * a;
            }
            t[i][n + i] = s; // slack
            t[i][n + m + i] = 1.0; // artificial
            t[i][cols - 1] = s * self.rhs[i];
            basis[i] = n + m + i;
        }

        // Phase 1: minimize the sum of artificials (maximize their negative).
        let mut obj1 = vec![0.0; cols];
        for i in 0..m {
            obj1[n + m + i] = -1.0;
        }
        let mut z1 = Self::run_simplex(&mut t, &mut basis, &obj1, n + m + m)?;
        // z1 maximizes the *negative* artificial sum; feasibility needs it
        // to reach (numerically) zero.
        if z1 < -1e-7 {
            return Err(LpError::Infeasible);
        }
        // Drive any remaining artificial variables out of the basis.
        for i in 0..m {
            if basis[i] >= n + m {
                if let Some(j) = (0..n + m).find(|&j| t[i][j].abs() > 1e-9) {
                    Self::pivot(&mut t, &mut basis, i, j);
                } // else: redundant row; harmless.
            }
        }
        z1 = 0.0;
        let _ = z1;

        // Phase 2: original objective, artificials frozen out.
        let mut obj2 = vec![0.0; cols];
        obj2[..n].copy_from_slice(objective);
        let objective_value = Self::run_simplex(&mut t, &mut basis, &obj2, n + m)?;

        let mut point = vec![0.0; n];
        for (i, &b) in basis.iter().enumerate() {
            if b < n {
                point[b] = t[i][cols - 1];
            }
        }
        Ok(LpSolution {
            objective: objective_value,
            point,
        })
    }

    /// Runs primal simplex with Bland's rule on the tableau; columns with
    /// index `>= active_cols` are frozen (cannot enter the basis).
    fn run_simplex(
        t: &mut [Vec<f64>],
        basis: &mut [usize],
        objective: &[f64],
        active_cols: usize,
    ) -> Result<f64, LpError> {
        let m = t.len();
        let cols = objective.len();
        // Reduced-cost row: z_j - c_j over current basis.
        loop {
            // reduced cost r_j = c_j - cB · B^-1 A_j; tableau is kept in
            // B^-1 A form, so r_j = c_j - Σ_i cB_i t[i][j].
            let mut entering = None;
            for j in 0..active_cols {
                if basis.contains(&j) {
                    continue;
                }
                let mut r = objective[j];
                for i in 0..m {
                    r -= objective[basis[i]] * t[i][j];
                }
                if r > 1e-9 {
                    entering = Some(j);
                    break; // Bland: smallest index.
                }
            }
            let Some(j) = entering else {
                // Optimal: objective = cB · rhs.
                let mut z = 0.0;
                for i in 0..m {
                    z += objective[basis[i]] * t[i][cols - 1];
                }
                return Ok(z);
            };
            // Ratio test (Bland: smallest basis index on ties).
            let mut leave: Option<usize> = None;
            let mut best = f64::INFINITY;
            for i in 0..m {
                if t[i][j] > 1e-9 {
                    let ratio = t[i][cols - 1] / t[i][j];
                    if ratio < best - 1e-12
                        || (ratio < best + 1e-12
                            && leave.map(|l| basis[i] < basis[l]).unwrap_or(false))
                    {
                        best = ratio;
                        leave = Some(i);
                    }
                }
            }
            let Some(i) = leave else {
                return Err(LpError::Unbounded);
            };
            Self::pivot(t, basis, i, j);
        }
    }

    fn pivot(t: &mut [Vec<f64>], basis: &mut [usize], row: usize, col: usize) {
        let cols = t[row].len();
        let p = t[row][col];
        for v in t[row].iter_mut() {
            *v /= p;
        }
        for i in 0..t.len() {
            if i == row {
                continue;
            }
            let f = t[i][col];
            if f == 0.0 {
                continue;
            }
            #[allow(clippy::needless_range_loop)] // two rows of one tableau
            for j in 0..cols {
                t[i][j] -= f * t[row][j];
            }
        }
        basis[row] = col;
    }
}

/// Maximizes `objective · x` for `x` in the polytope
/// `{ lo ≤ x ≤ hi, A x ≤ b }` with finite variable bounds.
///
/// This is the exact query shape the star-set domain produces. Variables
/// are shifted to `z = x - lo ≥ 0` and upper bounds become rows.
///
/// # Errors
///
/// Same conditions as [`Simplex::maximize`].
///
/// # Panics
///
/// Panics if shapes disagree or any bound is non-finite / inverted.
pub fn maximize_boxed(
    objective: &[f64],
    lo: &[f64],
    hi: &[f64],
    constraints: &[(Vec<f64>, f64)],
) -> Result<LpSolution, LpError> {
    let n = objective.len();
    assert_eq!(lo.len(), n, "maximize_boxed: lo arity");
    assert_eq!(hi.len(), n, "maximize_boxed: hi arity");
    for i in 0..n {
        assert!(
            lo[i].is_finite() && hi[i].is_finite() && lo[i] <= hi[i],
            "bad variable bound {i}"
        );
    }
    let mut lp = Simplex::new(n);
    // Upper bounds: z_i <= hi_i - lo_i.
    for i in 0..n {
        let mut row = vec![0.0; n];
        row[i] = 1.0;
        lp = lp.less_equal(&row, hi[i] - lo[i]);
    }
    // General constraints: a·x <= b  =>  a·z <= b - a·lo.
    for (a, b) in constraints {
        assert_eq!(a.len(), n, "maximize_boxed: constraint arity");
        let shift: f64 = a.iter().zip(lo).map(|(ai, li)| ai * li).sum();
        lp = lp.less_equal(a, b - shift);
    }
    let sol = lp.maximize(objective)?;
    let offset: f64 = objective.iter().zip(lo).map(|(c, l)| c * l).sum();
    let point: Vec<f64> = sol.point.iter().zip(lo).map(|(z, l)| z + l).collect();
    Ok(LpSolution {
        objective: sol.objective + offset,
        point,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use napmon_tensor::Prng;

    #[test]
    fn textbook_lp() {
        let sol = Simplex::new(2)
            .less_equal(&[1.0, 2.0], 4.0)
            .less_equal(&[3.0, 1.0], 6.0)
            .maximize(&[1.0, 1.0])
            .unwrap();
        assert!((sol.objective - 2.8).abs() < 1e-9);
        assert!((sol.point[0] - 1.6).abs() < 1e-9);
        assert!((sol.point[1] - 1.2).abs() < 1e-9);
    }

    #[test]
    fn unconstrained_direction_is_unbounded() {
        let err = Simplex::new(2)
            .less_equal(&[1.0, 0.0], 1.0)
            .maximize(&[0.0, 1.0])
            .unwrap_err();
        assert_eq!(err, LpError::Unbounded);
    }

    #[test]
    fn contradictory_constraints_are_infeasible() {
        // x <= -1 with x >= 0.
        let err = Simplex::new(1)
            .less_equal(&[1.0], -1.0)
            .maximize(&[1.0])
            .unwrap_err();
        assert_eq!(err, LpError::Infeasible);
    }

    #[test]
    fn negative_rhs_requires_phase_one() {
        // x0 >= 2 (as -x0 <= -2), x0 <= 5: max -x0 is -2, max x0 is 5.
        let lp = Simplex::new(1)
            .less_equal(&[-1.0], -2.0)
            .less_equal(&[1.0], 5.0);
        let hi = lp.maximize(&[1.0]).unwrap();
        assert!((hi.objective - 5.0).abs() < 1e-9);
        let lo = lp.maximize(&[-1.0]).unwrap();
        assert!((lo.objective + 2.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_equality_like_constraints() {
        // x0 + x1 <= 1 and -(x0 + x1) <= -1 pin the sum to exactly 1.
        let lp = Simplex::new(2)
            .less_equal(&[1.0, 1.0], 1.0)
            .less_equal(&[-1.0, -1.0], -1.0);
        let sol = lp.maximize(&[1.0, 0.0]).unwrap();
        assert!((sol.objective - 1.0).abs() < 1e-9);
        let sol = lp.maximize(&[-1.0, 0.0]).unwrap();
        assert!((sol.objective - 0.0).abs() < 1e-9);
    }

    #[test]
    fn objective_shape_is_checked() {
        let err = Simplex::new(2).maximize(&[1.0]).unwrap_err();
        assert!(matches!(err, LpError::BadShape(_)));
    }

    #[test]
    fn boxed_helper_handles_negative_bounds() {
        // x in [-1, 1]^2, x0 + x1 <= 0: max x0 = 1 (x1 = -1).
        let sol = maximize_boxed(
            &[1.0, 0.0],
            &[-1.0, -1.0],
            &[1.0, 1.0],
            &[(vec![1.0, 1.0], 0.0)],
        )
        .unwrap();
        assert!((sol.objective - 1.0).abs() < 1e-9);
        assert!(sol.point[0] > 0.99 && sol.point[1] < -0.99 + 1e-6);
    }

    /// Brute-force reference: maximize over a fine grid of the box, keeping
    /// feasible points. Coarse, so assert with a tolerance.
    fn grid_max(objective: &[f64], lo: &[f64], hi: &[f64], constraints: &[(Vec<f64>, f64)]) -> f64 {
        let steps = 40;
        let n = objective.len();
        assert!(n <= 3, "grid reference only for tiny LPs");
        let mut best = f64::NEG_INFINITY;
        let mut idx = vec![0usize; n];
        'outer: loop {
            let x: Vec<f64> = (0..n)
                .map(|i| lo[i] + (hi[i] - lo[i]) * idx[i] as f64 / steps as f64)
                .collect();
            let feasible = constraints
                .iter()
                .all(|(a, b)| a.iter().zip(&x).map(|(ai, xi)| ai * xi).sum::<f64>() <= b + 1e-9);
            if feasible {
                let v = objective.iter().zip(&x).map(|(c, xi)| c * xi).sum::<f64>();
                best = best.max(v);
            }
            #[allow(clippy::needless_range_loop)] // odometer carry over idx
            for i in 0..n {
                idx[i] += 1;
                if idx[i] <= steps {
                    continue 'outer;
                }
                idx[i] = 0;
            }
            break;
        }
        best
    }

    #[test]
    fn random_boxed_lps_match_grid_reference() {
        let mut rng = Prng::seed(23);
        for trial in 0..50 {
            let n = 2 + (trial % 2);
            let lo: Vec<f64> = (0..n).map(|_| rng.uniform(-2.0, 0.0)).collect();
            let hi: Vec<f64> = lo.iter().map(|l| l + rng.uniform(0.5, 2.0)).collect();
            let mut constraints = Vec::new();
            for _ in 0..(trial % 3) {
                let a: Vec<f64> = (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect();
                // Keep the center feasible so the LP is never infeasible.
                let center_val: f64 = a
                    .iter()
                    .zip(lo.iter().zip(&hi))
                    .map(|(ai, (l, h))| ai * 0.5 * (l + h))
                    .sum();
                constraints.push((a, center_val + rng.uniform(0.1, 1.0)));
            }
            let c: Vec<f64> = (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect();
            let sol = maximize_boxed(&c, &lo, &hi, &constraints).unwrap();
            let reference = grid_max(&c, &lo, &hi, &constraints);
            assert!(
                sol.objective >= reference - 1e-6,
                "trial {trial}: simplex {} below grid {}",
                sol.objective,
                reference
            );
            assert!(
                sol.objective <= reference + 0.35,
                "trial {trial}: simplex {} way above grid {} (grid res limits this check)",
                sol.objective,
                reference
            );
        }
    }
}
