//! The star-set domain (Tran et al., FM 2019) with approximate ReLU.
//!
//! A star set is `{ c + V α | α ∈ [α_lo, α_hi], A α ≤ b }`: an affine image
//! of a constrained symbol box. Affine layers transform `(c, V)` exactly;
//! ReLU uses the *approximate star* relaxation, which introduces one fresh
//! symbol and three linear constraints per unstable neuron and never splits
//! — so a single star flows through the network. Dimension bounds are LP
//! queries ([`crate::simplex`]).
//!
//! Unlike the box/zonotope domains, the star bounds come out of a
//! floating-point LP solver without directed rounding; [`StarSet::bounds`]
//! therefore inflates results by a small relative epsilon (documented, and
//! covered by randomized containment tests). The paper's own implementation
//! used boxed abstraction; stars are provided for the tightness/runtime
//! ablation (experiment A4).

use crate::affine::AffineView;
use crate::boxdom::BoxBounds;
use crate::interval::{round_down, round_up};
use crate::simplex::{maximize_boxed, LpError};
use napmon_nn::{Activation, Layer, MaxPool2d};

/// Relative inflation applied to LP-computed bounds to absorb solver
/// rounding.
const LP_EPS: f64 = 1e-7;

/// A star set over `α`-symbols.
#[derive(Debug, Clone, PartialEq)]
pub struct StarSet {
    /// Center `c`, one entry per dimension.
    center: Vec<f64>,
    /// Basis vectors per symbol: `basis[s][dim]` (the column `V_{·,s}`).
    basis: Vec<Vec<f64>>,
    /// Per-symbol box bounds.
    alpha_lo: Vec<f64>,
    alpha_hi: Vec<f64>,
    /// Additional linear constraints `a · α ≤ b`.
    constraints: Vec<(Vec<f64>, f64)>,
}

impl StarSet {
    /// Builds the star representing a box: identity basis, `α ∈ box`.
    pub fn from_box(b: &BoxBounds) -> Self {
        let d = b.dim();
        let center = (0..d)
            .map(|i| 0.5 * (b.lo()[i] + b.hi()[i]))
            .collect::<Vec<_>>();
        let mut basis = Vec::with_capacity(d);
        for i in 0..d {
            let mut col = vec![0.0; d];
            // Radius rounded up so the star encloses the box despite
            // mid-point rounding.
            col[i] = round_up(0.5 * (b.hi()[i] - b.lo()[i]));
            basis.push(col);
        }
        Self {
            center,
            basis,
            alpha_lo: vec![-1.0; d],
            alpha_hi: vec![1.0; d],
            constraints: Vec::new(),
        }
    }

    /// Number of dimensions.
    pub fn dim(&self) -> usize {
        self.center.len()
    }

    /// Number of `α`-symbols.
    pub fn num_symbols(&self) -> usize {
        self.basis.len()
    }

    /// Number of accumulated linear constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// LP objective for dimension `i`: the row `V_{i,·}`.
    fn row(&self, i: usize) -> Vec<f64> {
        self.basis.iter().map(|col| col[i]).collect()
    }

    /// LP-computed bounds of dimension `i` (inflated by `LP_EPS`).
    fn dim_bounds(&self, i: usize) -> Result<(f64, f64), LpError> {
        let obj = self.row(i);
        if obj.iter().all(|&v| v == 0.0) {
            return Ok((self.center[i], self.center[i]));
        }
        let max = maximize_boxed(&obj, &self.alpha_lo, &self.alpha_hi, &self.constraints)?;
        let neg: Vec<f64> = obj.iter().map(|v| -v).collect();
        let min = maximize_boxed(&neg, &self.alpha_lo, &self.alpha_hi, &self.constraints)?;
        let hi = self.center[i] + max.objective;
        let lo = self.center[i] - min.objective;
        let scale = 1.0 + LP_EPS;
        let pad = LP_EPS * (1.0 + lo.abs().max(hi.abs()));
        Ok((
            round_down(lo * if lo < 0.0 { scale } else { 1.0 / scale } - pad),
            round_up(hi * if hi > 0.0 { scale } else { 1.0 / scale } + pad),
        ))
    }

    /// Sound per-dimension bounds of the star.
    ///
    /// # Panics
    ///
    /// Panics if an internal LP is infeasible or unbounded — both indicate
    /// a bug, since star predicates always contain a witness point and all
    /// symbols are boxed.
    pub fn bounds(&self) -> BoxBounds {
        let d = self.dim();
        let mut lo = Vec::with_capacity(d);
        let mut hi = Vec::with_capacity(d);
        for i in 0..d {
            let (l, h) = self
                .dim_bounds(i)
                .expect("star LP must be feasible and bounded");
            lo.push(l.min(h));
            hi.push(h.max(l));
        }
        BoxBounds::new(lo, hi)
    }

    /// Propagates through one affine view (exact on `(c, V)`).
    pub(crate) fn step_affine(&self, view: &AffineView) -> StarSet {
        assert_eq!(self.dim(), view.in_dim(), "star affine: dimension mismatch");
        let center = view.apply(&self.center);
        let basis = self
            .basis
            .iter()
            .map(|col| view.apply_linear(col))
            .collect();
        StarSet {
            center,
            basis,
            alpha_lo: self.alpha_lo.clone(),
            alpha_hi: self.alpha_hi.clone(),
            constraints: self.constraints.clone(),
        }
    }

    /// Zeroes dimension `i` (used for provably-inactive ReLU neurons).
    fn zero_dim(&mut self, i: usize) {
        self.center[i] = 0.0;
        for col in &mut self.basis {
            col[i] = 0.0;
        }
    }

    /// Adds a fresh symbol with box `[lo, hi]`, returning its index.
    fn push_symbol(&mut self, lo: f64, hi: f64) -> usize {
        let d = self.dim();
        self.basis.push(vec![0.0; d]);
        self.alpha_lo.push(lo);
        self.alpha_hi.push(hi);
        for (a, _) in &mut self.constraints {
            a.push(0.0);
        }
        self.num_symbols() - 1
    }

    /// Approximate-star ReLU.
    pub(crate) fn step_relu(&self) -> StarSet {
        let mut star = self.clone();
        for i in 0..star.dim() {
            let (l, u) = star
                .dim_bounds(i)
                .expect("star LP must be feasible and bounded");
            if u <= 0.0 {
                star.zero_dim(i);
            } else if l >= 0.0 {
                // Exact.
            } else {
                // Unstable: y_i = α_new with
                //   α_new ≥ 0            (via the symbol's box)
                //   α_new ≥ x_i          (x_i = c_i + V_i α)
                //   α_new ≤ λ (x_i - l)  with λ = u / (u - l)
                let lambda = (u / (u - l)).clamp(0.0, 1.0);
                let old_row = star.row(i);
                let c_i = star.center[i];
                let s = star.push_symbol(0.0, round_up(u));
                let n = star.num_symbols();
                // V_i α - α_new ≤ -c_i
                let mut a1 = vec![0.0; n];
                a1[..old_row.len()].copy_from_slice(&old_row);
                a1[s] = -1.0;
                star.constraints.push((a1, -c_i));
                // α_new - λ V_i α ≤ λ (c_i - l)
                let mut a2 = vec![0.0; n];
                for (j, v) in old_row.iter().enumerate() {
                    a2[j] = -lambda * v;
                }
                a2[s] = 1.0;
                star.constraints.push((a2, round_up(lambda * (c_i - l))));
                // Output dim now reads the fresh symbol.
                star.zero_dim(i);
                star.basis[s][i] = 1.0;
            }
        }
        star
    }

    /// Collapses every dimension to its interval image under a monotone
    /// activation (fallback for non-piecewise-linear activations).
    fn step_monotone_collapse(&self, act: Activation) -> StarSet {
        let pre = self.bounds();
        let d = self.dim();
        let mut star = StarSet {
            center: vec![0.0; d],
            basis: Vec::new(),
            alpha_lo: Vec::new(),
            alpha_hi: Vec::new(),
            constraints: Vec::new(),
        };
        for i in 0..d {
            let l = round_down(act.apply(pre.lo()[i]));
            let h = round_up(act.apply(pre.hi()[i]));
            let c = 0.5 * (l + h);
            let r = round_up((h - c).max(c - l)).max(0.0);
            star.center[i] = c;
            let s = star.push_symbol(-1.0, 1.0);
            star.basis[s][i] = r;
        }
        star
    }

    /// Propagates through an activation.
    pub(crate) fn step_activation(&self, act: Activation) -> StarSet {
        match act {
            Activation::Identity => self.clone(),
            Activation::Relu => self.step_relu(),
            // Leaky ReLU: y = α·x + (1-α)·relu(x); reuse the ReLU star by
            // linear combination is not expressible here, so collapse — the
            // experiments use plain ReLU networks for star comparisons.
            Activation::LeakyRelu { .. } | Activation::Sigmoid | Activation::Tanh => {
                self.step_monotone_collapse(act)
            }
        }
    }

    /// Propagates through max pooling by interval collapse.
    pub(crate) fn step_maxpool(&self, p: &MaxPool2d) -> StarSet {
        let pre = self.bounds().step_maxpool(p);
        let d = pre.dim();
        let mut star = StarSet {
            center: vec![0.0; d],
            basis: Vec::new(),
            alpha_lo: Vec::new(),
            alpha_hi: Vec::new(),
            constraints: Vec::new(),
        };
        for i in 0..d {
            let (l, h) = (pre.lo()[i], pre.hi()[i]);
            let c = 0.5 * (l + h);
            let r = round_up((h - c).max(c - l)).max(0.0);
            star.center[i] = c;
            let s = star.push_symbol(-1.0, 1.0);
            star.basis[s][i] = r;
        }
        star
    }

    /// Propagates through one network layer.
    ///
    /// # Panics
    ///
    /// Panics if the star dimension does not match the layer input.
    pub fn step(&self, layer: &Layer) -> StarSet {
        if let Some(view) = AffineView::from_layer(layer) {
            return self.step_affine(&view);
        }
        match layer {
            Layer::MaxPool2d(p) => self.step_maxpool(p),
            Layer::Activation(a) => self.step_activation(*a),
            _ => unreachable!("non-affine layers are pooling or activation"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use napmon_nn::{Dense, LayerSpec, Network};
    use napmon_tensor::{Matrix, Prng};

    #[test]
    fn from_box_round_trips_bounds() {
        let b = BoxBounds::new(vec![-1.0, 0.5], vec![2.0, 0.5]);
        let s = StarSet::from_box(&b);
        let back = s.bounds();
        assert!(back.encloses(&b));
        assert!(back.mean_width() <= b.mean_width() + 1e-5);
    }

    #[test]
    fn affine_step_is_exact_on_linear_chain() {
        let rot = Dense::new(
            Matrix::from_rows(&[&[1.0, 1.0], &[1.0, -1.0]]),
            vec![0.0, 0.0],
        )
        .unwrap();
        let sum = Dense::new(Matrix::from_rows(&[&[1.0, 1.0]]), vec![0.0]).unwrap();
        let input = BoxBounds::new(vec![-1.0, -1.0], vec![1.0, 1.0]);
        let s = StarSet::from_box(&input)
            .step(&Layer::Dense(rot))
            .step(&Layer::Dense(sum));
        let b = s.bounds();
        // (x0+x1) + (x0-x1) = 2 x0 ∈ [-2, 2]: the star keeps the correlation.
        assert!(b.hi()[0] <= 2.0 + 1e-5 && b.lo()[0] >= -2.0 - 1e-5);
    }

    #[test]
    fn relu_star_contains_concrete_samples() {
        let mut rng = Prng::seed(40);
        let net = Network::seeded(
            19,
            2,
            &[
                LayerSpec::dense(5, Activation::Relu),
                LayerSpec::dense(2, Activation::Identity),
            ],
        );
        let center = [0.1, -0.3];
        let input = BoxBounds::from_center_radius(&center, 0.25);
        let mut s = StarSet::from_box(&input);
        for layer in net.layers() {
            s = s.step(layer);
        }
        let out = s.bounds();
        for _ in 0..300 {
            let x: Vec<f64> = (0..2)
                .map(|i| rng.uniform(center[i] - 0.25, center[i] + 0.25))
                .collect();
            assert!(out.contains(&net.forward(&x)), "sample escaped star bounds");
        }
    }

    #[test]
    fn star_no_looser_than_box_through_relu() {
        let net = Network::seeded(
            33,
            3,
            &[
                LayerSpec::dense(8, Activation::Relu),
                LayerSpec::dense(4, Activation::Relu),
                LayerSpec::dense(2, Activation::Identity),
            ],
        );
        let input = BoxBounds::from_center_radius(&[0.2, -0.1, 0.4], 0.3);
        let mut s = StarSet::from_box(&input);
        let mut b = input.clone();
        for layer in net.layers() {
            s = s.step(layer);
            b = b.step(layer);
        }
        let sb = s.bounds();
        assert!(
            sb.mean_width() <= b.mean_width() + 1e-6,
            "star {} vs box {}",
            sb.mean_width(),
            b.mean_width()
        );
    }

    #[test]
    fn stable_neurons_add_no_symbols_or_constraints() {
        // All-positive pre-activations: ReLU is exact, nothing is added.
        let d = Dense::new(Matrix::from_rows(&[&[1.0], &[2.0]]), vec![10.0, 10.0]).unwrap();
        let input = BoxBounds::new(vec![-0.5], vec![0.5]);
        let s = StarSet::from_box(&input)
            .step(&Layer::Dense(d))
            .step(&Layer::Activation(Activation::Relu));
        assert_eq!(s.num_symbols(), 1);
        assert_eq!(s.num_constraints(), 0);
    }

    #[test]
    fn unstable_neurons_add_one_symbol_and_two_constraints() {
        let d = Dense::new(Matrix::from_rows(&[&[1.0]]), vec![0.0]).unwrap();
        let input = BoxBounds::new(vec![-1.0], vec![1.0]);
        let s = StarSet::from_box(&input)
            .step(&Layer::Dense(d))
            .step(&Layer::Activation(Activation::Relu));
        assert_eq!(s.num_symbols(), 2);
        assert_eq!(s.num_constraints(), 2);
        let b = s.bounds();
        assert!(b.lo()[0] <= 0.0 + 1e-6 && b.lo()[0] >= -1e-4);
        assert!(b.hi()[0] >= 1.0 - 1e-6);
    }

    #[test]
    fn sigmoid_collapse_is_sound() {
        let mut rng = Prng::seed(44);
        let net = Network::seeded(
            21,
            2,
            &[
                LayerSpec::dense(3, Activation::Sigmoid),
                LayerSpec::dense(1, Activation::Identity),
            ],
        );
        let input = BoxBounds::from_center_radius(&[0.0, 0.0], 0.5);
        let mut s = StarSet::from_box(&input);
        for layer in net.layers() {
            s = s.step(layer);
        }
        let out = s.bounds();
        for _ in 0..200 {
            let x = vec![rng.uniform(-0.5, 0.5), rng.uniform(-0.5, 0.5)];
            assert!(out.contains(&net.forward(&x)));
        }
    }
}
