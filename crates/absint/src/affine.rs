//! Uniform sparse view of affine layers.
//!
//! Dense and convolutional layers are both affine maps `y = W x + b`; the
//! abstract domains only need the coefficients, not the layer type. An
//! [`AffineView`] materializes the (sparse) coefficient list once per layer
//! so every domain shares one propagation code path.

use napmon_nn::{AvgPool2d, BatchNorm1d, Conv2d, Dense, Layer};

/// A sparse affine map `y = W x + b` extracted from a layer.
#[derive(Debug, Clone, PartialEq)]
pub struct AffineView {
    in_dim: usize,
    out_dim: usize,
    /// Per output row: list of `(input index, weight)` pairs.
    rows: Vec<Vec<(usize, f64)>>,
    bias: Vec<f64>,
}

impl AffineView {
    /// Extracts the affine structure of a layer, or `None` if the layer is
    /// not affine (activations, pooling).
    pub fn from_layer(layer: &Layer) -> Option<Self> {
        match layer {
            Layer::Dense(d) => Some(Self::from_dense(d)),
            Layer::Conv2d(c) => Some(Self::from_conv(c)),
            Layer::AvgPool2d(p) => Some(Self::from_avgpool(p)),
            Layer::BatchNorm(bn) => Some(Self::from_batchnorm(bn)),
            _ => None,
        }
    }

    /// Extracts a dense layer's coefficients.
    pub fn from_dense(d: &Dense) -> Self {
        let rows = (0..d.out_dim())
            .map(|r| {
                d.weights()
                    .row(r)
                    .iter()
                    .enumerate()
                    .filter(|(_, w)| **w != 0.0)
                    .map(|(c, w)| (c, *w))
                    .collect()
            })
            .collect();
        Self {
            in_dim: d.in_dim(),
            out_dim: d.out_dim(),
            rows,
            bias: d.bias().to_vec(),
        }
    }

    /// Enumerates a convolution's receptive fields into sparse rows.
    pub fn from_conv(c: &Conv2d) -> Self {
        let (oh, ow) = (c.out_h(), c.out_w());
        let k = c.kernel();
        let mut rows = Vec::with_capacity(c.out_dim());
        let mut bias = Vec::with_capacity(c.out_dim());
        for oc in 0..c.out_channels() {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut row = Vec::new();
                    for ic in 0..c.in_channels() {
                        for ky in 0..k {
                            for kx in 0..k {
                                let iy = (oy * c.stride() + ky) as isize - c.padding() as isize;
                                let ix = (ox * c.stride() + kx) as isize - c.padding() as isize;
                                if iy < 0
                                    || ix < 0
                                    || iy as usize >= c.in_h()
                                    || ix as usize >= c.in_w()
                                {
                                    continue;
                                }
                                let idx = (ic * c.in_h() + iy as usize) * c.in_w() + ix as usize;
                                let w = c.weights()[(oc, (ic * k + ky) * k + kx)];
                                if w != 0.0 {
                                    row.push((idx, w));
                                }
                            }
                        }
                    }
                    rows.push(row);
                    bias.push(c.bias()[oc]);
                }
            }
        }
        Self {
            in_dim: c.in_dim(),
            out_dim: c.out_dim(),
            rows,
            bias,
        }
    }

    /// Average pooling as a sparse affine map (weight `1/p²` per window
    /// cell, no bias).
    pub fn from_avgpool(p: &AvgPool2d) -> Self {
        let w = 1.0 / (p.pool() * p.pool()) as f64;
        let (oh, ow) = (p.out_h(), p.out_w());
        let mut rows = Vec::with_capacity(p.out_dim());
        for c in 0..p.channels() {
            for oy in 0..oh {
                for ox in 0..ow {
                    rows.push(p.window_indices(c, oy, ox).map(|i| (i, w)).collect());
                }
            }
        }
        Self {
            in_dim: p.in_dim(),
            out_dim: p.out_dim(),
            rows,
            bias: vec![0.0; p.out_dim()],
        }
    }

    /// Frozen batch norm as a diagonal affine map.
    pub fn from_batchnorm(bn: &BatchNorm1d) -> Self {
        let rows = bn
            .scale()
            .iter()
            .enumerate()
            .map(|(i, &s)| vec![(i, s)])
            .collect();
        Self {
            in_dim: bn.dim(),
            out_dim: bn.dim(),
            rows,
            bias: bn.shift().to_vec(),
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Bias vector.
    pub fn bias(&self) -> &[f64] {
        &self.bias
    }

    /// Sparse coefficients of output row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.out_dim()`.
    pub fn row(&self, r: usize) -> &[(usize, f64)] {
        &self.rows[r]
    }

    /// Applies the map in plain round-to-nearest arithmetic (`W x + b`).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.in_dim()`.
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.in_dim, "affine apply: input dimension");
        self.rows
            .iter()
            .zip(&self.bias)
            .map(|(row, b)| b + row.iter().map(|&(i, w)| w * x[i]).sum::<f64>())
            .collect()
    }

    /// Applies only the linear part (`W x`).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.in_dim()`.
    pub fn apply_linear(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.in_dim, "affine apply_linear: input dimension");
        self.rows
            .iter()
            .map(|row| row.iter().map(|&(i, w)| w * x[i]).sum::<f64>())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use napmon_tensor::{init::Init, Matrix, Prng};

    #[test]
    fn dense_view_matches_layer_forward() {
        let d = Dense::new(
            Matrix::from_rows(&[&[1.0, -2.0, 0.0], &[0.5, 0.0, 3.0]]),
            vec![0.1, -0.2],
        )
        .unwrap();
        let v = AffineView::from_dense(&d);
        assert_eq!(v.in_dim(), 3);
        assert_eq!(v.out_dim(), 2);
        let x = [1.0, 2.0, -1.0];
        assert_eq!(v.apply(&x), d.forward(&x));
        assert_eq!(v.apply_linear(&x), d.apply_linear(&x));
        // Zero weights are dropped from the sparse rows.
        assert_eq!(v.row(0).len(), 2);
        assert_eq!(v.row(1).len(), 2);
    }

    #[test]
    fn conv_view_matches_layer_forward() {
        let mut rng = Prng::seed(17);
        let c = Conv2d::seeded(&mut rng, 2, 5, 5, 3, 3, 2, 1, Init::HeNormal).unwrap();
        let v = AffineView::from_conv(&c);
        assert_eq!(v.in_dim(), c.in_dim());
        assert_eq!(v.out_dim(), c.out_dim());
        let x = rng.uniform_vec(c.in_dim(), -1.0, 1.0);
        let (ours, theirs) = (v.apply(&x), c.forward(&x));
        for (a, b) in ours.iter().zip(&theirs) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn from_layer_returns_none_for_nonaffine() {
        use napmon_nn::Activation;
        assert!(AffineView::from_layer(&Layer::Activation(Activation::Relu)).is_none());
        let p = napmon_nn::MaxPool2d::new(1, 4, 4, 2, 2).unwrap();
        assert!(AffineView::from_layer(&Layer::MaxPool2d(p)).is_none());
    }

    #[test]
    fn padded_conv_rows_have_truncated_receptive_fields() {
        let c = Conv2d::zeros(1, 3, 3, 1, 3, 1, 1).unwrap();
        let v = AffineView::from_conv(&c);
        // All-zero kernel: rows are empty; but out_dim is 9 regardless.
        assert_eq!(v.out_dim(), 9);
        assert!(v.row(0).is_empty());
    }
}
