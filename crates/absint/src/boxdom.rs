//! The box (interval vector) domain — interval bound propagation.

use crate::affine::AffineView;
use crate::interval::{round_down, round_up, Interval};
use napmon_nn::{Activation, Layer, MaxPool2d};
use serde::{Deserialize, Serialize};

/// Per-dimension lower/upper bounds: the paper's `⟨(l_1,u_1),…,(l_d,u_d)⟩`.
///
/// All propagation steps round outward (see [`crate::interval`]), so a
/// propagated box is a sound enclosure of the exact real-arithmetic image.
///
/// ```
/// use napmon_absint::BoxBounds;
/// let b = BoxBounds::from_center_radius(&[0.0, 1.0], 0.5);
/// assert!(b.contains(&[0.4, 1.2]));
/// assert!(!b.contains(&[0.6, 1.0]));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoxBounds {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl BoxBounds {
    /// Creates a box from explicit bounds.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ, any `lo[i] > hi[i]`, or any bound is NaN.
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        assert_eq!(lo.len(), hi.len(), "box: bound length mismatch");
        for i in 0..lo.len() {
            assert!(!lo[i].is_nan() && !hi[i].is_nan(), "box: NaN bound at {i}");
            assert!(
                lo[i] <= hi[i],
                "box: empty dimension {i}: [{}, {}]",
                lo[i],
                hi[i]
            );
        }
        Self { lo, hi }
    }

    /// The degenerate box containing exactly `point`.
    pub fn from_point(point: &[f64]) -> Self {
        Self {
            lo: point.to_vec(),
            hi: point.to_vec(),
        }
    }

    /// The L∞ ball `[c - r, c + r]` around `center` (outward-rounded).
    ///
    /// This is the paper's `Δ`-perturbation set at a boundary.
    ///
    /// # Panics
    ///
    /// Panics if `radius < 0`.
    pub fn from_center_radius(center: &[f64], radius: f64) -> Self {
        assert!(radius >= 0.0, "box: negative radius {radius}");
        let lo = center.iter().map(|&c| round_down(c - radius)).collect();
        let hi = center.iter().map(|&c| round_up(c + radius)).collect();
        Self { lo, hi }
    }

    /// Number of dimensions.
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Lower bounds.
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Upper bounds.
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// The `i`-th dimension as an [`Interval`].
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.dim()`.
    pub fn get(&self, i: usize) -> Interval {
        Interval::new(self.lo[i], self.hi[i])
    }

    /// Whether `point` lies inside the box.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn contains(&self, point: &[f64]) -> bool {
        assert_eq!(point.len(), self.dim(), "contains: dimension mismatch");
        point
            .iter()
            .enumerate()
            .all(|(i, &x)| self.lo[i] <= x && x <= self.hi[i])
    }

    /// Whether `other` is entirely inside `self`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn encloses(&self, other: &BoxBounds) -> bool {
        assert_eq!(other.dim(), self.dim(), "encloses: dimension mismatch");
        (0..self.dim()).all(|i| self.lo[i] <= other.lo[i] && other.hi[i] <= self.hi[i])
    }

    /// Per-dimension intersection (meet).
    ///
    /// Intended for combining two *sound* enclosures of the same set, where
    /// the intersection is guaranteed non-empty.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ or the intersection is empty in some
    /// dimension (which would mean one input was not a sound enclosure).
    pub fn meet(&self, other: &BoxBounds) -> BoxBounds {
        assert_eq!(other.dim(), self.dim(), "meet: dimension mismatch");
        let lo: Vec<f64> = self
            .lo
            .iter()
            .zip(&other.lo)
            .map(|(a, b)| a.max(*b))
            .collect();
        let hi: Vec<f64> = self
            .hi
            .iter()
            .zip(&other.hi)
            .map(|(a, b)| a.min(*b))
            .collect();
        BoxBounds::new(lo, hi)
    }

    /// Smallest box containing both.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn hull(&self, other: &BoxBounds) -> BoxBounds {
        assert_eq!(other.dim(), self.dim(), "hull: dimension mismatch");
        BoxBounds {
            lo: self
                .lo
                .iter()
                .zip(&other.lo)
                .map(|(a, b)| a.min(*b))
                .collect(),
            hi: self
                .hi
                .iter()
                .zip(&other.hi)
                .map(|(a, b)| a.max(*b))
                .collect(),
        }
    }

    /// Per-dimension widths.
    pub fn widths(&self) -> Vec<f64> {
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(l, h)| round_up(h - l))
            .collect()
    }

    /// Mean width across dimensions (a tightness metric for domain
    /// comparisons); `0.0` for zero-dimensional boxes.
    pub fn mean_width(&self) -> f64 {
        if self.lo.is_empty() {
            return 0.0;
        }
        self.widths().iter().sum::<f64>() / self.lo.len() as f64
    }

    /// Propagates the box through one affine view with directed rounding.
    pub(crate) fn step_affine(&self, view: &AffineView) -> BoxBounds {
        assert_eq!(self.dim(), view.in_dim(), "step_affine: dimension mismatch");
        let mut lo = Vec::with_capacity(view.out_dim());
        let mut hi = Vec::with_capacity(view.out_dim());
        for r in 0..view.out_dim() {
            let b = view.bias()[r];
            let mut acc_lo = b;
            let mut acc_hi = b;
            for &(i, w) in view.row(r) {
                let (a, c) = (w * self.lo[i], w * self.hi[i]);
                let (cl, ch) = if a <= c { (a, c) } else { (c, a) };
                acc_lo = round_down(acc_lo + round_down(cl));
                acc_hi = round_up(acc_hi + round_up(ch));
            }
            lo.push(acc_lo);
            hi.push(acc_hi);
        }
        BoxBounds { lo, hi }
    }

    /// Propagates through an elementwise monotone activation (exact up to
    /// outward rounding).
    pub(crate) fn step_activation(&self, act: Activation) -> BoxBounds {
        let lo = self.lo.iter().map(|&l| round_down(act.apply(l))).collect();
        let hi = self.hi.iter().map(|&h| round_up(act.apply(h))).collect();
        BoxBounds { lo, hi }
    }

    /// Propagates through max pooling (exact: `max` is monotone in every
    /// window element and incurs no rounding).
    pub(crate) fn step_maxpool(&self, p: &MaxPool2d) -> BoxBounds {
        assert_eq!(self.dim(), p.in_dim(), "step_maxpool: dimension mismatch");
        let (oh, ow) = (p.out_h(), p.out_w());
        let mut lo = Vec::with_capacity(p.out_dim());
        let mut hi = Vec::with_capacity(p.out_dim());
        for c in 0..p.channels() {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut wl = f64::NEG_INFINITY;
                    let mut wh = f64::NEG_INFINITY;
                    for i in p.window_indices(c, oy, ox) {
                        wl = wl.max(self.lo[i]);
                        wh = wh.max(self.hi[i]);
                    }
                    lo.push(wl);
                    hi.push(wh);
                }
            }
        }
        BoxBounds { lo, hi }
    }

    /// Propagates through one network layer.
    ///
    /// # Panics
    ///
    /// Panics if the box dimension does not match the layer input.
    pub fn step(&self, layer: &Layer) -> BoxBounds {
        if let Some(view) = AffineView::from_layer(layer) {
            return self.step_affine(&view);
        }
        match layer {
            Layer::MaxPool2d(p) => self.step_maxpool(p),
            Layer::Activation(a) => self.step_activation(*a),
            _ => unreachable!("non-affine layers are pooling or activation"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use napmon_nn::Dense;
    use napmon_tensor::{Matrix, Prng};

    #[test]
    fn construction_and_accessors() {
        let b = BoxBounds::new(vec![0.0, -1.0], vec![1.0, 1.0]);
        assert_eq!(b.dim(), 2);
        assert_eq!(b.get(1).lo(), -1.0);
        assert!(b.contains(&[0.5, 0.0]));
        assert!(!b.contains(&[1.5, 0.0]));
    }

    #[test]
    #[should_panic(expected = "empty dimension")]
    fn inverted_bounds_panic() {
        BoxBounds::new(vec![1.0], vec![0.0]);
    }

    #[test]
    fn center_radius_box_encloses_ball() {
        let b = BoxBounds::from_center_radius(&[0.1, 0.2], 0.05);
        assert!(b.contains(&[0.15, 0.15]));
        assert!(b.contains(&[0.05, 0.25]));
    }

    #[test]
    fn hull_encloses_both() {
        let a = BoxBounds::new(vec![0.0], vec![1.0]);
        let b = BoxBounds::new(vec![2.0], vec![3.0]);
        let h = a.hull(&b);
        assert!(h.encloses(&a) && h.encloses(&b));
        assert!((h.widths()[0] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn affine_step_encloses_concrete_images() {
        let d = Dense::new(
            Matrix::from_rows(&[&[1.0, -1.0], &[2.0, 0.5]]),
            vec![0.1, -0.2],
        )
        .unwrap();
        let layer = Layer::Dense(d.clone());
        let b = BoxBounds::from_center_radius(&[0.3, -0.6], 0.1);
        let out = b.step(&layer);
        let mut rng = Prng::seed(9);
        for _ in 0..500 {
            let x = vec![rng.uniform(0.2, 0.4), rng.uniform(-0.7, -0.5)];
            assert!(out.contains(&d.forward(&x)));
        }
    }

    #[test]
    fn activation_step_is_pointwise_monotone_image() {
        let b = BoxBounds::new(vec![-2.0, 0.5], vec![-1.0, 1.5]);
        let out = b.step(&Layer::Activation(Activation::Relu));
        // Outward rounding may widen the exact zero by one subnormal ULP.
        assert!(out.lo()[0] >= -1e-300 && out.lo()[0] <= 0.0);
        assert!(out.hi()[0] <= 1e-300 && out.hi()[0] >= 0.0);
        assert!(out.get(1).contains(0.5) && out.get(1).contains(1.5));
    }

    #[test]
    fn maxpool_step_takes_window_maxima() {
        let p = MaxPool2d::new(1, 2, 2, 2, 2).unwrap();
        let b = BoxBounds::new(vec![0.0, -1.0, 2.0, -3.0], vec![1.0, 5.0, 2.5, 0.0]);
        let out = b.step(&Layer::MaxPool2d(p));
        assert_eq!(out.lo(), &[2.0]);
        assert_eq!(out.hi(), &[5.0]);
    }

    #[test]
    fn degenerate_box_stays_near_concrete_value() {
        let d = Dense::new(Matrix::from_rows(&[&[0.1, 0.2, 0.3]]), vec![0.4]).unwrap();
        let x = [0.1, 0.1, 0.1];
        let y = d.forward(&x);
        let out = BoxBounds::from_point(&x).step(&Layer::Dense(d));
        assert!(out.contains(&y));
        // Outward rounding keeps the box tiny: a few ULPs.
        assert!(out.widths()[0] < 1e-12);
    }

    #[test]
    fn mean_width_averages() {
        let b = BoxBounds::new(vec![0.0, 0.0], vec![1.0, 3.0]);
        assert!((b.mean_width() - 2.0).abs() < 1e-12);
    }
}
