//! Uniform driver: propagate a box through a slice of the network under a
//! chosen abstract domain.

use crate::affine::AffineView;
use crate::boxdom::BoxBounds;
use crate::star::StarSet;
use crate::zonotope::Zonotope;
use napmon_nn::Network;
use serde::{Deserialize, Serialize};

/// Which abstract domain computes the perturbation estimate.
///
/// The paper's Definition 1 permits any sound over-approximation and names
/// exactly these three ("boxed abstraction (interval bound propagation),
/// zonotope abstraction, or star sets"); its implementation uses `Box`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Domain {
    /// Interval bound propagation with outward rounding (fast, loosest).
    Box,
    /// Zonotopes / affine forms (tracks correlations; DeepZ ReLU).
    Zonotope,
    /// Polyhedral bounds with back-substitution (DeepPoly-style); an
    /// extension beyond the paper's three named machineries.
    Poly,
    /// Approximate star sets with LP bound queries (tightest, slowest).
    Star,
}

impl Domain {
    /// All supported domains, for sweeps.
    pub const ALL: [Domain; 4] = [Domain::Box, Domain::Zonotope, Domain::Poly, Domain::Star];

    /// Short lowercase name (`"box"`, `"zonotope"`, `"poly"`, `"star"`).
    pub fn name(self) -> &'static str {
        match self {
            Domain::Box => "box",
            Domain::Zonotope => "zonotope",
            Domain::Poly => "poly",
            Domain::Star => "star",
        }
    }
}

impl std::fmt::Display for Domain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A reusable propagation engine for one network.
///
/// Extracting the sparse [`AffineView`] of every affine layer is `O(params)`
/// per layer; monitors propagate thousands of per-sample boxes through the
/// same network, so the views are cached here once.
///
/// ```
/// use napmon_absint::{propagate::Propagator, BoxBounds, Domain};
/// use napmon_nn::{Activation, LayerSpec, Network};
///
/// let net = Network::seeded(2, 3, &[LayerSpec::dense(4, Activation::Relu)]);
/// let prop = Propagator::new(&net, Domain::Zonotope);
/// let out = prop.bounds(0, net.num_layers(), &BoxBounds::from_center_radius(&[0.0, 0.1, 0.2], 0.01));
/// assert_eq!(out.dim(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct Propagator<'a> {
    net: &'a Network,
    domain: Domain,
    views: Vec<Option<AffineView>>,
}

impl<'a> Propagator<'a> {
    /// Caches affine views for `net` under `domain`.
    pub fn new(net: &'a Network, domain: Domain) -> Self {
        let views = net.layers().iter().map(AffineView::from_layer).collect();
        Self { net, domain, views }
    }

    /// The configured domain.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// The network being propagated through.
    pub fn network(&self) -> &Network {
        self.net
    }

    fn step_box(&self, b: &BoxBounds, li: usize) -> BoxBounds {
        match (&self.views[li], &self.net.layers()[li]) {
            (Some(view), _) => b.step_affine(view),
            (None, layer) => b.step(layer),
        }
    }

    fn step_zonotope(&self, z: &Zonotope, li: usize) -> Zonotope {
        match (&self.views[li], &self.net.layers()[li]) {
            (Some(view), _) => z.step_affine(view),
            (None, layer) => z.step(layer),
        }
    }

    fn step_star(&self, s: &StarSet, li: usize) -> StarSet {
        match (&self.views[li], &self.net.layers()[li]) {
            (Some(view), _) => s.step_affine(view),
            (None, layer) => s.step(layer),
        }
    }

    /// Propagates `input` (a box at boundary `from`) through layers
    /// `from+1..=to` and concretizes to per-neuron bounds at boundary `to`.
    ///
    /// # Panics
    ///
    /// Panics if the range or the box dimension is invalid.
    pub fn bounds(&self, from: usize, to: usize, input: &BoxBounds) -> BoxBounds {
        assert!(
            from <= to && to <= self.net.num_layers(),
            "invalid layer range {from}..{to}"
        );
        assert_eq!(
            input.dim(),
            self.net.dim_at(from),
            "input box dimension at boundary {from}"
        );
        match self.domain {
            Domain::Box => {
                let mut b = input.clone();
                for li in from..to {
                    b = self.step_box(&b, li);
                }
                b
            }
            // The richer domains run a box chain alongside and meet the
            // results: both are sound enclosures, so the meet is sound and
            // never looser than plain interval bound propagation (the DeepZ
            // ReLU relaxation alone is not guaranteed to dominate IBP).
            Domain::Zonotope => {
                let mut z = Zonotope::from_box(input);
                let mut b = input.clone();
                for li in from..to {
                    z = self.step_zonotope(&z, li);
                    b = self.step_box(&b, li);
                }
                z.bounds().meet(&b)
            }
            Domain::Poly => {
                let poly =
                    crate::poly::PolyAnalysis::run(self.net, from, to, input).output_bounds();
                let mut b = input.clone();
                for li in from..to {
                    b = self.step_box(&b, li);
                }
                poly.meet(&b)
            }
            Domain::Star => {
                let mut s = StarSet::from_box(input);
                let mut b = input.clone();
                for li in from..to {
                    s = self.step_star(&s, li);
                    b = self.step_box(&b, li);
                }
                s.bounds().meet(&b)
            }
        }
    }
}

/// One-shot convenience wrapper around [`Propagator`]: bounds of
/// `G^{from+1→to}(input)`.
///
/// # Panics
///
/// Panics if the range or the box dimension is invalid.
pub fn propagate_bounds(
    net: &Network,
    from: usize,
    to: usize,
    input: &BoxBounds,
    domain: Domain,
) -> BoxBounds {
    Propagator::new(net, domain).bounds(from, to, input)
}

#[cfg(test)]
mod tests {
    use super::*;
    use napmon_nn::{Activation, LayerSpec, Network};
    use napmon_tensor::Prng;
    use proptest::prelude::*;

    fn sample_net(seed: u64) -> Network {
        Network::seeded(
            seed,
            3,
            &[
                LayerSpec::dense(6, Activation::Relu),
                LayerSpec::dense(5, Activation::Relu),
                LayerSpec::dense(2, Activation::Identity),
            ],
        )
    }

    #[test]
    fn zero_radius_box_tracks_concrete_point() {
        let net = sample_net(1);
        let x = [0.2, -0.4, 0.6];
        let y = net.forward(&x);
        for domain in Domain::ALL {
            let out = propagate_bounds(
                &net,
                0,
                net.num_layers(),
                &BoxBounds::from_point(&x),
                domain,
            );
            assert!(out.contains(&y), "{domain}: concrete output escaped");
            assert!(
                out.mean_width() < 1e-6,
                "{domain}: width {}",
                out.mean_width()
            );
        }
    }

    #[test]
    fn all_domains_contain_perturbed_images() {
        let net = sample_net(2);
        let mut rng = Prng::seed(77);
        let center = [0.1, 0.3, -0.2];
        let delta = 0.15;
        let input = BoxBounds::from_center_radius(&center, delta);
        for domain in Domain::ALL {
            let out = propagate_bounds(&net, 0, net.num_layers(), &input, domain);
            for _ in 0..400 {
                let x: Vec<f64> = center
                    .iter()
                    .map(|&c| rng.uniform(c - delta, c + delta))
                    .collect();
                assert!(
                    out.contains(&net.forward(&x)),
                    "{domain}: perturbed image escaped"
                );
            }
        }
    }

    #[test]
    fn tighter_domains_are_no_looser() {
        let net = sample_net(3);
        let input = BoxBounds::from_center_radius(&[0.0, 0.1, -0.1], 0.2);
        let wb = propagate_bounds(&net, 0, net.num_layers(), &input, Domain::Box).mean_width();
        let wz = propagate_bounds(&net, 0, net.num_layers(), &input, Domain::Zonotope).mean_width();
        let ws = propagate_bounds(&net, 0, net.num_layers(), &input, Domain::Star).mean_width();
        assert!(wz <= wb + 1e-9, "zonotope {wz} vs box {wb}");
        assert!(ws <= wb + 1e-6, "star {ws} vs box {wb}");
    }

    #[test]
    fn mid_boundary_propagation_matches_prefix_semantics() {
        // Perturbation injected at boundary 2 (after the first activation).
        let net = sample_net(4);
        let x = [0.5, -0.5, 0.25];
        let mid = net.forward_prefix(&x, 2);
        let input = BoxBounds::from_center_radius(&mid, 0.05);
        let out = propagate_bounds(&net, 2, net.num_layers(), &input, Domain::Box);
        let mut rng = Prng::seed(11);
        for _ in 0..200 {
            let pert: Vec<f64> = mid
                .iter()
                .map(|&m| rng.uniform(m - 0.05, m + 0.05))
                .collect();
            assert!(out.contains(&net.forward_range(&pert, 2, net.num_layers())));
        }
    }

    #[test]
    fn propagator_reuse_equals_one_shot() {
        let net = sample_net(5);
        let prop = Propagator::new(&net, Domain::Box);
        let input = BoxBounds::from_center_radius(&[0.1, 0.1, 0.1], 0.02);
        assert_eq!(
            prop.bounds(0, net.num_layers(), &input),
            propagate_bounds(&net, 0, net.num_layers(), &input, Domain::Box)
        );
    }

    #[test]
    fn conv_pool_network_propagates_under_all_domains() {
        use napmon_nn::network::NetworkBuilder;
        let net = NetworkBuilder::image(3, 1, 6, 6)
            .conv(2, 3, 1, 1, Activation::Relu)
            .unwrap()
            .maxpool(2, 2)
            .unwrap()
            .dense(4, Activation::Relu)
            .dense(2, Activation::Identity)
            .build()
            .unwrap();
        let mut rng = Prng::seed(13);
        let center: Vec<f64> = rng.uniform_vec(36, 0.0, 1.0);
        let input = BoxBounds::from_center_radius(&center, 0.05);
        for domain in Domain::ALL {
            let out = propagate_bounds(&net, 0, net.num_layers(), &input, domain);
            for _ in 0..100 {
                let x: Vec<f64> = center
                    .iter()
                    .map(|&c| rng.uniform(c - 0.05, c + 0.05))
                    .collect();
                assert!(
                    out.contains(&net.forward(&x)),
                    "{domain}: conv image escaped"
                );
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn random_networks_random_points_stay_enclosed(
            seed in 0u64..5000,
            cx in -1.0..1.0f64,
            cy in -1.0..1.0f64,
            cz in -1.0..1.0f64,
            delta in 0.0..0.3f64,
            t0 in -1.0..1.0f64,
            t1 in -1.0..1.0f64,
            t2 in -1.0..1.0f64,
        ) {
            let net = sample_net(seed);
            let center = [cx, cy, cz];
            let x = [cx + t0 * delta, cy + t1 * delta, cz + t2 * delta];
            let input = BoxBounds::from_center_radius(&center, delta);
            let y = net.forward(&x);
            for domain in Domain::ALL {
                let out = propagate_bounds(&net, 0, net.num_layers(), &input, domain);
                prop_assert!(out.contains(&y), "{} failed containment", domain);
            }
        }
    }
}
