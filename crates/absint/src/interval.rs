//! Scalar intervals with outward-rounded arithmetic.
//!
//! IEEE-754 binary operations are correctly rounded, so for any op `∘`,
//! the true real result of `a ∘ b` lies within one ULP of the f64 result.
//! Nudging the computed lower bound down and upper bound up by one ULP
//! therefore yields an enclosure of the exact real value. This is what
//! makes the box domain *provably* sound rather than "sound up to float
//! noise" — the distinction the paper's robustness guarantee (Lemma 1)
//! ultimately rests on.

use serde::{Deserialize, Serialize};

/// Rounds a computed lower bound downward by one ULP.
#[inline]
pub fn round_down(x: f64) -> f64 {
    if x.is_finite() {
        x.next_down()
    } else {
        x
    }
}

/// Rounds a computed upper bound upward by one ULP.
#[inline]
pub fn round_up(x: f64) -> f64 {
    if x.is_finite() {
        x.next_up()
    } else {
        x
    }
}

/// A closed interval `[lo, hi]` of reals.
///
/// The arithmetic methods round outward, so results *enclose* the exact
/// real-arithmetic image of the operands.
///
/// ```
/// use napmon_absint::Interval;
/// let a = Interval::new(1.0, 2.0);
/// let b = Interval::new(-1.0, 3.0);
/// let s = a.add(b);
/// assert!(s.lo() <= 0.0 && s.hi() >= 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interval {
    lo: f64,
    hi: f64,
}

impl Interval {
    /// Creates `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is NaN.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(!lo.is_nan() && !hi.is_nan(), "interval bound is NaN");
        assert!(lo <= hi, "interval [{lo}, {hi}] is empty");
        Self { lo, hi }
    }

    /// The degenerate interval `[x, x]`.
    pub fn point(x: f64) -> Self {
        Self::new(x, x)
    }

    /// The interval `[c - r, c + r]` with outward rounding.
    ///
    /// # Panics
    ///
    /// Panics if `r < 0` or any input is NaN.
    pub fn center_radius(c: f64, r: f64) -> Self {
        assert!(r >= 0.0, "negative radius {r}");
        Self::new(round_down(c - r), round_up(c + r))
    }

    /// Lower bound.
    pub fn lo(self) -> f64 {
        self.lo
    }

    /// Upper bound.
    pub fn hi(self) -> f64 {
        self.hi
    }

    /// Midpoint (round-to-nearest; not an enclosure).
    pub fn mid(self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// Width `hi - lo`, rounded up.
    pub fn width(self) -> f64 {
        round_up(self.hi - self.lo)
    }

    /// Whether `x` lies in the interval.
    pub fn contains(self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Whether `other` is entirely inside `self`.
    pub fn encloses(self, other: Interval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Outward-rounded sum.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: Interval) -> Interval {
        Interval {
            lo: round_down(self.lo + rhs.lo),
            hi: round_up(self.hi + rhs.hi),
        }
    }

    /// Outward-rounded difference.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: Interval) -> Interval {
        Interval {
            lo: round_down(self.lo - rhs.hi),
            hi: round_up(self.hi - rhs.lo),
        }
    }

    /// Outward-rounded product with a scalar.
    pub fn scale(self, k: f64) -> Interval {
        let (a, b) = (k * self.lo, k * self.hi);
        if a <= b {
            Interval {
                lo: round_down(a),
                hi: round_up(b),
            }
        } else {
            Interval {
                lo: round_down(b),
                hi: round_up(a),
            }
        }
    }

    /// Outward-rounded addition of a scalar.
    pub fn shift(self, k: f64) -> Interval {
        Interval {
            lo: round_down(self.lo + k),
            hi: round_up(self.hi + k),
        }
    }

    /// Outward-rounded interval product.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Interval) -> Interval {
        let candidates = [
            self.lo * rhs.lo,
            self.lo * rhs.hi,
            self.hi * rhs.lo,
            self.hi * rhs.hi,
        ];
        let lo = candidates.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = candidates.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Interval {
            lo: round_down(lo),
            hi: round_up(hi),
        }
    }

    /// Image under a monotone non-decreasing function.
    ///
    /// Sound only for monotone `f` (all activations in `napmon-nn` qualify);
    /// `f` itself is evaluated in round-to-nearest and then rounded outward.
    pub fn map_monotone(self, f: impl Fn(f64) -> f64) -> Interval {
        Interval {
            lo: round_down(f(self.lo)),
            hi: round_up(f(self.hi)),
        }
    }

    /// Union (smallest interval containing both).
    pub fn hull(self, rhs: Interval) -> Interval {
        Interval {
            lo: self.lo.min(rhs.lo),
            hi: self.hi.max(rhs.hi),
        }
    }

    /// Maximum of two intervals (elementwise monotone in both arguments).
    pub fn max(self, rhs: Interval) -> Interval {
        Interval {
            lo: self.lo.max(rhs.lo),
            hi: self.hi.max(rhs.hi),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn point_contains_itself() {
        let p = Interval::point(1.5);
        assert!(p.contains(1.5));
        assert!(p.width() <= f64::MIN_POSITIVE, "width {}", p.width());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn inverted_bounds_panic() {
        Interval::new(1.0, 0.0);
    }

    #[test]
    fn center_radius_encloses_exact_bounds() {
        let iv = Interval::center_radius(0.1, 0.05);
        assert!(iv.lo() <= 0.1 - 0.05);
        assert!(iv.hi() >= 0.1 + 0.05);
    }

    #[test]
    fn add_is_outward_rounded() {
        let a = Interval::point(0.1);
        let b = Interval::point(0.2);
        let s = a.add(b);
        // 0.1 + 0.2 is not representable; enclosure must be strict.
        assert!(s.lo() < 0.1 + 0.2 && 0.1 + 0.2 < s.hi());
        assert!(s.lo() < s.hi());
    }

    #[test]
    fn scale_handles_negative_factor() {
        let iv = Interval::new(1.0, 2.0).scale(-3.0);
        assert!(iv.lo() <= -6.0 && iv.hi() >= -3.0);
    }

    #[test]
    fn mul_covers_sign_combinations() {
        let a = Interval::new(-2.0, 3.0);
        let b = Interval::new(-5.0, 1.0);
        let p = a.mul(b);
        assert!(p.lo() <= -15.0 && p.hi() >= 10.0);
    }

    #[test]
    fn map_monotone_with_relu() {
        let iv = Interval::new(-1.0, 2.0).map_monotone(|x| x.max(0.0));
        assert!(iv.lo() <= 0.0 && iv.hi() >= 2.0);
    }

    #[test]
    fn hull_and_max() {
        let a = Interval::new(0.0, 1.0);
        let b = Interval::new(2.0, 3.0);
        assert!(a.hull(b).encloses(a) && a.hull(b).encloses(b));
        let m = a.max(b);
        assert_eq!((m.lo(), m.hi()), (2.0, 3.0));
    }

    #[test]
    fn rounding_preserves_infinities() {
        assert_eq!(round_down(f64::NEG_INFINITY), f64::NEG_INFINITY);
        assert_eq!(round_up(f64::INFINITY), f64::INFINITY);
    }

    proptest! {
        #[test]
        fn add_encloses_sampled_sums(
            (al, aw) in (-1e6..1e6f64, 0.0..10.0f64),
            (bl, bw) in (-1e6..1e6f64, 0.0..10.0f64),
            (ta, tb) in (0.0..=1.0f64, 0.0..=1.0f64),
        ) {
            let a = Interval::new(al, al + aw);
            let b = Interval::new(bl, bl + bw);
            let s = a.add(b);
            let xa = al + ta * aw;
            let xb = bl + tb * bw;
            prop_assert!(s.contains(xa + xb));
        }

        #[test]
        fn mul_encloses_sampled_products(
            (al, aw) in (-100.0..100.0f64, 0.0..10.0f64),
            (bl, bw) in (-100.0..100.0f64, 0.0..10.0f64),
            (ta, tb) in (0.0..=1.0f64, 0.0..=1.0f64),
        ) {
            let a = Interval::new(al, al + aw);
            let b = Interval::new(bl, bl + bw);
            let p = a.mul(b);
            prop_assert!(p.contains((al + ta * aw) * (bl + tb * bw)));
        }

        #[test]
        fn scale_encloses_sampled_points(
            (lo, w) in (-100.0..100.0f64, 0.0..10.0f64),
            k in -50.0..50.0f64,
            t in 0.0..=1.0f64,
        ) {
            let iv = Interval::new(lo, lo + w).scale(k);
            prop_assert!(iv.contains(k * (lo + t * w)));
        }
    }
}
