//! The zonotope domain: affine forms with shared noise symbols.
//!
//! A zonotope represents the set
//! `{ c + Σ_s g_s ε_s + e ⊙ η | ε_s ∈ [-1,1], η ∈ [-1,1]^d }`
//! where the `ε_s` are *shared* noise symbols (tracking correlations
//! introduced by affine layers) and `e ≥ 0` is a per-dimension *private*
//! deviation absorbing activation relaxations and floating-point rounding
//! slack. Affine layers are exact (up to the tracked rounding slack);
//! piecewise-linear activations use the standard minimal-area relaxation
//! (DeepZ); smooth activations and pooling fall back to interval
//! collapses, which is sound by monotonicity.

use crate::affine::AffineView;
use crate::boxdom::BoxBounds;
use crate::interval::{round_down, round_up};
use napmon_nn::{Activation, Layer, MaxPool2d};

/// A zonotope with private per-dimension deviations.
#[derive(Debug, Clone, PartialEq)]
pub struct Zonotope {
    /// Center point, one entry per dimension.
    center: Vec<f64>,
    /// Shared generators: `generators[s][dim]` is the coefficient of noise
    /// symbol `s` in the given dimension.
    generators: Vec<Vec<f64>>,
    /// Private non-negative deviation per dimension.
    error: Vec<f64>,
}

impl Zonotope {
    /// Builds the zonotope enclosing a box: one shared symbol per
    /// dimension with the box's radius as coefficient.
    pub fn from_box(b: &BoxBounds) -> Self {
        let d = b.dim();
        let mut center = Vec::with_capacity(d);
        let mut error = vec![0.0; d];
        let mut generators = Vec::with_capacity(d);
        for i in 0..d {
            let (l, h) = (b.lo()[i], b.hi()[i]);
            let c = 0.5 * (l + h);
            let r = 0.5 * (h - l);
            // Mid/rad computed in round-to-nearest: cover the slack.
            let slack = round_up(round_up((c - l).abs().max((h - c).abs())) - r).max(0.0);
            center.push(c);
            error[i] = slack;
            let mut g = vec![0.0; d];
            g[i] = r;
            generators.push(g);
        }
        Self {
            center,
            generators,
            error,
        }
    }

    /// Number of dimensions.
    pub fn dim(&self) -> usize {
        self.center.len()
    }

    /// Number of shared noise symbols.
    pub fn num_symbols(&self) -> usize {
        self.generators.len()
    }

    /// Sound per-dimension bounds (outward-rounded concretization).
    pub fn bounds(&self) -> BoxBounds {
        let d = self.dim();
        let mut lo = Vec::with_capacity(d);
        let mut hi = Vec::with_capacity(d);
        for i in 0..d {
            let mut dev = self.error[i];
            for g in &self.generators {
                dev = round_up(dev + g[i].abs());
            }
            lo.push(round_down(self.center[i] - dev));
            hi.push(round_up(self.center[i] + dev));
        }
        BoxBounds::new(lo, hi)
    }

    /// Propagates through one affine view; rounding slack goes to `error`.
    pub(crate) fn step_affine(&self, view: &AffineView) -> Zonotope {
        assert_eq!(
            self.dim(),
            view.in_dim(),
            "zonotope affine: dimension mismatch"
        );
        let out = view.out_dim();
        let mut center = Vec::with_capacity(out);
        let mut error = vec![0.0; out];

        // Center: directed rounding to capture the true affine image.
        #[allow(clippy::needless_range_loop)] // r also indexes `error`
        for r in 0..out {
            let b = view.bias()[r];
            let (mut alo, mut ahi) = (b, b);
            for &(i, w) in view.row(r) {
                let p = w * self.center[i];
                alo = round_down(alo + round_down(p));
                ahi = round_up(ahi + round_up(p));
            }
            let mid = 0.5 * (alo + ahi);
            center.push(mid);
            error[r] = round_up(round_up(ahi - mid).max(round_up(mid - alo)));
        }

        // Shared generators: linear part only, slack into error.
        let mut generators = Vec::with_capacity(self.generators.len());
        for g in &self.generators {
            let mut out_g = vec![0.0; out];
            for (r, og) in out_g.iter_mut().enumerate() {
                let (mut alo, mut ahi) = (0.0, 0.0);
                for &(i, w) in view.row(r) {
                    let p = w * g[i];
                    alo = round_down(alo + round_down(p));
                    ahi = round_up(ahi + round_up(p));
                }
                let mid = 0.5 * (alo + ahi);
                *og = mid;
                error[r] = round_up(error[r] + round_up(ahi - mid).max(round_up(mid - alo)));
            }
            generators.push(out_g);
        }

        // Private deviations: |W| e, rounded up.
        for (r, err) in error.iter_mut().enumerate() {
            let mut acc = 0.0;
            for &(i, w) in view.row(r) {
                acc = round_up(acc + round_up(w.abs() * self.error[i]));
            }
            *err = round_up(*err + acc);
        }

        Zonotope {
            center,
            generators,
            error,
        }
    }

    /// Collapses dimension `i` to the interval `[l, h]` (center + private
    /// deviation, shared coefficients zeroed).
    fn collapse_dim(&mut self, i: usize, l: f64, h: f64) {
        self.center[i] = 0.5 * (l + h);
        let rad = round_up(round_up(h - self.center[i]).max(round_up(self.center[i] - l)));
        self.error[i] = rad.max(0.0);
        for g in &mut self.generators {
            g[i] = 0.0;
        }
    }

    /// Propagates through an activation.
    ///
    /// ReLU and leaky ReLU use the minimal-area linear relaxation; other
    /// activations collapse each dimension to its (exact, monotone) interval
    /// image.
    pub(crate) fn step_activation(&self, act: Activation) -> Zonotope {
        let pre = self.bounds();
        let mut z = self.clone();
        match act {
            Activation::Identity => {}
            Activation::Relu => {
                for i in 0..z.dim() {
                    let (l, u) = (pre.lo()[i], pre.hi()[i]);
                    if u <= 0.0 {
                        z.collapse_dim(i, 0.0, 0.0);
                    } else if l >= 0.0 {
                        // Exact.
                    } else {
                        // y = λ x + μ ± μ with λ ∈ [0,1] arbitrary; the
                        // enclosure below is valid for any such λ, so the
                        // rounding of λ itself cannot break soundness.
                        let lambda = (u / (u - l)).clamp(0.0, 1.0);
                        let m = round_up((-lambda * l).max((1.0 - lambda) * u)).max(0.0);
                        let mu = round_up(0.5 * m);
                        for g in &mut z.generators {
                            g[i] *= lambda;
                        }
                        // error picks up μ (half the offset range); center the other half.
                        z.error[i] = round_up(round_up(lambda * z.error[i]) + mu);
                        z.center[i] = lambda * z.center[i] + mu;
                        // Account for rounding of center multiplication.
                        z.error[i] =
                            round_up(z.error[i] + f64::EPSILON * (z.center[i].abs() + 1.0));
                    }
                }
            }
            Activation::LeakyRelu { alpha } => {
                for i in 0..z.dim() {
                    let (l, u) = (pre.lo()[i], pre.hi()[i]);
                    if u <= 0.0 || l >= 0.0 {
                        // Exact linear on this side: scale by alpha or 1.
                        let k = if u <= 0.0 { alpha } else { 1.0 };
                        if k != 1.0 {
                            z.center[i] *= k;
                            z.error[i] =
                                round_up(z.error[i] * k + f64::EPSILON * (z.center[i].abs() + 1.0));
                            for g in &mut z.generators {
                                g[i] *= k;
                            }
                        }
                    } else {
                        let lambda = ((u - alpha * l) / (u - l)).clamp(alpha, 1.0);
                        let m =
                            round_up(((lambda - alpha) * (-l)).max((1.0 - lambda) * u)).max(0.0);
                        let mu = round_up(0.5 * m);
                        for g in &mut z.generators {
                            g[i] *= lambda;
                        }
                        z.error[i] = round_up(round_up(lambda * z.error[i]) + mu);
                        z.center[i] = lambda * z.center[i] + mu;
                        z.error[i] =
                            round_up(z.error[i] + f64::EPSILON * (z.center[i].abs() + 1.0));
                    }
                }
            }
            Activation::Sigmoid | Activation::Tanh => {
                for i in 0..z.dim() {
                    let l = round_down(act.apply(pre.lo()[i]));
                    let h = round_up(act.apply(pre.hi()[i]));
                    z.collapse_dim(i, l, h);
                }
            }
        }
        z
    }

    /// Propagates through max pooling by interval collapse (sound; the
    /// window max of interval bounds encloses the true max).
    pub(crate) fn step_maxpool(&self, p: &MaxPool2d) -> Zonotope {
        let pre = self.bounds().step_maxpool(p);
        let d = pre.dim();
        let mut z = Zonotope {
            center: vec![0.0; d],
            generators: Vec::new(),
            error: vec![0.0; d],
        };
        for i in 0..d {
            z.collapse_dim(i, pre.lo()[i], pre.hi()[i]);
        }
        z
    }

    /// Propagates through one network layer.
    ///
    /// # Panics
    ///
    /// Panics if the zonotope dimension does not match the layer input.
    pub fn step(&self, layer: &Layer) -> Zonotope {
        if let Some(view) = AffineView::from_layer(layer) {
            return self.step_affine(&view);
        }
        match layer {
            Layer::MaxPool2d(p) => self.step_maxpool(p),
            Layer::Activation(a) => self.step_activation(*a),
            _ => unreachable!("non-affine layers are pooling or activation"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use napmon_nn::{Dense, LayerSpec, Network};
    use napmon_tensor::{Matrix, Prng};

    #[test]
    fn from_box_bounds_round_trip() {
        let b = BoxBounds::new(vec![-1.0, 2.0], vec![1.0, 4.0]);
        let z = Zonotope::from_box(&b);
        let back = z.bounds();
        assert!(back.encloses(&b));
        // And is tight to within rounding.
        assert!(back.mean_width() <= b.mean_width() + 1e-12);
    }

    #[test]
    fn affine_step_tracks_correlation() {
        // y0 = x0 + x1, y1 = x0 - x1 over the unit box: the zonotope knows
        // y0 + y1 = 2 x0 ∈ [-2, 2] even though each y spans [-2, 2].
        let d = Dense::new(
            Matrix::from_rows(&[&[1.0, 1.0], &[1.0, -1.0]]),
            vec![0.0, 0.0],
        )
        .unwrap();
        let b = BoxBounds::new(vec![-1.0, -1.0], vec![1.0, 1.0]);
        let z = Zonotope::from_box(&b).step(&Layer::Dense(d.clone()));
        // Apply the summing map (1,1): bounds must stay ~[-2,2], not [-4,4].
        let sum = Dense::new(Matrix::from_rows(&[&[1.0, 1.0]]), vec![0.0]).unwrap();
        let s = z.step(&Layer::Dense(sum));
        let sb = s.bounds();
        assert!(sb.hi()[0] <= 2.0 + 1e-9, "upper {}", sb.hi()[0]);
        assert!(sb.lo()[0] >= -2.0 - 1e-9, "lower {}", sb.lo()[0]);
        // The plain box domain cannot see this: it gives [-4, 4].
    }

    #[test]
    fn relu_relaxation_contains_samples_and_beats_nothing() {
        let mut rng = Prng::seed(5);
        let net = Network::seeded(
            3,
            2,
            &[
                LayerSpec::dense(6, Activation::Relu),
                LayerSpec::dense(2, Activation::Identity),
            ],
        );
        let center = [0.3, -0.2];
        let input = BoxBounds::from_center_radius(&center, 0.2);
        let mut z = Zonotope::from_box(&input);
        for layer in net.layers() {
            z = z.step(layer);
        }
        let out = z.bounds();
        for _ in 0..500 {
            let x: Vec<f64> = (0..2)
                .map(|i| rng.uniform(center[i] - 0.2, center[i] + 0.2))
                .collect();
            assert!(
                out.contains(&net.forward(&x)),
                "sample escaped zonotope bounds"
            );
        }
    }

    #[test]
    fn zonotope_no_looser_than_box_on_affine_chain() {
        // Without nonlinearities the zonotope is exact, the box is not.
        let l1 = Dense::new(
            Matrix::from_rows(&[&[1.0, 1.0], &[1.0, -1.0]]),
            vec![0.0, 0.0],
        )
        .unwrap();
        let l2 = Dense::new(
            Matrix::from_rows(&[&[0.5, 0.5], &[0.5, -0.5]]),
            vec![0.0, 0.0],
        )
        .unwrap();
        let input = BoxBounds::new(vec![-1.0, -1.0], vec![1.0, 1.0]);
        let zb = Zonotope::from_box(&input)
            .step(&Layer::Dense(l1.clone()))
            .step(&Layer::Dense(l2.clone()))
            .bounds();
        let bb = input.step(&Layer::Dense(l1)).step(&Layer::Dense(l2));
        // (l2 ∘ l1)(x) = (x0, x1): exact range [-1,1]^2.
        assert!(zb.hi()[0] <= 1.0 + 1e-9 && zb.hi()[1] <= 1.0 + 1e-9);
        assert!(bb.hi()[0] >= 2.0 - 1e-9, "box is loose by design here");
        assert!(zb.mean_width() < bb.mean_width());
    }

    #[test]
    fn sigmoid_collapse_is_sound() {
        let mut rng = Prng::seed(6);
        let net = Network::seeded(
            8,
            2,
            &[
                LayerSpec::dense(4, Activation::Sigmoid),
                LayerSpec::dense(1, Activation::Tanh),
            ],
        );
        let input = BoxBounds::from_center_radius(&[0.1, 0.4], 0.3);
        let mut z = Zonotope::from_box(&input);
        for layer in net.layers() {
            z = z.step(layer);
        }
        let out = z.bounds();
        for _ in 0..300 {
            let x = vec![rng.uniform(-0.2, 0.4), rng.uniform(0.1, 0.7)];
            assert!(out.contains(&net.forward(&x)));
        }
    }

    #[test]
    fn maxpool_collapse_is_sound() {
        let p = MaxPool2d::new(1, 2, 2, 2, 2).unwrap();
        let input = BoxBounds::new(vec![0.0, -1.0, 2.0, -3.0], vec![1.0, 5.0, 2.5, 0.0]);
        let z = Zonotope::from_box(&input).step(&Layer::MaxPool2d(p));
        let out = z.bounds();
        assert!(out.lo()[0] <= 2.0 && out.hi()[0] >= 5.0);
    }

    #[test]
    fn stable_relu_dims_pass_through_exactly() {
        let b = BoxBounds::new(vec![1.0, -3.0], vec![2.0, -1.0]);
        let z = Zonotope::from_box(&b).step_activation(Activation::Relu);
        let out = z.bounds();
        assert!(out.lo()[0] <= 1.0 && out.hi()[0] >= 2.0);
        assert!(
            out.hi()[0] - out.lo()[0] < 1.0 + 1e-9,
            "positive dim stays tight"
        );
        assert!(out.lo()[1].abs() <= 1e-300 && out.hi()[1].abs() <= 1e-300);
    }
}
