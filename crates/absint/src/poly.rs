//! A DeepPoly-style polyhedral domain with back-substitution.
//!
//! Every neuron of every boundary gets one symbolic *lower* and one
//! symbolic *upper* affine bound expressed over the previous boundary
//! (affine layers are exact; ReLU gets the classic triangle upper bound
//! and a slope-0/1 lower bound). Concrete bounds are obtained by
//! back-substituting the symbolic bounds boundary by boundary down to the
//! input box — which is what makes the relaxation tighter than layer-local
//! interval propagation: cancellations across layers are kept symbolic
//! until the very end.
//!
//! Like the star domain, the arithmetic here is plain `f64` without
//! directed rounding; results are inflated by a small epsilon
//! ([`POLY_EPS`]) and the [`crate::propagate::Propagator`] meets them with
//! the rigorously-rounded box chain. Randomized containment tests cover
//! the construction (see below and `crates/absint/tests`).

use crate::affine::AffineView;
use crate::boxdom::BoxBounds;
use crate::interval::{round_down, round_up};
use napmon_nn::{Activation, Layer, Network};

/// Relative/absolute inflation applied to back-substituted bounds.
pub const POLY_EPS: f64 = 1e-9;

/// An affine expression `coeffs · x + constant` over some boundary.
#[derive(Debug, Clone, PartialEq)]
struct LinExpr {
    coeffs: Vec<f64>,
    constant: f64,
}

impl LinExpr {
    fn constant(c: f64, width: usize) -> Self {
        Self {
            coeffs: vec![0.0; width],
            constant: c,
        }
    }

    fn unit(i: usize, width: usize) -> Self {
        let mut coeffs = vec![0.0; width];
        coeffs[i] = 1.0;
        Self {
            coeffs,
            constant: 0.0,
        }
    }
}

/// Symbolic bounds of one boundary's neurons over the previous boundary.
#[derive(Debug, Clone)]
struct Relaxation {
    /// `y_j ≥ lower[j](x_prev)`.
    lower: Vec<LinExpr>,
    /// `y_j ≤ upper[j](x_prev)`.
    upper: Vec<LinExpr>,
}

/// The DeepPoly-style analyzer for one network slice.
#[derive(Debug, Clone)]
pub struct PolyAnalysis {
    /// Relaxations per layer (index i relates boundary `from+i+1` to
    /// boundary `from+i`).
    relaxations: Vec<Relaxation>,
    input: BoxBounds,
}

impl PolyAnalysis {
    /// Runs the analysis over layers `from+1..=to` of `net` with the given
    /// input box at boundary `from`, computing relaxations layer by layer
    /// (each activation relaxation needs concrete pre-activation bounds,
    /// obtained by back-substitution through everything built so far).
    ///
    /// # Panics
    ///
    /// Panics if the range or box dimension is invalid.
    pub fn run(net: &Network, from: usize, to: usize, input: &BoxBounds) -> Self {
        assert!(
            from <= to && to <= net.num_layers(),
            "invalid layer range {from}..{to}"
        );
        assert_eq!(
            input.dim(),
            net.dim_at(from),
            "input box dimension at boundary {from}"
        );
        let mut analysis = Self {
            relaxations: Vec::with_capacity(to - from),
            input: input.clone(),
        };
        for li in from..to {
            let layer = &net.layers()[li];
            let in_dim = net.dim_at(li);
            let rel = if let Some(view) = AffineView::from_layer(layer) {
                Self::affine_relaxation(&view)
            } else {
                match layer {
                    Layer::Activation(a) => {
                        let pre = analysis.boundary_bounds(analysis.relaxations.len());
                        Self::activation_relaxation(*a, &pre)
                    }
                    Layer::MaxPool2d(p) => {
                        let pre = analysis.boundary_bounds(analysis.relaxations.len());
                        let post = pre.step_maxpool(p);
                        Self::constant_relaxation(&post, in_dim)
                    }
                    _ => unreachable!("non-affine layers are pooling or activation"),
                }
            };
            analysis.relaxations.push(rel);
        }
        analysis
    }

    fn affine_relaxation(view: &AffineView) -> Relaxation {
        let exprs: Vec<LinExpr> = (0..view.out_dim())
            .map(|r| {
                let mut coeffs = vec![0.0; view.in_dim()];
                for &(i, w) in view.row(r) {
                    coeffs[i] = w;
                }
                LinExpr {
                    coeffs,
                    constant: view.bias()[r],
                }
            })
            .collect();
        Relaxation {
            lower: exprs.clone(),
            upper: exprs,
        }
    }

    fn activation_relaxation(act: Activation, pre: &BoxBounds) -> Relaxation {
        let d = pre.dim();
        let mut lower = Vec::with_capacity(d);
        let mut upper = Vec::with_capacity(d);
        for j in 0..d {
            let (l, u) = (pre.lo()[j], pre.hi()[j]);
            match act {
                Activation::Identity => {
                    lower.push(LinExpr::unit(j, d));
                    upper.push(LinExpr::unit(j, d));
                }
                Activation::Relu => {
                    if u <= 0.0 {
                        lower.push(LinExpr::constant(0.0, d));
                        upper.push(LinExpr::constant(0.0, d));
                    } else if l >= 0.0 {
                        lower.push(LinExpr::unit(j, d));
                        upper.push(LinExpr::unit(j, d));
                    } else {
                        // Upper: the triangle chord y ≤ λ (x − l).
                        let lambda = u / (u - l);
                        let mut up = LinExpr::unit(j, d);
                        up.coeffs[j] = lambda;
                        up.constant = round_up(-lambda * l);
                        upper.push(up);
                        // Lower: y ≥ αx with α ∈ {0, 1} (area heuristic).
                        let alpha = if u >= -l { 1.0 } else { 0.0 };
                        let mut lo = LinExpr::unit(j, d);
                        lo.coeffs[j] = alpha;
                        lower.push(lo);
                    }
                }
                Activation::LeakyRelu { alpha: slope } => {
                    if u <= 0.0 {
                        let mut e = LinExpr::unit(j, d);
                        e.coeffs[j] = slope;
                        lower.push(e.clone());
                        upper.push(e);
                    } else if l >= 0.0 {
                        lower.push(LinExpr::unit(j, d));
                        upper.push(LinExpr::unit(j, d));
                    } else {
                        // Chord through (l, slope·l) and (u, u):
                        // y ≤ λ x + (slope − λ) l  with  λ = (u − slope·l)/(u − l).
                        let lambda = ((u - slope * l) / (u - l)).clamp(slope, 1.0);
                        let mut up = LinExpr::unit(j, d);
                        up.coeffs[j] = lambda;
                        up.constant = round_up((slope - lambda) * l);
                        upper.push(up);
                        let pick = if u >= -l { 1.0 } else { slope };
                        let mut lo = LinExpr::unit(j, d);
                        lo.coeffs[j] = pick;
                        lower.push(lo);
                    }
                }
                Activation::Sigmoid | Activation::Tanh => {
                    // Monotone interval collapse (sound, constant bounds).
                    lower.push(LinExpr::constant(round_down(act.apply(l)), d));
                    upper.push(LinExpr::constant(round_up(act.apply(u)), d));
                }
            }
        }
        Relaxation { lower, upper }
    }

    fn constant_relaxation(post: &BoxBounds, in_dim: usize) -> Relaxation {
        Relaxation {
            lower: post
                .lo()
                .iter()
                .map(|&l| LinExpr::constant(l, in_dim))
                .collect(),
            upper: post
                .hi()
                .iter()
                .map(|&u| LinExpr::constant(u, in_dim))
                .collect(),
        }
    }

    /// Concrete bounds of the boundary after `depth` analyzed layers, via
    /// back-substitution to the input box.
    fn boundary_bounds(&self, depth: usize) -> BoxBounds {
        let width = if depth == 0 {
            self.input.dim()
        } else {
            self.relaxations[depth - 1].lower.len()
        };
        let mut lo = Vec::with_capacity(width);
        let mut hi = Vec::with_capacity(width);
        for j in 0..width {
            lo.push(self.bound_one(depth, j, false));
            hi.push(self.bound_one(depth, j, true));
        }
        // Floating-point slack can invert near-degenerate bounds.
        for j in 0..width {
            if lo[j] > hi[j] {
                let mid = 0.5 * (lo[j] + hi[j]);
                lo[j] = mid;
                hi[j] = mid;
            }
        }
        BoxBounds::new(lo, hi)
    }

    /// Back-substitutes one neuron's bound from boundary `depth` to the
    /// input and evaluates over the input box.
    fn bound_one(&self, depth: usize, neuron: usize, want_upper: bool) -> f64 {
        let width = if depth == 0 {
            self.input.dim()
        } else {
            self.relaxations[depth - 1].lower.len()
        };
        let mut expr = LinExpr::unit(neuron, width);
        for level in (0..depth).rev() {
            expr = self.substitute(&expr, level, want_upper);
        }
        // Evaluate over the input box.
        let mut acc = expr.constant;
        for (i, &c) in expr.coeffs.iter().enumerate() {
            if c > 0.0 {
                acc += c * if want_upper {
                    self.input.hi()[i]
                } else {
                    self.input.lo()[i]
                };
            } else if c < 0.0 {
                acc += c * if want_upper {
                    self.input.lo()[i]
                } else {
                    self.input.hi()[i]
                };
            }
        }
        let pad = POLY_EPS * (1.0 + acc.abs());
        if want_upper {
            round_up(acc + pad)
        } else {
            round_down(acc - pad)
        }
    }

    /// Rewrites `expr` (over the output of `level`) into an expression over
    /// the input of `level`, choosing lower/upper relaxations per sign.
    fn substitute(&self, expr: &LinExpr, level: usize, want_upper: bool) -> LinExpr {
        let rel = &self.relaxations[level];
        let in_width = if level == 0 {
            self.input.dim()
        } else {
            self.relaxations[level - 1].lower.len()
        };
        let mut out = LinExpr::constant(expr.constant, in_width);
        for (j, &c) in expr.coeffs.iter().enumerate() {
            if c == 0.0 {
                continue;
            }
            // For an upper bound, positive coefficients take the upper
            // relaxation and negative ones the lower (vice versa for a
            // lower bound).
            let use_upper = (c > 0.0) == want_upper;
            let sub = if use_upper {
                &rel.upper[j]
            } else {
                &rel.lower[j]
            };
            for (i, &sc) in sub.coeffs.iter().enumerate() {
                out.coeffs[i] += c * sc;
            }
            out.constant += c * sub.constant;
        }
        out
    }

    /// Concrete bounds of the final analyzed boundary.
    pub fn output_bounds(&self) -> BoxBounds {
        self.boundary_bounds(self.relaxations.len())
    }
}

/// One-shot DeepPoly bounds of `G^{from+1→to}` over `input`.
///
/// # Panics
///
/// Panics if the range or box dimension is invalid.
pub fn poly_bounds(net: &Network, from: usize, to: usize, input: &BoxBounds) -> BoxBounds {
    PolyAnalysis::run(net, from, to, input).output_bounds()
}

#[cfg(test)]
mod tests {
    use super::*;
    use napmon_nn::{Dense, LayerSpec};
    use napmon_tensor::{Matrix, Prng};

    fn net(seed: u64) -> Network {
        Network::seeded(
            seed,
            3,
            &[
                LayerSpec::dense(8, Activation::Relu),
                LayerSpec::dense(6, Activation::Relu),
                LayerSpec::dense(2, Activation::Identity),
            ],
        )
    }

    #[test]
    fn affine_chain_is_essentially_exact() {
        // Rotate then sum: poly keeps the cancellation that boxes lose.
        let rot = Dense::new(
            Matrix::from_rows(&[&[1.0, 1.0], &[1.0, -1.0]]),
            vec![0.0, 0.0],
        )
        .unwrap();
        let sum = Dense::new(Matrix::from_rows(&[&[1.0, 1.0]]), vec![0.0]).unwrap();
        let net = Network::from_layers(2, vec![Layer::Dense(rot), Layer::Dense(sum)]).unwrap();
        let input = BoxBounds::new(vec![-1.0, -1.0], vec![1.0, 1.0]);
        let out = poly_bounds(&net, 0, 2, &input);
        assert!(out.hi()[0] <= 2.0 + 1e-6, "upper {}", out.hi()[0]);
        assert!(out.lo()[0] >= -2.0 - 1e-6, "lower {}", out.lo()[0]);
    }

    #[test]
    fn contains_concrete_images_through_relu() {
        let net = net(5);
        let mut rng = Prng::seed(6);
        let center = [0.2, -0.3, 0.1];
        let delta = 0.15;
        let input = BoxBounds::from_center_radius(&center, delta);
        let out = poly_bounds(&net, 0, net.num_layers(), &input);
        for _ in 0..500 {
            let x: Vec<f64> = center
                .iter()
                .map(|&c| rng.uniform(c - delta, c + delta))
                .collect();
            assert!(
                out.contains(&net.forward(&x)),
                "concrete image escaped poly bounds"
            );
        }
    }

    #[test]
    fn no_looser_than_box_after_meet_semantics() {
        // Raw poly bounds should usually beat boxes; we assert on a fixed
        // seed where ReLU instability matters.
        let net = net(7);
        let input = BoxBounds::from_center_radius(&[0.1, 0.0, -0.1], 0.25);
        let poly = poly_bounds(&net, 0, net.num_layers(), &input);
        let boxb = {
            let mut b = input.clone();
            for layer in net.layers() {
                b = b.step(layer);
            }
            b
        };
        assert!(
            poly.mean_width() <= boxb.mean_width() + 1e-9,
            "poly {} vs box {}",
            poly.mean_width(),
            boxb.mean_width()
        );
    }

    #[test]
    fn zero_radius_tracks_the_point() {
        let net = net(9);
        let x = [0.3, 0.3, 0.3];
        let out = poly_bounds(&net, 0, net.num_layers(), &BoxBounds::from_point(&x));
        assert!(out.contains(&net.forward(&x)));
        assert!(out.mean_width() < 1e-6);
    }

    #[test]
    fn mid_boundary_slices_work() {
        let net = net(11);
        let x = [0.5, -0.5, 0.0];
        let mid = net.forward_prefix(&x, 2);
        let input = BoxBounds::from_center_radius(&mid, 0.05);
        let out = poly_bounds(&net, 2, net.num_layers(), &input);
        let mut rng = Prng::seed(12);
        for _ in 0..200 {
            let pert: Vec<f64> = mid.iter().map(|&m| m + rng.uniform(-0.05, 0.05)).collect();
            assert!(out.contains(&net.forward_range(&pert, 2, net.num_layers())));
        }
    }

    #[test]
    fn sigmoid_collapse_is_sound() {
        let net = Network::seeded(
            13,
            2,
            &[
                LayerSpec::dense(4, Activation::Sigmoid),
                LayerSpec::dense(1, Activation::Identity),
            ],
        );
        let input = BoxBounds::from_center_radius(&[0.0, 0.0], 0.4);
        let out = poly_bounds(&net, 0, net.num_layers(), &input);
        let mut rng = Prng::seed(14);
        for _ in 0..200 {
            let x = vec![rng.uniform(-0.4, 0.4), rng.uniform(-0.4, 0.4)];
            assert!(out.contains(&net.forward(&x)));
        }
    }

    #[test]
    fn leaky_relu_relaxation_is_sound() {
        let net = Network::seeded(
            15,
            2,
            &[
                LayerSpec::dense(6, Activation::LeakyRelu { alpha: 0.1 }),
                LayerSpec::dense(2, Activation::Identity),
            ],
        );
        let input = BoxBounds::from_center_radius(&[0.1, -0.1], 0.3);
        let out = poly_bounds(&net, 0, net.num_layers(), &input);
        let mut rng = Prng::seed(16);
        for _ in 0..300 {
            let x = vec![rng.uniform(-0.2, 0.4), rng.uniform(-0.4, 0.2)];
            assert!(out.contains(&net.forward(&x)), "leaky relu sample escaped");
        }
    }

    #[test]
    fn maxpool_collapse_is_sound() {
        use napmon_nn::MaxPool2d;
        let p = MaxPool2d::new(1, 2, 2, 2, 2).unwrap();
        let d = Dense::new(Matrix::from_rows(&[&[2.0]]), vec![0.5]).unwrap();
        let net = Network::from_layers(4, vec![Layer::MaxPool2d(p), Layer::Dense(d)]).unwrap();
        let input = BoxBounds::new(vec![0.0, -1.0, 2.0, -3.0], vec![1.0, 5.0, 2.5, 0.0]);
        let out = poly_bounds(&net, 0, 2, &input);
        // max in [2, 5] -> affine: [4.5, 10.5].
        assert!(out.lo()[0] <= 4.5 + 1e-6 && out.hi()[0] >= 10.5 - 1e-6);
    }
}
