//! Abstract interpretation for the perturbation estimate of the paper's
//! Definition 1.
//!
//! Given a point `v` at boundary `kp` of a network and a perturbation budget
//! `Δ` (per-dimension, L∞), the monitors need a *sound* per-neuron bound on
//! everything `G^{kp+1→k}` can produce over the box `[v-Δ, v+Δ]`. The paper
//! names three suitable machineries — boxed abstraction / interval bound
//! propagation [Gowal et al. 2018], zonotopes [AI² , Gehr et al. 2018] and
//! star sets [Tran et al. 2019] — and implements the first; this crate
//! implements all three behind the [`Domain`] selector:
//!
//! - [`BoxBounds`] ([`Domain::Box`]): interval bound propagation with
//!   **outward-rounded** floating-point arithmetic, so the computed bounds
//!   are sound with respect to exact real arithmetic, not merely one
//!   f64 evaluation order. This is the domain monitors use by default, and
//!   the one the "provably" in the paper's title rests on.
//! - [`Zonotope`] ([`Domain::Zonotope`]): affine forms with shared noise
//!   symbols, exact through affine layers, DeepZ-style relaxation at ReLU;
//!   floating-point rounding slack is folded into a fresh noise symbol per
//!   affine layer, keeping the result sound.
//! - [`StarSet`] ([`Domain::Star`]): affine transform of a constrained
//!   symbol box; bounds are computed with an exact-arithmetic-free simplex
//!   LP ([`simplex`]) and inflated by a documented epsilon. Tightest of the
//!   three on unstable ReLU patterns, at LP cost.
//!
//! The single entry point used by `napmon-core` is [`propagate_bounds`].
//!
//! ```
//! use napmon_absint::{propagate_bounds, BoxBounds, Domain};
//! use napmon_nn::{Activation, LayerSpec, Network};
//!
//! let net = Network::seeded(3, 2, &[LayerSpec::dense(4, Activation::Relu)]);
//! let input = BoxBounds::from_center_radius(&[0.2, -0.1], 0.05);
//! let out = propagate_bounds(&net, 0, net.num_layers(), &input, Domain::Box);
//! // The concrete image of the center is inside the bounds.
//! let y = net.forward(&[0.2, -0.1]);
//! assert!(out.contains(&y));
//! ```

pub mod affine;
pub mod boxdom;
pub mod interval;
pub mod poly;
pub mod propagate;
pub mod simplex;
pub mod star;
pub mod zonotope;

pub use boxdom::BoxBounds;
pub use interval::Interval;
pub use poly::{poly_bounds, PolyAnalysis};
pub use propagate::{propagate_bounds, Domain};
pub use simplex::{LpError, LpSolution, Simplex};
pub use star::StarSet;
pub use zonotope::Zonotope;
