//! Cross-domain soundness: randomized containment over mixed-layer
//! networks (dense / conv / max-pool / avg-pool / batch-norm / all
//! activations), for every abstract domain.

use napmon_absint::{propagate_bounds, BoxBounds, Domain};
use napmon_nn::network::NetworkBuilder;
use napmon_nn::{Activation, BatchNorm1d, Layer, Network};
use napmon_tensor::Prng;
use proptest::prelude::*;

/// A conv → maxpool → dense network.
fn conv_net(seed: u64) -> Network {
    NetworkBuilder::image(seed, 1, 6, 6)
        .conv(3, 3, 1, 1, Activation::Relu)
        .unwrap()
        .maxpool(2, 2)
        .unwrap()
        .dense(8, Activation::Relu)
        .dense(2, Activation::Identity)
        .build()
        .unwrap()
}

/// A conv → avgpool → batchnorm → dense network.
fn avg_bn_net(seed: u64) -> Network {
    let base = NetworkBuilder::image(seed, 1, 6, 6)
        .conv(2, 3, 1, 0, Activation::Relu)
        .unwrap()
        .avgpool(2, 2)
        .unwrap()
        .build()
        .unwrap();
    // Splice a frozen batch norm and an output head on top.
    let mut rng = Prng::seed(seed ^ 0xB7);
    let width = base.output_dim();
    let gamma: Vec<f64> = (0..width).map(|_| rng.uniform(0.5, 1.5)).collect();
    let beta: Vec<f64> = (0..width).map(|_| rng.uniform(-0.2, 0.2)).collect();
    let mean: Vec<f64> = (0..width).map(|_| rng.uniform(-0.1, 0.1)).collect();
    let var: Vec<f64> = (0..width).map(|_| rng.uniform(0.5, 2.0)).collect();
    let bn = BatchNorm1d::from_moments(&gamma, &beta, &mean, &var, 1e-5).unwrap();
    let mut layers = base.layers().to_vec();
    layers.push(Layer::BatchNorm(bn));
    layers.push(Layer::Activation(Activation::Tanh));
    Network::from_layers(base.input_dim(), layers).unwrap()
}

#[test]
fn conv_pipeline_containment_all_domains() {
    let net = conv_net(3);
    let mut rng = Prng::seed(31);
    let center: Vec<f64> = rng.uniform_vec(net.input_dim(), 0.0, 1.0);
    let delta = 0.04;
    let input = BoxBounds::from_center_radius(&center, delta);
    for domain in Domain::ALL {
        let out = propagate_bounds(&net, 0, net.num_layers(), &input, domain);
        for _ in 0..150 {
            let x: Vec<f64> = center
                .iter()
                .map(|&c| c + rng.uniform(-delta, delta))
                .collect();
            assert!(
                out.contains(&net.forward(&x)),
                "{domain}: conv pipeline escape"
            );
        }
    }
}

#[test]
fn avgpool_batchnorm_containment_all_domains() {
    let net = avg_bn_net(5);
    let mut rng = Prng::seed(32);
    let center: Vec<f64> = rng.uniform_vec(net.input_dim(), 0.0, 1.0);
    let delta = 0.06;
    let input = BoxBounds::from_center_radius(&center, delta);
    for domain in Domain::ALL {
        let out = propagate_bounds(&net, 0, net.num_layers(), &input, domain);
        for _ in 0..150 {
            let x: Vec<f64> = center
                .iter()
                .map(|&c| c + rng.uniform(-delta, delta))
                .collect();
            assert!(
                out.contains(&net.forward(&x)),
                "{domain}: avg/bn pipeline escape"
            );
        }
    }
}

#[test]
fn avgpool_is_exact_across_domains() {
    // Pure affine chain: every domain's bounds collapse to the exact image
    // width (input width scaled by the averaging weights).
    let net = NetworkBuilder::image(9, 1, 4, 4)
        .avgpool(2, 2)
        .unwrap()
        .build()
        .unwrap();
    let input = BoxBounds::from_center_radius(&[0.5; 16], 0.1);
    for domain in Domain::ALL {
        let out = propagate_bounds(&net, 0, net.num_layers(), &input, domain);
        for j in 0..out.dim() {
            // Mean of 4 independent ±0.1 inputs spans ±0.1.
            assert!(
                (out.hi()[j] - 0.6).abs() < 1e-6,
                "{domain}: hi {}",
                out.hi()[j]
            );
            assert!(
                (out.lo()[j] - 0.4).abs() < 1e-6,
                "{domain}: lo {}",
                out.lo()[j]
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The headline soundness property over randomized geometry: every
    /// domain encloses the concrete image of every sampled perturbation.
    #[test]
    fn randomized_mixed_networks_contain_samples(
        seed in 0u64..2000,
        delta in 0.0..0.08f64,
        sample_seed in 0u64..10_000,
    ) {
        let net = conv_net(seed);
        let mut rng = Prng::seed(sample_seed);
        let center: Vec<f64> = rng.uniform_vec(net.input_dim(), 0.0, 1.0);
        let input = BoxBounds::from_center_radius(&center, delta);
        let x: Vec<f64> = center.iter().map(|&c| c + rng.uniform(-delta.max(1e-12), delta.max(1e-12))).collect();
        let y = net.forward(&x);
        for domain in [Domain::Box, Domain::Zonotope, Domain::Poly] {
            let out = propagate_bounds(&net, 0, net.num_layers(), &input, domain);
            prop_assert!(out.contains(&y), "{} escape", domain);
        }
    }
}
