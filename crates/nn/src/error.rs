//! Error type for network construction and persistence.

use std::fmt;

/// Errors returned by fallible `napmon-nn` operations.
///
/// Marked `#[non_exhaustive]`: future model-format revisions may add
/// variants without breaking downstream matches.
#[derive(Debug)]
#[non_exhaustive]
pub enum NnError {
    /// Two layer dimensions that must agree do not.
    ShapeMismatch {
        /// Description of where the mismatch occurred.
        context: String,
        /// Dimension that was expected.
        expected: usize,
        /// Dimension that was provided.
        actual: usize,
    },
    /// A configuration value is invalid (e.g. zero-sized kernel).
    InvalidConfig(String),
    /// Reading or writing a model file failed.
    Io(std::io::Error),
    /// (De)serializing a model failed.
    Serde(serde_json::Error),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::ShapeMismatch {
                context,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "shape mismatch in {context}: expected {expected}, got {actual}"
                )
            }
            NnError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            NnError::Io(e) => write!(f, "model i/o failed: {e}"),
            NnError::Serde(e) => write!(f, "model (de)serialization failed: {e}"),
        }
    }
}

impl std::error::Error for NnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NnError::Io(e) => Some(e),
            NnError::Serde(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NnError {
    fn from(e: std::io::Error) -> Self {
        NnError::Io(e)
    }
}

impl From<serde_json::Error> for NnError {
    fn from(e: serde_json::Error) -> Self {
        NnError::Serde(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = NnError::ShapeMismatch {
            context: "dense layer 2".into(),
            expected: 8,
            actual: 4,
        };
        assert_eq!(
            e.to_string(),
            "shape mismatch in dense layer 2: expected 8, got 4"
        );
        let e = NnError::InvalidConfig("kernel size 0".into());
        assert!(e.to_string().contains("kernel size 0"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }
}
