//! Network layers: one [`Layer`] is one transformation `g_i` of the paper.

mod conv;
mod dense;
mod norm;
mod pool;

pub use conv::Conv2d;
pub use dense::Dense;
pub use norm::BatchNorm1d;
pub use pool::{AvgPool2d, MaxPool2d};

use crate::activation::Activation;
use napmon_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Parameter gradients produced by one layer during backpropagation.
///
/// Only layers with trainable parameters (dense, convolution) produce one.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerGrad {
    /// Gradient of the loss w.r.t. the layer's weight matrix.
    pub dw: Matrix,
    /// Gradient of the loss w.r.t. the layer's bias vector.
    pub db: Vec<f64>,
}

/// One layer transformation `g_i : R^{d_{i-1}} -> R^{d_i}`.
///
/// Affine layers (dense, convolution) expose their linear part through
/// [`Layer::apply_linear`] / [`Layer::apply_abs_linear`]; the
/// abstract-interpretation crate uses these to propagate boxes and
/// zonotopes exactly through every affine transformation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Layer {
    /// Fully-connected affine map `y = W x + b`.
    Dense(Dense),
    /// 2-D convolution over a flattened `(channels, height, width)` input.
    Conv2d(Conv2d),
    /// 2-D max pooling over a flattened `(channels, height, width)` input.
    MaxPool2d(MaxPool2d),
    /// 2-D average pooling (affine; exact in every abstract domain).
    AvgPool2d(AvgPool2d),
    /// Frozen batch normalization (affine).
    BatchNorm(BatchNorm1d),
    /// Elementwise activation.
    Activation(Activation),
}

impl Layer {
    /// Output dimension given the input dimension.
    ///
    /// # Panics
    ///
    /// Panics if `in_dim` is not compatible with the layer (callers are
    /// expected to have validated the network shape at construction).
    pub fn out_dim(&self, in_dim: usize) -> usize {
        match self {
            Layer::Dense(d) => {
                assert_eq!(in_dim, d.in_dim(), "dense layer input dimension");
                d.out_dim()
            }
            Layer::Conv2d(c) => {
                assert_eq!(in_dim, c.in_dim(), "conv layer input dimension");
                c.out_dim()
            }
            Layer::MaxPool2d(p) => {
                assert_eq!(in_dim, p.in_dim(), "pool layer input dimension");
                p.out_dim()
            }
            Layer::AvgPool2d(p) => {
                assert_eq!(in_dim, p.in_dim(), "pool layer input dimension");
                p.out_dim()
            }
            Layer::BatchNorm(bn) => {
                assert_eq!(in_dim, bn.dim(), "batch norm input dimension");
                bn.dim()
            }
            Layer::Activation(_) => in_dim,
        }
    }

    /// Applies the layer to an input vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` does not match the layer's input dimension.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        match self {
            Layer::Dense(d) => d.forward(x),
            Layer::Conv2d(c) => c.forward(x),
            Layer::MaxPool2d(p) => p.forward(x),
            Layer::AvgPool2d(p) => p.forward(x),
            Layer::BatchNorm(bn) => bn.forward(x),
            Layer::Activation(a) => a.apply_vec(x),
        }
    }

    /// Applies the layer into a reused output buffer.
    ///
    /// Dense, batch-norm, and activation layers write straight into `out`
    /// with no allocation (once the buffer has grown); convolution and
    /// pooling fall back to [`Layer::forward`] and copy — they sit below
    /// the monitored boundary of every experiment in this workspace, so
    /// their cost profile is unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` does not match the layer's input dimension.
    pub fn forward_into(&self, x: &[f64], out: &mut Vec<f64>) {
        match self {
            Layer::Dense(d) => d.forward_into(x, out),
            Layer::Activation(a) => a.apply_vec_into(x, out),
            Layer::BatchNorm(bn) => {
                assert_eq!(x.len(), bn.dim(), "batch norm forward: dimension mismatch");
                out.clear();
                out.extend(
                    x.iter()
                        .zip(bn.scale().iter().zip(bn.shift()))
                        .map(|(v, (s, b))| v * s + b),
                );
            }
            Layer::Conv2d(_) | Layer::MaxPool2d(_) | Layer::AvgPool2d(_) => {
                let y = self.forward(x);
                out.clear();
                out.extend_from_slice(&y);
            }
        }
    }

    /// Backpropagates through the layer.
    ///
    /// `x` is the input that produced output `y`, and `dy` is the loss
    /// gradient w.r.t. `y`. Returns the gradient w.r.t. `x` and, for
    /// parameterized layers, the parameter gradients.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches.
    pub fn backward(&self, x: &[f64], y: &[f64], dy: &[f64]) -> (Vec<f64>, Option<LayerGrad>) {
        match self {
            Layer::Dense(d) => {
                let (dx, g) = d.backward(x, dy);
                (dx, Some(g))
            }
            Layer::Conv2d(c) => {
                let (dx, g) = c.backward(x, dy);
                (dx, Some(g))
            }
            Layer::MaxPool2d(p) => (p.backward(x, dy), None),
            Layer::AvgPool2d(p) => (p.backward(dy), None),
            Layer::BatchNorm(bn) => (bn.backward(dy), None),
            Layer::Activation(a) => {
                assert_eq!(x.len(), dy.len(), "activation backward dimension");
                let dx = x
                    .iter()
                    .zip(y)
                    .zip(dy)
                    .map(|((&xi, &yi), &di)| di * a.grad(xi, yi))
                    .collect();
                (dx, None)
            }
        }
    }

    /// Whether the layer is an affine map (exact in every abstract domain).
    pub fn is_affine(&self) -> bool {
        matches!(
            self,
            Layer::Dense(_) | Layer::Conv2d(_) | Layer::AvgPool2d(_) | Layer::BatchNorm(_)
        ) || matches!(self, Layer::Activation(Activation::Identity))
    }

    /// Applies only the linear part (no bias) of an affine layer.
    ///
    /// Returns `None` for non-affine layers.
    pub fn apply_linear(&self, x: &[f64]) -> Option<Vec<f64>> {
        match self {
            Layer::Dense(d) => Some(d.apply_linear(x)),
            Layer::Conv2d(c) => Some(c.apply_linear(x)),
            Layer::AvgPool2d(p) => Some(p.forward(x)),
            Layer::BatchNorm(bn) => Some(bn.apply_linear(x)),
            Layer::Activation(Activation::Identity) => Some(x.to_vec()),
            _ => None,
        }
    }

    /// Applies the elementwise absolute value of the linear part (no bias):
    /// `|W| x`. Used for interval radius propagation.
    ///
    /// Returns `None` for non-affine layers.
    pub fn apply_abs_linear(&self, x: &[f64]) -> Option<Vec<f64>> {
        match self {
            Layer::Dense(d) => Some(d.apply_abs_linear(x)),
            Layer::Conv2d(c) => Some(c.apply_abs_linear(x)),
            Layer::AvgPool2d(p) => Some(p.forward(x)), // all weights 1/p² > 0
            Layer::BatchNorm(bn) => Some(bn.apply_abs_linear(x)),
            Layer::Activation(Activation::Identity) => Some(x.to_vec()),
            _ => None,
        }
    }

    /// The activation function, if this layer is an activation.
    pub fn as_activation(&self) -> Option<Activation> {
        match self {
            Layer::Activation(a) => Some(*a),
            _ => None,
        }
    }

    /// Mutable access to `(weights, bias)` for parameterized layers.
    pub fn params_mut(&mut self) -> Option<(&mut Matrix, &mut Vec<f64>)> {
        match self {
            Layer::Dense(d) => Some(d.params_mut()),
            Layer::Conv2d(c) => Some(c.params_mut()),
            _ => None,
        }
    }

    /// Number of trainable parameters in this layer.
    pub fn num_params(&self) -> usize {
        match self {
            Layer::Dense(d) => d.weights().rows() * d.weights().cols() + d.bias().len(),
            Layer::Conv2d(c) => c.weights().rows() * c.weights().cols() + c.bias().len(),
            _ => 0,
        }
    }
}

impl From<Activation> for Layer {
    fn from(a: Activation) -> Self {
        Layer::Activation(a)
    }
}

impl From<Dense> for Layer {
    fn from(d: Dense) -> Self {
        Layer::Dense(d)
    }
}

impl From<Conv2d> for Layer {
    fn from(c: Conv2d) -> Self {
        Layer::Conv2d(c)
    }
}

impl From<MaxPool2d> for Layer {
    fn from(p: MaxPool2d) -> Self {
        Layer::MaxPool2d(p)
    }
}

impl From<AvgPool2d> for Layer {
    fn from(p: AvgPool2d) -> Self {
        Layer::AvgPool2d(p)
    }
}

impl From<BatchNorm1d> for Layer {
    fn from(bn: BatchNorm1d) -> Self {
        Layer::BatchNorm(bn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use napmon_tensor::Matrix;

    fn tiny_dense() -> Layer {
        Layer::Dense(
            Dense::new(
                Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 0.5]]),
                vec![0.1, -0.1],
            )
            .unwrap(),
        )
    }

    #[test]
    fn dense_layer_dispatch() {
        let l = tiny_dense();
        assert_eq!(l.out_dim(2), 2);
        assert!(l.is_affine());
        assert_eq!(l.forward(&[1.0, 1.0]), vec![-0.9, 0.9]);
        assert_eq!(l.apply_linear(&[1.0, 1.0]).unwrap(), vec![-1.0, 1.0]);
        assert_eq!(l.apply_abs_linear(&[1.0, 1.0]).unwrap(), vec![3.0, 1.0]);
        assert_eq!(l.num_params(), 6);
    }

    #[test]
    fn activation_layer_dispatch() {
        let l = Layer::Activation(Activation::Relu);
        assert_eq!(l.out_dim(7), 7);
        assert!(!l.is_affine());
        assert_eq!(l.forward(&[-1.0, 2.0]), vec![0.0, 2.0]);
        assert!(l.apply_linear(&[1.0]).is_none());
        assert_eq!(l.num_params(), 0);
        assert_eq!(l.as_activation(), Some(Activation::Relu));
    }

    #[test]
    fn identity_activation_counts_as_affine() {
        let l = Layer::Activation(Activation::Identity);
        assert!(l.is_affine());
        assert_eq!(l.apply_linear(&[3.0, -1.0]).unwrap(), vec![3.0, -1.0]);
    }

    #[test]
    fn activation_backward_scales_by_grad() {
        let l = Layer::Activation(Activation::Relu);
        let x = [-1.0, 2.0];
        let y = l.forward(&x);
        let (dx, g) = l.backward(&x, &y, &[1.0, 1.0]);
        assert_eq!(dx, vec![0.0, 1.0]);
        assert!(g.is_none());
    }

    #[test]
    fn from_impls_build_expected_variants() {
        assert!(matches!(
            Layer::from(Activation::Tanh),
            Layer::Activation(Activation::Tanh)
        ));
        let d = Dense::new(Matrix::identity(2), vec![0.0, 0.0]).unwrap();
        assert!(matches!(Layer::from(d), Layer::Dense(_)));
    }
}
