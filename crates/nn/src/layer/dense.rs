//! Fully-connected (dense) affine layer.

use crate::error::NnError;
use crate::layer::LayerGrad;
use napmon_tensor::{init::Init, Matrix, Prng};
use serde::{Deserialize, Serialize};

/// A fully-connected affine layer `y = W x + b`.
///
/// Weights are stored as an `out_dim x in_dim` matrix so that one row holds
/// one output neuron's incoming weights.
///
/// ```
/// use napmon_nn::Dense;
/// use napmon_tensor::Matrix;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let layer = Dense::new(Matrix::from_rows(&[&[2.0, 0.0]]), vec![1.0])?;
/// assert_eq!(layer.forward(&[3.0, 9.0]), vec![7.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dense {
    weights: Matrix,
    bias: Vec<f64>,
}

impl Dense {
    /// Creates a dense layer from explicit parameters.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `bias.len() != weights.rows()`.
    pub fn new(weights: Matrix, bias: Vec<f64>) -> Result<Self, NnError> {
        if bias.len() != weights.rows() {
            return Err(NnError::ShapeMismatch {
                context: "dense bias".into(),
                expected: weights.rows(),
                actual: bias.len(),
            });
        }
        Ok(Self { weights, bias })
    }

    /// Creates a randomly initialized `in_dim -> out_dim` layer.
    pub fn seeded(rng: &mut Prng, in_dim: usize, out_dim: usize, init: Init) -> Self {
        Self {
            weights: init.matrix(rng, out_dim, in_dim),
            bias: vec![0.0; out_dim],
        }
    }

    /// Input dimension (columns of the weight matrix).
    pub fn in_dim(&self) -> usize {
        self.weights.cols()
    }

    /// Output dimension (rows of the weight matrix).
    pub fn out_dim(&self) -> usize {
        self.weights.rows()
    }

    /// Borrows the weight matrix.
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// Borrows the bias vector.
    pub fn bias(&self) -> &[f64] {
        &self.bias
    }

    /// Mutable access to `(weights, bias)` for the optimizer.
    pub fn params_mut(&mut self) -> (&mut Matrix, &mut Vec<f64>) {
        (&mut self.weights, &mut self.bias)
    }

    /// Computes `W x + b`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.in_dim()`.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut y = Vec::new();
        self.forward_into(x, &mut y);
        y
    }

    /// Computes `W x + b` into a reused output buffer (no allocation once
    /// the buffer has grown to `out_dim`).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.in_dim()`.
    pub fn forward_into(&self, x: &[f64], out: &mut Vec<f64>) {
        self.weights.matvec_into(x, out);
        for (yi, bi) in out.iter_mut().zip(&self.bias) {
            *yi += bi;
        }
    }

    /// Computes `W x` (no bias).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.in_dim()`.
    pub fn apply_linear(&self, x: &[f64]) -> Vec<f64> {
        self.weights.matvec(x)
    }

    /// Computes `|W| x` (elementwise absolute weights, no bias).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.in_dim()`.
    pub fn apply_abs_linear(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(
            x.len(),
            self.in_dim(),
            "apply_abs_linear: dimension mismatch"
        );
        let mut y = vec![0.0; self.out_dim()];
        for (r, yr) in y.iter_mut().enumerate() {
            let row = self.weights.row(r);
            let mut acc = 0.0;
            for (w, xv) in row.iter().zip(x) {
                acc += w.abs() * xv;
            }
            *yr = acc;
        }
        y
    }

    /// Backpropagation: given input `x` and upstream gradient `dy`,
    /// returns `(dx, gradients)`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches.
    pub fn backward(&self, x: &[f64], dy: &[f64]) -> (Vec<f64>, LayerGrad) {
        assert_eq!(x.len(), self.in_dim(), "dense backward: input dimension");
        assert_eq!(
            dy.len(),
            self.out_dim(),
            "dense backward: gradient dimension"
        );
        // dx = W^T dy
        let dx = self.weights.matvec_transposed(dy);
        // dW = dy ⊗ x
        let dw = Matrix::from_fn(self.out_dim(), self.in_dim(), |r, c| dy[r] * x[c]);
        (
            dx,
            LayerGrad {
                dw,
                db: dy.to_vec(),
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer() -> Dense {
        Dense::new(
            Matrix::from_rows(&[&[1.0, 2.0], &[-0.5, 0.25], &[0.0, 1.0]]),
            vec![0.5, 0.0, -1.0],
        )
        .unwrap()
    }

    #[test]
    fn new_rejects_bad_bias_length() {
        let err = Dense::new(Matrix::identity(2), vec![0.0]).unwrap_err();
        assert!(err.to_string().contains("dense bias"));
    }

    #[test]
    fn forward_applies_affine_map() {
        let l = layer();
        assert_eq!(l.forward(&[2.0, 1.0]), vec![4.5, -0.75, 0.0]);
    }

    #[test]
    fn apply_linear_omits_bias() {
        let l = layer();
        assert_eq!(l.apply_linear(&[2.0, 1.0]), vec![4.0, -0.75, 1.0]);
    }

    #[test]
    fn apply_abs_linear_uses_absolute_weights() {
        let l = layer();
        assert_eq!(l.apply_abs_linear(&[2.0, 1.0]), vec![4.0, 1.25, 1.0]);
    }

    #[test]
    fn forward_of_zero_input_is_bias() {
        let l = layer();
        assert_eq!(l.forward(&[0.0, 0.0]), vec![0.5, 0.0, -1.0]);
    }

    #[test]
    fn backward_gradients_match_finite_differences() {
        let l = layer();
        let x = [0.7, -1.2];
        let dy = [1.0, -2.0, 0.5]; // pretend dL/dy
        let (dx, grad) = l.backward(&x, &dy);

        let h = 1e-6;
        // Loss L = dy . forward(x): check dL/dx numerically.
        let loss = |l: &Dense, x: &[f64]| -> f64 {
            l.forward(x).iter().zip(&dy).map(|(a, b)| a * b).sum()
        };
        for i in 0..x.len() {
            let mut xp = x.to_vec();
            xp[i] += h;
            let mut xm = x.to_vec();
            xm[i] -= h;
            let num = (loss(&l, &xp) - loss(&l, &xm)) / (2.0 * h);
            assert!((num - dx[i]).abs() < 1e-6, "dx[{i}]: {num} vs {}", dx[i]);
        }
        // Check dL/dW numerically.
        for r in 0..3 {
            for c in 0..2 {
                let mut lp = l.clone();
                lp.params_mut().0[(r, c)] += h;
                let mut lm = l.clone();
                lm.params_mut().0[(r, c)] -= h;
                let num = (loss(&lp, &x) - loss(&lm, &x)) / (2.0 * h);
                assert!((num - grad.dw[(r, c)]).abs() < 1e-6, "dw[{r},{c}]");
            }
        }
        assert_eq!(grad.db, dy.to_vec());
    }

    #[test]
    fn seeded_layer_has_requested_shape_and_zero_bias() {
        let mut rng = Prng::seed(4);
        let l = Dense::seeded(&mut rng, 5, 3, Init::HeNormal);
        assert_eq!(l.in_dim(), 5);
        assert_eq!(l.out_dim(), 3);
        assert!(l.bias().iter().all(|&b| b == 0.0));
    }
}
