//! 2-D convolution over flattened `(channels, height, width)` vectors.

use crate::error::NnError;
use crate::layer::LayerGrad;
use napmon_tensor::{init::Init, Matrix, Prng};
use serde::{Deserialize, Serialize};

/// A 2-D convolution layer with zero padding.
///
/// Inputs and outputs are flat vectors in `(channel, row, column)` order —
/// the whole workspace passes activations as flat `Vec<f64>`, and the layer
/// carries its own shape metadata. The kernel weights are stored as an
/// `out_channels x (in_channels * kh * kw)` matrix, one row per output
/// channel, which keeps the affine structure explicit for the
/// abstract-interpretation crate.
///
/// ```
/// use napmon_nn::Conv2d;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // 1x4x4 input, one 2x2 kernel, stride 2, no padding -> 1x2x2 output.
/// let conv = Conv2d::zeros(1, 4, 4, 1, 2, 2, 0)?;
/// assert_eq!(conv.in_dim(), 16);
/// assert_eq!(conv.out_dim(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Conv2d {
    in_channels: usize,
    in_h: usize,
    in_w: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    /// `out_channels x (in_channels * kernel * kernel)`.
    weights: Matrix,
    bias: Vec<f64>,
}

impl Conv2d {
    /// Creates a zero-initialized convolution; useful as a building block
    /// before loading trained parameters.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if any dimension is zero, the
    /// stride is zero, or the kernel (after padding) does not fit.
    #[allow(clippy::too_many_arguments)]
    pub fn zeros(
        in_channels: usize,
        in_h: usize,
        in_w: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Result<Self, NnError> {
        if in_channels == 0 || in_h == 0 || in_w == 0 || out_channels == 0 {
            return Err(NnError::InvalidConfig(
                "conv2d: zero-sized dimension".into(),
            ));
        }
        if kernel == 0 || stride == 0 {
            return Err(NnError::InvalidConfig(
                "conv2d: kernel and stride must be positive".into(),
            ));
        }
        if in_h + 2 * padding < kernel || in_w + 2 * padding < kernel {
            return Err(NnError::InvalidConfig(format!(
                "conv2d: kernel {kernel} larger than padded input {}x{}",
                in_h + 2 * padding,
                in_w + 2 * padding
            )));
        }
        let weights = Matrix::zeros(out_channels, in_channels * kernel * kernel);
        let bias = vec![0.0; out_channels];
        Ok(Self {
            in_channels,
            in_h,
            in_w,
            out_channels,
            kernel,
            stride,
            padding,
            weights,
            bias,
        })
    }

    /// Creates a randomly initialized convolution.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Conv2d::zeros`].
    #[allow(clippy::too_many_arguments)]
    pub fn seeded(
        rng: &mut Prng,
        in_channels: usize,
        in_h: usize,
        in_w: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        init: Init,
    ) -> Result<Self, NnError> {
        let mut conv = Self::zeros(
            in_channels,
            in_h,
            in_w,
            out_channels,
            kernel,
            stride,
            padding,
        )?;
        conv.weights = init.matrix(rng, out_channels, in_channels * kernel * kernel);
        Ok(conv)
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Input spatial height.
    pub fn in_h(&self) -> usize {
        self.in_h
    }

    /// Input spatial width.
    pub fn in_w(&self) -> usize {
        self.in_w
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Kernel side length.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Zero padding on each side.
    pub fn padding(&self) -> usize {
        self.padding
    }

    /// Output spatial height.
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Output spatial width.
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Flattened input dimension `in_channels * in_h * in_w`.
    pub fn in_dim(&self) -> usize {
        self.in_channels * self.in_h * self.in_w
    }

    /// Flattened output dimension `out_channels * out_h * out_w`.
    pub fn out_dim(&self) -> usize {
        self.out_channels * self.out_h() * self.out_w()
    }

    /// Borrows the kernel weight matrix (`out_channels` rows).
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// Borrows the per-output-channel bias.
    pub fn bias(&self) -> &[f64] {
        &self.bias
    }

    /// Mutable access to `(weights, bias)` for the optimizer.
    pub fn params_mut(&mut self) -> (&mut Matrix, &mut Vec<f64>) {
        (&mut self.weights, &mut self.bias)
    }

    fn input_index(&self, c: usize, y: isize, x: isize) -> Option<usize> {
        if y < 0 || x < 0 || y as usize >= self.in_h || x as usize >= self.in_w {
            return None;
        }
        Some((c * self.in_h + y as usize) * self.in_w + x as usize)
    }

    fn conv_core(
        &self,
        x: &[f64],
        weight_of: impl Fn(usize, usize) -> f64,
        with_bias: bool,
    ) -> Vec<f64> {
        assert_eq!(x.len(), self.in_dim(), "conv forward: input dimension");
        let (oh, ow) = (self.out_h(), self.out_w());
        let mut out = vec![0.0; self.out_dim()];
        for oc in 0..self.out_channels {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = if with_bias { self.bias[oc] } else { 0.0 };
                    for ic in 0..self.in_channels {
                        for ky in 0..self.kernel {
                            for kx in 0..self.kernel {
                                let iy = (oy * self.stride + ky) as isize - self.padding as isize;
                                let ix = (ox * self.stride + kx) as isize - self.padding as isize;
                                if let Some(idx) = self.input_index(ic, iy, ix) {
                                    let wi = (ic * self.kernel + ky) * self.kernel + kx;
                                    acc += weight_of(oc, wi) * x[idx];
                                }
                            }
                        }
                    }
                    out[(oc * oh + oy) * ow + ox] = acc;
                }
            }
        }
        out
    }

    /// Applies the convolution (with bias).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.in_dim()`.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        self.conv_core(x, |oc, wi| self.weights[(oc, wi)], true)
    }

    /// Applies only the linear part (no bias).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.in_dim()`.
    pub fn apply_linear(&self, x: &[f64]) -> Vec<f64> {
        self.conv_core(x, |oc, wi| self.weights[(oc, wi)], false)
    }

    /// Applies `|W|` (absolute kernel weights, no bias).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.in_dim()`.
    pub fn apply_abs_linear(&self, x: &[f64]) -> Vec<f64> {
        self.conv_core(x, |oc, wi| self.weights[(oc, wi)].abs(), false)
    }

    /// Backpropagation: given input `x` and upstream gradient `dy`,
    /// returns `(dx, gradients)`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches.
    pub fn backward(&self, x: &[f64], dy: &[f64]) -> (Vec<f64>, LayerGrad) {
        assert_eq!(x.len(), self.in_dim(), "conv backward: input dimension");
        assert_eq!(
            dy.len(),
            self.out_dim(),
            "conv backward: gradient dimension"
        );
        let (oh, ow) = (self.out_h(), self.out_w());
        let mut dx = vec![0.0; self.in_dim()];
        let mut dw = Matrix::zeros(
            self.out_channels,
            self.in_channels * self.kernel * self.kernel,
        );
        let mut db = vec![0.0; self.out_channels];
        for oc in 0..self.out_channels {
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = dy[(oc * oh + oy) * ow + ox];
                    if g == 0.0 {
                        continue;
                    }
                    db[oc] += g;
                    for ic in 0..self.in_channels {
                        for ky in 0..self.kernel {
                            for kx in 0..self.kernel {
                                let iy = (oy * self.stride + ky) as isize - self.padding as isize;
                                let ix = (ox * self.stride + kx) as isize - self.padding as isize;
                                if let Some(idx) = self.input_index(ic, iy, ix) {
                                    let wi = (ic * self.kernel + ky) * self.kernel + kx;
                                    dw[(oc, wi)] += g * x[idx];
                                    dx[idx] += g * self.weights[(oc, wi)];
                                }
                            }
                        }
                    }
                }
            }
        }
        (dx, LayerGrad { dw, db })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 1-channel 3x3 input, single 2x2 averaging-ish kernel, stride 1.
    fn small_conv() -> Conv2d {
        let mut c = Conv2d::zeros(1, 3, 3, 1, 2, 1, 0).unwrap();
        {
            let (w, b) = c.params_mut();
            for i in 0..4 {
                w[(0, i)] = 1.0;
            }
            b[0] = 0.5;
        }
        c
    }

    #[test]
    fn zeros_validates_config() {
        assert!(Conv2d::zeros(0, 3, 3, 1, 2, 1, 0).is_err());
        assert!(Conv2d::zeros(1, 3, 3, 1, 0, 1, 0).is_err());
        assert!(Conv2d::zeros(1, 3, 3, 1, 2, 0, 0).is_err());
        assert!(Conv2d::zeros(1, 2, 2, 1, 5, 1, 0).is_err());
        assert!(Conv2d::zeros(1, 2, 2, 1, 5, 1, 2).is_ok()); // padding makes it fit
    }

    #[test]
    fn forward_sums_windows() {
        let c = small_conv();
        #[rustfmt::skip]
        let x = [1.0, 2.0, 3.0,
                 4.0, 5.0, 6.0,
                 7.0, 8.0, 9.0];
        // Windows: [1,2,4,5], [2,3,5,6], [4,5,7,8], [5,6,8,9]; +0.5 bias.
        assert_eq!(c.forward(&x), vec![12.5, 16.5, 24.5, 28.5]);
    }

    #[test]
    fn apply_linear_omits_bias() {
        let c = small_conv();
        let x = [0.0; 9];
        assert_eq!(c.apply_linear(&x), vec![0.0; 4]);
        assert_eq!(c.forward(&x), vec![0.5; 4]);
    }

    #[test]
    fn padding_and_stride_change_output_shape() {
        let c = Conv2d::zeros(1, 4, 4, 2, 3, 1, 1).unwrap();
        assert_eq!((c.out_h(), c.out_w()), (4, 4));
        assert_eq!(c.out_dim(), 2 * 16);
        let c = Conv2d::zeros(1, 4, 4, 1, 2, 2, 0).unwrap();
        assert_eq!((c.out_h(), c.out_w()), (2, 2));
    }

    #[test]
    fn abs_linear_dominates_linear() {
        let mut rng = Prng::seed(3);
        let c = Conv2d::seeded(&mut rng, 2, 4, 4, 3, 3, 1, 1, Init::HeNormal).unwrap();
        let x: Vec<f64> = (0..c.in_dim()).map(|i| (i % 5) as f64 / 5.0).collect();
        let lin = c.apply_linear(&x);
        let abs = c.apply_abs_linear(&x);
        for (l, a) in lin.iter().zip(&abs) {
            assert!(a + 1e-12 >= l.abs(), "abs {a} < |lin| {}", l.abs());
        }
    }

    #[test]
    fn backward_gradients_match_finite_differences() {
        let mut rng = Prng::seed(7);
        let c = Conv2d::seeded(&mut rng, 1, 4, 4, 2, 2, 2, 0, Init::HeNormal).unwrap();
        let x: Vec<f64> = rng.uniform_vec(c.in_dim(), -1.0, 1.0);
        let dy: Vec<f64> = rng.uniform_vec(c.out_dim(), -1.0, 1.0);
        let (dx, grad) = c.backward(&x, &dy);

        let loss = |c: &Conv2d, x: &[f64]| -> f64 {
            c.forward(x).iter().zip(&dy).map(|(a, b)| a * b).sum()
        };
        let h = 1e-6;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp[i] += h;
            let mut xm = x.clone();
            xm[i] -= h;
            let num = (loss(&c, &xp) - loss(&c, &xm)) / (2.0 * h);
            assert!((num - dx[i]).abs() < 1e-5, "dx[{i}]: {num} vs {}", dx[i]);
        }
        for r in 0..grad.dw.rows() {
            for col in 0..grad.dw.cols() {
                let mut cp = c.clone();
                cp.params_mut().0[(r, col)] += h;
                let mut cm = c.clone();
                cm.params_mut().0[(r, col)] -= h;
                let num = (loss(&cp, &x) - loss(&cm, &x)) / (2.0 * h);
                assert!((num - grad.dw[(r, col)]).abs() < 1e-5, "dw[{r},{col}]");
            }
        }
        for (oc, db) in grad.db.iter().enumerate() {
            let mut cp = c.clone();
            cp.params_mut().1[oc] += h;
            let mut cm = c.clone();
            cm.params_mut().1[oc] -= h;
            let num = (loss(&cp, &x) - loss(&cm, &x)) / (2.0 * h);
            assert!((num - db).abs() < 1e-5, "db[{oc}]");
        }
    }
}
