//! 2-D max pooling over flattened `(channels, height, width)` vectors.

use crate::error::NnError;
use serde::{Deserialize, Serialize};

/// A 2-D max-pooling layer.
///
/// Pools non-overlapping (or strided) square windows per channel. Input and
/// output are flat vectors in `(channel, row, column)` order, like
/// [`Conv2d`](crate::Conv2d).
///
/// Max pooling is monotone in every input coordinate; the
/// abstract-interpretation crate exploits this to propagate interval bounds
/// exactly (`max` of lower bounds, `max` of upper bounds per window).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MaxPool2d {
    channels: usize,
    in_h: usize,
    in_w: usize,
    pool: usize,
    stride: usize,
}

impl MaxPool2d {
    /// Creates a pooling layer with square windows of side `pool` moved by
    /// `stride` (use `stride == pool` for the common non-overlapping case).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if any dimension, the window, or
    /// the stride is zero, or the window does not fit the input.
    pub fn new(
        channels: usize,
        in_h: usize,
        in_w: usize,
        pool: usize,
        stride: usize,
    ) -> Result<Self, NnError> {
        if channels == 0 || in_h == 0 || in_w == 0 {
            return Err(NnError::InvalidConfig(
                "maxpool2d: zero-sized dimension".into(),
            ));
        }
        if pool == 0 || stride == 0 {
            return Err(NnError::InvalidConfig(
                "maxpool2d: pool and stride must be positive".into(),
            ));
        }
        if pool > in_h || pool > in_w {
            return Err(NnError::InvalidConfig(format!(
                "maxpool2d: window {pool} larger than input {in_h}x{in_w}"
            )));
        }
        Ok(Self {
            channels,
            in_h,
            in_w,
            pool,
            stride,
        })
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Window side length.
    pub fn pool(&self) -> usize {
        self.pool
    }

    /// Stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Output spatial height.
    pub fn out_h(&self) -> usize {
        (self.in_h - self.pool) / self.stride + 1
    }

    /// Output spatial width.
    pub fn out_w(&self) -> usize {
        (self.in_w - self.pool) / self.stride + 1
    }

    /// Flattened input dimension.
    pub fn in_dim(&self) -> usize {
        self.channels * self.in_h * self.in_w
    }

    /// Flattened output dimension.
    pub fn out_dim(&self) -> usize {
        self.channels * self.out_h() * self.out_w()
    }

    /// Iterates over the flat input indices of the window feeding output
    /// position `(c, oy, ox)`.
    pub fn window_indices(
        &self,
        c: usize,
        oy: usize,
        ox: usize,
    ) -> impl Iterator<Item = usize> + '_ {
        let base_y = oy * self.stride;
        let base_x = ox * self.stride;
        let (in_h, in_w, pool) = (self.in_h, self.in_w, self.pool);
        (0..pool * pool).map(move |i| {
            let (ky, kx) = (i / pool, i % pool);
            (c * in_h + base_y + ky) * in_w + (base_x + kx)
        })
    }

    /// Applies max pooling.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.in_dim()`.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.in_dim(), "maxpool forward: input dimension");
        let (oh, ow) = (self.out_h(), self.out_w());
        let mut out = vec![0.0; self.out_dim()];
        for c in 0..self.channels {
            for oy in 0..oh {
                for ox in 0..ow {
                    let m = self
                        .window_indices(c, oy, ox)
                        .map(|i| x[i])
                        .fold(f64::NEG_INFINITY, f64::max);
                    out[(c * oh + oy) * ow + ox] = m;
                }
            }
        }
        out
    }

    /// Backpropagation: routes each upstream gradient to the (first)
    /// position that attained the window maximum.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches.
    pub fn backward(&self, x: &[f64], dy: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.in_dim(), "maxpool backward: input dimension");
        assert_eq!(
            dy.len(),
            self.out_dim(),
            "maxpool backward: gradient dimension"
        );
        let (oh, ow) = (self.out_h(), self.out_w());
        let mut dx = vec![0.0; self.in_dim()];
        for c in 0..self.channels {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best_idx = usize::MAX;
                    let mut best = f64::NEG_INFINITY;
                    for i in self.window_indices(c, oy, ox) {
                        if x[i] > best {
                            best = x[i];
                            best_idx = i;
                        }
                    }
                    dx[best_idx] += dy[(c * oh + oy) * ow + ox];
                }
            }
        }
        dx
    }
}

/// A 2-D average-pooling layer.
///
/// Same geometry conventions as [`MaxPool2d`], but the window *mean* is an
/// affine map — the abstract-interpretation crate treats it exactly in
/// every domain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AvgPool2d {
    inner: MaxPool2d,
}

impl AvgPool2d {
    /// Creates an average-pooling layer (see [`MaxPool2d::new`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`MaxPool2d::new`].
    pub fn new(
        channels: usize,
        in_h: usize,
        in_w: usize,
        pool: usize,
        stride: usize,
    ) -> Result<Self, NnError> {
        Ok(Self {
            inner: MaxPool2d::new(channels, in_h, in_w, pool, stride)?,
        })
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.inner.channels()
    }

    /// Window side length.
    pub fn pool(&self) -> usize {
        self.inner.pool()
    }

    /// Stride.
    pub fn stride(&self) -> usize {
        self.inner.stride()
    }

    /// Output spatial height.
    pub fn out_h(&self) -> usize {
        self.inner.out_h()
    }

    /// Output spatial width.
    pub fn out_w(&self) -> usize {
        self.inner.out_w()
    }

    /// Flattened input dimension.
    pub fn in_dim(&self) -> usize {
        self.inner.in_dim()
    }

    /// Flattened output dimension.
    pub fn out_dim(&self) -> usize {
        self.inner.out_dim()
    }

    /// Iterates over the flat input indices feeding output `(c, oy, ox)`.
    pub fn window_indices(
        &self,
        c: usize,
        oy: usize,
        ox: usize,
    ) -> impl Iterator<Item = usize> + '_ {
        self.inner.window_indices(c, oy, ox)
    }

    /// Applies average pooling.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.in_dim()`.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.in_dim(), "avgpool forward: input dimension");
        let (oh, ow) = (self.out_h(), self.out_w());
        let norm = 1.0 / (self.pool() * self.pool()) as f64;
        let mut out = vec![0.0; self.out_dim()];
        for c in 0..self.channels() {
            for oy in 0..oh {
                for ox in 0..ow {
                    let sum: f64 = self.window_indices(c, oy, ox).map(|i| x[i]).sum();
                    out[(c * oh + oy) * ow + ox] = sum * norm;
                }
            }
        }
        out
    }

    /// Backpropagation: spreads each upstream gradient uniformly over its
    /// window.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches.
    pub fn backward(&self, dy: &[f64]) -> Vec<f64> {
        assert_eq!(
            dy.len(),
            self.out_dim(),
            "avgpool backward: gradient dimension"
        );
        let (oh, ow) = (self.out_h(), self.out_w());
        let norm = 1.0 / (self.pool() * self.pool()) as f64;
        let mut dx = vec![0.0; self.in_dim()];
        for c in 0..self.channels() {
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = dy[(c * oh + oy) * ow + ox] * norm;
                    for i in self.window_indices(c, oy, ox) {
                        dx[i] += g;
                    }
                }
            }
        }
        dx
    }
}

#[cfg(test)]
mod avg_tests {
    use super::*;

    #[test]
    fn forward_takes_window_means() {
        let p = AvgPool2d::new(1, 2, 2, 2, 2).unwrap();
        assert_eq!(p.forward(&[1.0, 2.0, 3.0, 6.0]), vec![3.0]);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let p = AvgPool2d::new(1, 4, 4, 2, 2).unwrap();
        let x: Vec<f64> = (0..16).map(|i| (i as f64 * 0.37).cos()).collect();
        let dy = [1.0, -2.0, 0.5, 0.25];
        let dx = p.backward(&dy);
        let loss = |x: &[f64]| -> f64 { p.forward(x).iter().zip(&dy).map(|(a, b)| a * b).sum() };
        let h = 1e-6;
        for i in 0..16 {
            let mut xp = x.clone();
            xp[i] += h;
            let mut xm = x.clone();
            xm[i] -= h;
            let num = (loss(&xp) - loss(&xm)) / (2.0 * h);
            assert!((num - dx[i]).abs() < 1e-6, "dx[{i}]");
        }
    }

    #[test]
    fn average_bounded_by_min_max_of_window() {
        let p = AvgPool2d::new(1, 2, 2, 2, 2).unwrap();
        let avg = p.forward(&[0.0, 1.0, 2.0, 3.0])[0];
        assert!((0.0..=3.0).contains(&avg));
        assert_eq!(avg, 1.5);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_config() {
        assert!(MaxPool2d::new(0, 4, 4, 2, 2).is_err());
        assert!(MaxPool2d::new(1, 4, 4, 0, 2).is_err());
        assert!(MaxPool2d::new(1, 4, 4, 2, 0).is_err());
        assert!(MaxPool2d::new(1, 2, 2, 3, 1).is_err());
        assert!(MaxPool2d::new(1, 4, 4, 2, 2).is_ok());
    }

    #[test]
    fn forward_takes_window_maxima() {
        let p = MaxPool2d::new(1, 4, 4, 2, 2).unwrap();
        #[rustfmt::skip]
        let x = [ 1.0,  2.0,  5.0,  6.0,
                  3.0,  4.0,  7.0,  8.0,
                 -1.0, -2.0,  0.0,  0.5,
                 -3.0, -4.0, -0.5,  0.25];
        assert_eq!(p.forward(&x), vec![4.0, 8.0, -1.0, 0.5]);
    }

    #[test]
    fn overlapping_stride_works() {
        let p = MaxPool2d::new(1, 3, 3, 2, 1).unwrap();
        assert_eq!((p.out_h(), p.out_w()), (2, 2));
        #[rustfmt::skip]
        let x = [1.0, 2.0, 3.0,
                 4.0, 5.0, 6.0,
                 7.0, 8.0, 9.0];
        assert_eq!(p.forward(&x), vec![5.0, 6.0, 8.0, 9.0]);
    }

    #[test]
    fn multi_channel_pools_independently() {
        let p = MaxPool2d::new(2, 2, 2, 2, 2).unwrap();
        let x = [1.0, 2.0, 3.0, 4.0, 40.0, 30.0, 20.0, 10.0];
        assert_eq!(p.forward(&x), vec![4.0, 40.0]);
    }

    #[test]
    fn backward_routes_gradient_to_argmax() {
        let p = MaxPool2d::new(1, 2, 2, 2, 2).unwrap();
        let x = [1.0, 9.0, 3.0, 4.0];
        let dx = p.backward(&x, &[2.0]);
        assert_eq!(dx, vec![0.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn backward_matches_finite_differences_off_ties() {
        let p = MaxPool2d::new(1, 4, 4, 2, 2).unwrap();
        let x: Vec<f64> = (0..16).map(|i| (i as f64 * 0.731).sin()).collect();
        let dy = [1.0, -0.5, 0.25, 2.0];
        let dx = p.backward(&x, &dy);
        let loss = |x: &[f64]| -> f64 { p.forward(x).iter().zip(&dy).map(|(a, b)| a * b).sum() };
        let h = 1e-6;
        for i in 0..16 {
            let mut xp = x.clone();
            xp[i] += h;
            let mut xm = x.clone();
            xm[i] -= h;
            let num = (loss(&xp) - loss(&xm)) / (2.0 * h);
            assert!((num - dx[i]).abs() < 1e-6, "dx[{i}]: {num} vs {}", dx[i]);
        }
    }

    #[test]
    fn window_indices_cover_expected_cells() {
        let p = MaxPool2d::new(1, 4, 4, 2, 2).unwrap();
        let idx: Vec<usize> = p.window_indices(0, 1, 1).collect();
        assert_eq!(idx, vec![10, 11, 14, 15]);
    }
}
