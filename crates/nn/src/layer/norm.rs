//! Inference-time batch normalization.

use crate::error::NnError;
use serde::{Deserialize, Serialize};

/// Batch normalization with *frozen* statistics: `y = scale ⊙ x + shift`.
///
/// After training, batch norm is a per-channel affine map
/// `y = γ (x − μ) / √(σ² + ε) + β`; this type stores the folded
/// `scale = γ/√(σ²+ε)` and `shift = β − μ·scale`. The monitors only ever
/// see trained networks (the paper fixes all parameters), so no training
/// mode is provided — [`BatchNorm1d::backward`] propagates gradients to
/// the input but treats the statistics as constants, which lets a frozen
/// norm layer sit inside a network that is still being fine-tuned.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchNorm1d {
    scale: Vec<f64>,
    shift: Vec<f64>,
}

impl BatchNorm1d {
    /// Creates a normalization layer from folded scale/shift vectors.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if lengths differ or
    /// [`NnError::InvalidConfig`] if they are empty.
    pub fn new(scale: Vec<f64>, shift: Vec<f64>) -> Result<Self, NnError> {
        if scale.is_empty() {
            return Err(NnError::InvalidConfig(
                "batch norm over zero dimensions".into(),
            ));
        }
        if scale.len() != shift.len() {
            return Err(NnError::ShapeMismatch {
                context: "batch norm shift".into(),
                expected: scale.len(),
                actual: shift.len(),
            });
        }
        Ok(Self { scale, shift })
    }

    /// Creates a layer from raw batch-norm parameters
    /// (`γ, β, running mean, running variance, ε`).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] on length mismatches or
    /// [`NnError::InvalidConfig`] for non-positive `ε` / negative variance.
    pub fn from_moments(
        gamma: &[f64],
        beta: &[f64],
        mean: &[f64],
        variance: &[f64],
        eps: f64,
    ) -> Result<Self, NnError> {
        let d = gamma.len();
        for (name, v) in [
            ("beta", beta.len()),
            ("mean", mean.len()),
            ("variance", variance.len()),
        ] {
            if v != d {
                return Err(NnError::ShapeMismatch {
                    context: format!("batch norm {name}"),
                    expected: d,
                    actual: v,
                });
            }
        }
        if eps <= 0.0 {
            return Err(NnError::InvalidConfig(format!(
                "batch norm eps must be positive, got {eps}"
            )));
        }
        if variance.iter().any(|&v| v < 0.0) {
            return Err(NnError::InvalidConfig(
                "batch norm variance must be non-negative".into(),
            ));
        }
        let scale: Vec<f64> = gamma
            .iter()
            .zip(variance)
            .map(|(g, v)| g / (v + eps).sqrt())
            .collect();
        let shift: Vec<f64> = beta
            .iter()
            .zip(mean.iter().zip(&scale))
            .map(|(b, (m, s))| b - m * s)
            .collect();
        Self::new(scale, shift)
    }

    /// Dimension (input = output).
    pub fn dim(&self) -> usize {
        self.scale.len()
    }

    /// Per-dimension scale.
    pub fn scale(&self) -> &[f64] {
        &self.scale
    }

    /// Per-dimension shift.
    pub fn shift(&self) -> &[f64] {
        &self.shift
    }

    /// Applies `scale ⊙ x + shift`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(
            x.len(),
            self.dim(),
            "batch norm forward: dimension mismatch"
        );
        x.iter()
            .zip(self.scale.iter().zip(&self.shift))
            .map(|(v, (s, b))| v * s + b)
            .collect()
    }

    /// Applies only the linear part (`scale ⊙ x`).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn apply_linear(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(
            x.len(),
            self.dim(),
            "batch norm apply_linear: dimension mismatch"
        );
        x.iter().zip(&self.scale).map(|(v, s)| v * s).collect()
    }

    /// Applies `|scale| ⊙ x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn apply_abs_linear(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(
            x.len(),
            self.dim(),
            "batch norm apply_abs_linear: dimension mismatch"
        );
        x.iter()
            .zip(&self.scale)
            .map(|(v, s)| v * s.abs())
            .collect()
    }

    /// Backpropagates to the input (statistics are frozen constants).
    ///
    /// # Panics
    ///
    /// Panics if `dy.len() != self.dim()`.
    pub fn backward(&self, dy: &[f64]) -> Vec<f64> {
        assert_eq!(
            dy.len(),
            self.dim(),
            "batch norm backward: dimension mismatch"
        );
        dy.iter().zip(&self.scale).map(|(d, s)| d * s).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_shapes() {
        assert!(BatchNorm1d::new(vec![], vec![]).is_err());
        assert!(BatchNorm1d::new(vec![1.0], vec![1.0, 2.0]).is_err());
        assert!(BatchNorm1d::new(vec![1.0, 2.0], vec![0.0, 0.0]).is_ok());
    }

    #[test]
    fn from_moments_folds_correctly() {
        // γ=2, β=1, μ=3, σ²=4, ε→0: y = 2(x−3)/2 + 1 = x − 2.
        let bn = BatchNorm1d::from_moments(&[2.0], &[1.0], &[3.0], &[4.0], 1e-12).unwrap();
        let y = bn.forward(&[5.0]);
        assert!((y[0] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn from_moments_validates() {
        assert!(BatchNorm1d::from_moments(&[1.0], &[0.0], &[0.0], &[1.0], 0.0).is_err());
        assert!(BatchNorm1d::from_moments(&[1.0], &[0.0], &[0.0], &[-1.0], 1e-5).is_err());
        assert!(BatchNorm1d::from_moments(&[1.0], &[0.0, 0.0], &[0.0], &[1.0], 1e-5).is_err());
    }

    #[test]
    fn linear_parts_match_affine_decomposition() {
        let bn = BatchNorm1d::new(vec![2.0, -0.5], vec![1.0, 0.25]).unwrap();
        let x = [3.0, 4.0];
        let full = bn.forward(&x);
        let lin = bn.apply_linear(&x);
        for i in 0..2 {
            assert!((full[i] - (lin[i] + bn.shift()[i])).abs() < 1e-12);
        }
        assert_eq!(bn.apply_abs_linear(&[1.0, 1.0]), vec![2.0, 0.5]);
    }

    #[test]
    fn backward_scales_gradients() {
        let bn = BatchNorm1d::new(vec![2.0, -0.5], vec![0.0, 0.0]).unwrap();
        assert_eq!(bn.backward(&[1.0, 1.0]), vec![2.0, -0.5]);
    }
}
