//! Elementwise activation functions.

use serde::{Deserialize, Serialize};

/// An elementwise activation function.
///
/// All supported activations are **monotone non-decreasing**; the
/// abstract-interpretation crate relies on this to propagate interval
/// bounds through activations exactly (`[f(l), f(u)]`).
///
/// ```
/// use napmon_nn::Activation;
/// assert_eq!(Activation::Relu.apply(-2.0), 0.0);
/// assert_eq!(Activation::Relu.apply(3.0), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Activation {
    /// `f(x) = x`.
    Identity,
    /// `f(x) = max(0, x)`.
    Relu,
    /// `f(x) = x` for `x > 0`, `alpha * x` otherwise.
    LeakyRelu {
        /// Negative-side slope, expected in `[0, 1)`.
        alpha: f64,
    },
    /// `f(x) = 1 / (1 + e^{-x})`.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    /// A leaky ReLU with the conventional slope `0.01`.
    pub fn leaky_relu() -> Self {
        Activation::LeakyRelu { alpha: 0.01 }
    }

    /// Applies the activation to one value.
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Identity => x,
            Activation::Relu => x.max(0.0),
            Activation::LeakyRelu { alpha } => {
                if x > 0.0 {
                    x
                } else {
                    alpha * x
                }
            }
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
        }
    }

    /// Applies the activation to a whole vector.
    pub fn apply_vec(self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| self.apply(x)).collect()
    }

    /// Applies the activation into a reused output buffer (resized to
    /// `xs.len()`; no allocation once the buffer has grown).
    pub fn apply_vec_into(self, xs: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.extend(xs.iter().map(|&x| self.apply(x)));
    }

    /// Derivative `f'(x)`, computed from the input `x` and the already
    /// computed output `y = f(x)` (cheaper for sigmoid/tanh).
    ///
    /// For ReLU the sub-gradient at `0` is taken as `0`.
    pub fn grad(self, x: f64, y: f64) -> f64 {
        match self {
            Activation::Identity => 1.0,
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::LeakyRelu { alpha } => {
                if x > 0.0 {
                    1.0
                } else {
                    alpha
                }
            }
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Tanh => 1.0 - y * y,
        }
    }

    /// Whether the function is piecewise linear (exactly representable by
    /// zonotope/star relaxations with a finite case analysis).
    pub fn is_piecewise_linear(self) -> bool {
        matches!(
            self,
            Activation::Identity | Activation::Relu | Activation::LeakyRelu { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const ALL: [Activation; 5] = [
        Activation::Identity,
        Activation::Relu,
        Activation::LeakyRelu { alpha: 0.01 },
        Activation::Sigmoid,
        Activation::Tanh,
    ];

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(Activation::Relu.apply(-1.5), 0.0);
        assert_eq!(Activation::Relu.apply(0.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.5), 2.5);
    }

    #[test]
    fn leaky_relu_scales_negatives() {
        let f = Activation::LeakyRelu { alpha: 0.1 };
        assert_eq!(f.apply(-10.0), -1.0);
        assert_eq!(f.apply(10.0), 10.0);
    }

    #[test]
    fn sigmoid_fixed_points() {
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-12);
        assert!(Activation::Sigmoid.apply(100.0) > 0.999_999);
        assert!(Activation::Sigmoid.apply(-100.0) < 1e-6);
    }

    #[test]
    fn tanh_is_odd() {
        for x in [-2.0, -0.5, 0.0, 0.7, 3.0] {
            let f = Activation::Tanh;
            assert!((f.apply(x) + f.apply(-x)).abs() < 1e-12);
        }
    }

    #[test]
    fn grad_matches_finite_differences() {
        let h = 1e-6;
        for f in ALL {
            // Avoid the ReLU kink at 0.
            for x in [-1.3, -0.4, 0.3, 1.7] {
                let y = f.apply(x);
                let numeric = (f.apply(x + h) - f.apply(x - h)) / (2.0 * h);
                let analytic = f.grad(x, y);
                assert!(
                    (numeric - analytic).abs() < 1e-5,
                    "{f:?} at {x}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn piecewise_linear_classification() {
        assert!(Activation::Relu.is_piecewise_linear());
        assert!(Activation::Identity.is_piecewise_linear());
        assert!(Activation::leaky_relu().is_piecewise_linear());
        assert!(!Activation::Sigmoid.is_piecewise_linear());
        assert!(!Activation::Tanh.is_piecewise_linear());
    }

    proptest! {
        #[test]
        fn all_activations_are_monotone(
            a in -20.0..20.0f64,
            b in -20.0..20.0f64,
        ) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            for f in ALL {
                prop_assert!(f.apply(lo) <= f.apply(hi), "{:?} not monotone", f);
            }
        }

        #[test]
        fn apply_vec_matches_pointwise(xs in proptest::collection::vec(-5.0..5.0f64, 0..8)) {
            for f in ALL {
                let v = f.apply_vec(&xs);
                for (x, y) in xs.iter().zip(&v) {
                    prop_assert_eq!(f.apply(*x), *y);
                }
            }
        }
    }
}
