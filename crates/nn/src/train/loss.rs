//! Loss functions.

use napmon_tensor::vector;

/// A training loss over `(prediction, target)` pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loss {
    /// Mean squared error `(1/d) Σ (p_i - t_i)^2` — used for the waypoint
    /// regression network.
    Mse,
    /// Softmax cross-entropy over logits with a one-hot (or soft) target —
    /// used for the classification networks.
    SoftmaxCrossEntropy,
}

impl Loss {
    /// Loss value for one sample.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ or (for cross-entropy) the slices are
    /// empty.
    pub fn value(self, prediction: &[f64], target: &[f64]) -> f64 {
        assert_eq!(prediction.len(), target.len(), "loss: length mismatch");
        match self {
            Loss::Mse => {
                let d = prediction.len().max(1) as f64;
                prediction
                    .iter()
                    .zip(target)
                    .map(|(p, t)| (p - t) * (p - t))
                    .sum::<f64>()
                    / d
            }
            Loss::SoftmaxCrossEntropy => {
                let probs = vector::softmax(prediction);
                -target
                    .iter()
                    .zip(&probs)
                    .map(|(t, p)| {
                        if *t == 0.0 {
                            0.0
                        } else {
                            t * p.max(1e-300).ln()
                        }
                    })
                    .sum::<f64>()
            }
        }
    }

    /// Gradient of the loss w.r.t. the prediction (logits for
    /// cross-entropy).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn grad(self, prediction: &[f64], target: &[f64]) -> Vec<f64> {
        assert_eq!(prediction.len(), target.len(), "loss grad: length mismatch");
        match self {
            Loss::Mse => {
                let d = prediction.len().max(1) as f64;
                prediction
                    .iter()
                    .zip(target)
                    .map(|(p, t)| 2.0 * (p - t) / d)
                    .collect()
            }
            Loss::SoftmaxCrossEntropy => {
                let probs = vector::softmax(prediction);
                probs.iter().zip(target).map(|(p, t)| p - t).collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_of_equal_vectors_is_zero() {
        assert_eq!(Loss::Mse.value(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn mse_value_and_grad() {
        let v = Loss::Mse.value(&[3.0, 0.0], &[1.0, 0.0]);
        assert_eq!(v, 2.0); // (4 + 0) / 2
        assert_eq!(Loss::Mse.grad(&[3.0, 0.0], &[1.0, 0.0]), vec![2.0, 0.0]);
    }

    #[test]
    fn cross_entropy_prefers_correct_class() {
        let good = Loss::SoftmaxCrossEntropy.value(&[5.0, 0.0], &[1.0, 0.0]);
        let bad = Loss::SoftmaxCrossEntropy.value(&[0.0, 5.0], &[1.0, 0.0]);
        assert!(good < bad);
        assert!(good > 0.0);
    }

    #[test]
    fn grads_match_finite_differences() {
        let h = 1e-6;
        for loss in [Loss::Mse, Loss::SoftmaxCrossEntropy] {
            let p = [0.3, -0.7, 1.2];
            let t = [0.0, 1.0, 0.0];
            let g = loss.grad(&p, &t);
            for i in 0..p.len() {
                let mut pp = p.to_vec();
                pp[i] += h;
                let mut pm = p.to_vec();
                pm[i] -= h;
                let num = (loss.value(&pp, &t) - loss.value(&pm, &t)) / (2.0 * h);
                assert!(
                    (num - g[i]).abs() < 1e-5,
                    "{loss:?} grad[{i}]: {num} vs {}",
                    g[i]
                );
            }
        }
    }

    #[test]
    fn cross_entropy_grad_sums_to_zero_for_one_hot() {
        let g = Loss::SoftmaxCrossEntropy.grad(&[1.0, 2.0, 3.0], &[0.0, 0.0, 1.0]);
        assert!(g.iter().sum::<f64>().abs() < 1e-12);
    }
}
