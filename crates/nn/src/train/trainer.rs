//! Mini-batch trainer.

use crate::layer::LayerGrad;
use crate::network::Network;
use crate::train::loss::Loss;
use crate::train::optimizer::{Optimizer, OptimizerState};
use napmon_tensor::Prng;

/// Summary of one training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean training loss per epoch, in epoch order.
    pub epoch_losses: Vec<f64>,
}

impl TrainReport {
    /// Loss after the final epoch.
    ///
    /// # Panics
    ///
    /// Panics if the report is empty (zero epochs).
    pub fn final_loss(&self) -> f64 {
        *self.epoch_losses.last().expect("at least one epoch")
    }
}

/// Deterministic mini-batch trainer.
///
/// ```
/// use napmon_nn::{Activation, LayerSpec, Loss, Network, Optimizer, Trainer};
///
/// // Fit y = 2x on a handful of points.
/// let mut net = Network::seeded(3, 1, &[LayerSpec::dense(1, Activation::Identity)]);
/// let xs: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64 / 8.0]).collect();
/// let ys: Vec<Vec<f64>> = xs.iter().map(|x| vec![2.0 * x[0]]).collect();
/// let report = Trainer::new(Loss::Mse, Optimizer::sgd(0.5))
///     .batch_size(4)
///     .epochs(200)
///     .run(&mut net, &xs, &ys, 7);
/// assert!(report.final_loss() < 1e-3);
/// ```
#[derive(Debug, Clone)]
pub struct Trainer {
    loss: Loss,
    optimizer: Optimizer,
    batch_size: usize,
    epochs: usize,
}

impl Trainer {
    /// Creates a trainer with batch size 32 and 10 epochs.
    pub fn new(loss: Loss, optimizer: Optimizer) -> Self {
        Self {
            loss,
            optimizer,
            batch_size: 32,
            epochs: 10,
        }
    }

    /// Sets the mini-batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch_size must be positive");
        self.batch_size = batch_size;
        self
    }

    /// Sets the number of epochs.
    pub fn epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// The configured loss.
    pub fn loss(&self) -> Loss {
        self.loss
    }

    /// Trains `net` on `(inputs, targets)` pairs, shuffling with the given
    /// seed each epoch. Returns per-epoch mean losses.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` and `targets` differ in length, are empty, or any
    /// sample has the wrong dimension.
    pub fn run(
        &self,
        net: &mut Network,
        inputs: &[Vec<f64>],
        targets: &[Vec<f64>],
        seed: u64,
    ) -> TrainReport {
        assert_eq!(
            inputs.len(),
            targets.len(),
            "trainer: inputs vs targets length"
        );
        assert!(!inputs.is_empty(), "trainer: empty training set");
        let mut rng = Prng::seed(seed);
        let mut state = OptimizerState::new(self.optimizer, net.num_layers());
        let mut order: Vec<usize> = (0..inputs.len()).collect();
        let mut epoch_losses = Vec::with_capacity(self.epochs);

        for _ in 0..self.epochs {
            rng.shuffle(&mut order);
            let mut epoch_loss = 0.0;
            for batch in order.chunks(self.batch_size) {
                let mut grads: Vec<Option<LayerGrad>> = vec![None; net.num_layers()];
                for &idx in batch {
                    let x = &inputs[idx];
                    let t = &targets[idx];
                    let boundaries = net.boundary_values(x);
                    let pred = boundaries.last().expect("network output");
                    epoch_loss += self.loss.value(pred, t);
                    // Backward pass.
                    let mut dy = self.loss.grad(pred, t);
                    for (li, layer) in net.layers().iter().enumerate().rev() {
                        let (dx, grad) = layer.backward(&boundaries[li], &boundaries[li + 1], &dy);
                        if let Some(g) = grad {
                            match &mut grads[li] {
                                Some(acc) => {
                                    acc.dw.axpy(1.0, &g.dw);
                                    for (a, b) in acc.db.iter_mut().zip(&g.db) {
                                        *a += b;
                                    }
                                }
                                slot => *slot = Some(g),
                            }
                        }
                        dy = dx;
                    }
                }
                // Average over the batch before stepping.
                let scale = 1.0 / batch.len() as f64;
                for g in grads.iter_mut().flatten() {
                    g.dw.scale(scale);
                    for b in &mut g.db {
                        *b *= scale;
                    }
                }
                state.step(net, &grads);
            }
            epoch_losses.push(epoch_loss / inputs.len() as f64);
        }
        TrainReport { epoch_losses }
    }

    /// Mean loss of `net` over a labelled set, without training.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` and `targets` differ in length or are empty.
    pub fn evaluate(&self, net: &Network, inputs: &[Vec<f64>], targets: &[Vec<f64>]) -> f64 {
        assert_eq!(
            inputs.len(),
            targets.len(),
            "evaluate: inputs vs targets length"
        );
        assert!(!inputs.is_empty(), "evaluate: empty set");
        inputs
            .iter()
            .zip(targets)
            .map(|(x, t)| self.loss.value(&net.forward(x), t))
            .sum::<f64>()
            / inputs.len() as f64
    }
}

/// Classification accuracy of `net` over a labelled set (targets one-hot).
///
/// # Panics
///
/// Panics if `inputs` and `targets` differ in length or are empty.
pub fn accuracy(net: &Network, inputs: &[Vec<f64>], targets: &[Vec<f64>]) -> f64 {
    assert_eq!(
        inputs.len(),
        targets.len(),
        "accuracy: inputs vs targets length"
    );
    assert!(!inputs.is_empty(), "accuracy: empty set");
    let correct = inputs
        .iter()
        .zip(targets)
        .filter(|(x, t)| net.predict_class(x) == napmon_tensor::vector::argmax(t))
        .count();
    correct as f64 / inputs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::network::{LayerSpec, Network};

    #[test]
    fn linear_regression_converges() {
        // y = 3x - 1 with a single affine neuron.
        let mut net = Network::seeded(11, 1, &[LayerSpec::dense(1, Activation::Identity)]);
        let xs: Vec<Vec<f64>> = (0..32).map(|i| vec![(i as f64 - 16.0) / 16.0]).collect();
        let ys: Vec<Vec<f64>> = xs.iter().map(|x| vec![3.0 * x[0] - 1.0]).collect();
        let report = Trainer::new(Loss::Mse, Optimizer::sgd(0.3))
            .batch_size(8)
            .epochs(300)
            .run(&mut net, &xs, &ys, 5);
        assert!(report.final_loss() < 1e-4, "loss {}", report.final_loss());
        let out = net.forward(&[0.5]);
        assert!((out[0] - 0.5).abs() < 0.05, "f(0.5) = {}", out[0]);
    }

    #[test]
    fn nonlinear_regression_with_relu_converges() {
        // y = |x| is exactly representable with two ReLU units.
        let mut net = Network::seeded(
            2,
            1,
            &[
                LayerSpec::dense(8, Activation::Relu),
                LayerSpec::dense(1, Activation::Identity),
            ],
        );
        let xs: Vec<Vec<f64>> = (0..64).map(|i| vec![(i as f64 - 32.0) / 32.0]).collect();
        let ys: Vec<Vec<f64>> = xs.iter().map(|x| vec![x[0].abs()]).collect();
        let report = Trainer::new(Loss::Mse, Optimizer::adam(0.01))
            .batch_size(16)
            .epochs(400)
            .run(&mut net, &xs, &ys, 9);
        assert!(report.final_loss() < 5e-4, "loss {}", report.final_loss());
    }

    #[test]
    fn two_class_classification_reaches_high_accuracy() {
        // Two separable blobs on the line.
        let mut rng = Prng::seed(31);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..60 {
            xs.push(vec![rng.normal(-1.0, 0.3)]);
            ys.push(vec![1.0, 0.0]);
            xs.push(vec![rng.normal(1.0, 0.3)]);
            ys.push(vec![0.0, 1.0]);
        }
        let mut net = Network::seeded(
            4,
            1,
            &[
                LayerSpec::dense(8, Activation::Relu),
                LayerSpec::dense(2, Activation::Identity),
            ],
        );
        Trainer::new(Loss::SoftmaxCrossEntropy, Optimizer::adam(0.02))
            .batch_size(16)
            .epochs(60)
            .run(&mut net, &xs, &ys, 17);
        assert!(accuracy(&net, &xs, &ys) > 0.97);
    }

    #[test]
    fn training_is_deterministic_under_seeds() {
        let build = || {
            Network::seeded(
                8,
                2,
                &[
                    LayerSpec::dense(4, Activation::Relu),
                    LayerSpec::dense(1, Activation::Identity),
                ],
            )
        };
        let xs: Vec<Vec<f64>> = (0..16)
            .map(|i| vec![(i % 4) as f64, (i / 4) as f64])
            .collect();
        let ys: Vec<Vec<f64>> = xs.iter().map(|x| vec![x[0] - x[1]]).collect();
        let mut a = build();
        let mut b = build();
        let t = Trainer::new(Loss::Mse, Optimizer::adam(0.01))
            .batch_size(4)
            .epochs(5);
        let ra = t.run(&mut a, &xs, &ys, 3);
        let rb = t.run(&mut b, &xs, &ys, 3);
        assert_eq!(ra, rb);
        assert_eq!(a, b);
    }

    #[test]
    fn evaluate_reports_mean_loss() {
        let net = Network::seeded(1, 1, &[LayerSpec::dense(1, Activation::Identity)]);
        let t = Trainer::new(Loss::Mse, Optimizer::sgd(0.1));
        let xs = vec![vec![0.0]];
        let b0 = net.forward(&[0.0])[0];
        let loss = t.evaluate(&net, &xs, &[vec![b0 + 2.0]]);
        assert!((loss - 4.0).abs() < 1e-12);
    }

    #[test]
    fn maxpool_network_trains_without_panicking() {
        use crate::network::NetworkBuilder;
        let mut net = NetworkBuilder::image(13, 1, 6, 6)
            .conv(2, 3, 1, 1, Activation::Relu)
            .unwrap()
            .maxpool(2, 2)
            .unwrap()
            .dense(4, Activation::Relu)
            .dense(1, Activation::Identity)
            .build()
            .unwrap();
        let mut rng = Prng::seed(2);
        let xs: Vec<Vec<f64>> = (0..8).map(|_| rng.uniform_vec(36, 0.0, 1.0)).collect();
        let ys: Vec<Vec<f64>> = xs
            .iter()
            .map(|x| vec![x.iter().sum::<f64>() / 36.0])
            .collect();
        let report = Trainer::new(Loss::Mse, Optimizer::adam(0.01))
            .batch_size(4)
            .epochs(20)
            .run(&mut net, &xs, &ys, 1);
        assert!(report.final_loss().is_finite());
        assert!(report.final_loss() < report.epoch_losses[0]);
    }
}
