//! Training machinery: losses, optimizers, and a mini-batch trainer.
//!
//! The experiments train small perception networks from scratch (the paper
//! assumes "a DNN after training" but releases none), so this module favors
//! clarity and determinism over raw throughput: full-precision `f64`,
//! explicit per-sample backpropagation, seeded shuffling.

mod loss;
mod optimizer;
mod trainer;

pub use loss::Loss;
pub use optimizer::Optimizer;
pub use trainer::{accuracy, TrainReport, Trainer};
