//! Gradient-descent optimizers.

use crate::layer::LayerGrad;
use crate::network::Network;
use napmon_tensor::Matrix;

/// First-order optimizer configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Optimizer {
    /// Stochastic gradient descent with classical momentum.
    Sgd {
        /// Learning rate.
        lr: f64,
        /// Momentum factor in `[0, 1)`; `0.0` recovers plain SGD.
        momentum: f64,
    },
    /// Adam (Kingma & Ba, 2015).
    Adam {
        /// Learning rate.
        lr: f64,
        /// First-moment decay, typically `0.9`.
        beta1: f64,
        /// Second-moment decay, typically `0.999`.
        beta2: f64,
        /// Numerical-stability constant.
        eps: f64,
    },
}

impl Optimizer {
    /// SGD with the given learning rate and no momentum.
    pub fn sgd(lr: f64) -> Self {
        Optimizer::Sgd { lr, momentum: 0.0 }
    }

    /// Adam with default hyper-parameters and the given learning rate.
    pub fn adam(lr: f64) -> Self {
        Optimizer::Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }
}

/// Per-parameter optimizer state for one network.
#[derive(Debug, Clone)]
pub(crate) struct OptimizerState {
    config: Optimizer,
    /// Adam step counter.
    t: u64,
    /// First-moment / momentum buffers per layer (matching `(dw, db)`).
    m: Vec<Option<(Matrix, Vec<f64>)>>,
    /// Second-moment buffers (Adam only).
    v: Vec<Option<(Matrix, Vec<f64>)>>,
}

impl OptimizerState {
    pub(crate) fn new(config: Optimizer, num_layers: usize) -> Self {
        Self {
            config,
            t: 0,
            m: vec![None; num_layers],
            v: vec![None; num_layers],
        }
    }

    /// Applies one optimizer step given the per-layer gradients (already
    /// averaged over the batch). `grads[i]` must be `None` exactly for
    /// parameterless layers.
    ///
    /// # Panics
    ///
    /// Panics if `grads.len()` does not match the network's layer count or
    /// a gradient shape disagrees with its layer.
    pub(crate) fn step(&mut self, net: &mut Network, grads: &[Option<LayerGrad>]) {
        assert_eq!(
            grads.len(),
            net.num_layers(),
            "optimizer step: gradient count"
        );
        self.t += 1;
        for (i, layer) in net.layers_mut().iter_mut().enumerate() {
            let Some(grad) = &grads[i] else { continue };
            let Some((w, b)) = layer.params_mut() else {
                panic!("gradient provided for parameterless layer {i}")
            };
            match self.config {
                Optimizer::Sgd { lr, momentum } => {
                    if momentum == 0.0 {
                        w.axpy(-lr, &grad.dw);
                        for (bi, gi) in b.iter_mut().zip(&grad.db) {
                            *bi -= lr * gi;
                        }
                    } else {
                        let (mw, mb) = self.m[i].get_or_insert_with(|| {
                            (
                                Matrix::zeros(grad.dw.rows(), grad.dw.cols()),
                                vec![0.0; grad.db.len()],
                            )
                        });
                        mw.scale(momentum);
                        mw.axpy(1.0, &grad.dw);
                        for (mbi, gi) in mb.iter_mut().zip(&grad.db) {
                            *mbi = momentum * *mbi + gi;
                        }
                        w.axpy(-lr, mw);
                        for (bi, mbi) in b.iter_mut().zip(mb.iter()) {
                            *bi -= lr * mbi;
                        }
                    }
                }
                Optimizer::Adam {
                    lr,
                    beta1,
                    beta2,
                    eps,
                } => {
                    let (mw, mb) = self.m[i].get_or_insert_with(|| {
                        (
                            Matrix::zeros(grad.dw.rows(), grad.dw.cols()),
                            vec![0.0; grad.db.len()],
                        )
                    });
                    let (vw, vb) = self.v[i].get_or_insert_with(|| {
                        (
                            Matrix::zeros(grad.dw.rows(), grad.dw.cols()),
                            vec![0.0; grad.db.len()],
                        )
                    });
                    let bc1 = 1.0 - beta1.powi(self.t as i32);
                    let bc2 = 1.0 - beta2.powi(self.t as i32);
                    // Weights.
                    for idx in 0..grad.dw.as_slice().len() {
                        let g = grad.dw.as_slice()[idx];
                        let m = &mut mw.as_mut_slice()[idx];
                        *m = beta1 * *m + (1.0 - beta1) * g;
                        let v = &mut vw.as_mut_slice()[idx];
                        *v = beta2 * *v + (1.0 - beta2) * g * g;
                        let mhat = *m / bc1;
                        let vhat = *v / bc2;
                        w.as_mut_slice()[idx] -= lr * mhat / (vhat.sqrt() + eps);
                    }
                    // Biases.
                    for idx in 0..grad.db.len() {
                        let g = grad.db[idx];
                        mb[idx] = beta1 * mb[idx] + (1.0 - beta1) * g;
                        vb[idx] = beta2 * vb[idx] + (1.0 - beta2) * g * g;
                        let mhat = mb[idx] / bc1;
                        let vhat = vb[idx] / bc2;
                        b[idx] -= lr * mhat / (vhat.sqrt() + eps);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::network::{LayerSpec, Network};

    fn grad_of(net: &Network, idx: usize) -> Vec<Option<LayerGrad>> {
        // A unit gradient for one dense layer, zeros elsewhere.
        let mut grads: Vec<Option<LayerGrad>> = vec![None; net.num_layers()];
        let Some(crate::layer::Layer::Dense(d)) = net.layers().get(idx) else {
            panic!()
        };
        grads[idx] = Some(LayerGrad {
            dw: Matrix::from_fn(d.out_dim(), d.in_dim(), |_, _| 1.0),
            db: vec![1.0; d.out_dim()],
        });
        grads
    }

    #[test]
    fn sgd_moves_against_gradient() {
        let mut net = Network::seeded(1, 2, &[LayerSpec::dense(2, Activation::Identity)]);
        let before = net.layers()[0].clone();
        let mut st = OptimizerState::new(Optimizer::sgd(0.1), net.num_layers());
        let g = grad_of(&net, 0);
        st.step(&mut net, &g);
        let crate::layer::Layer::Dense(b) = &before else {
            panic!()
        };
        let crate::layer::Layer::Dense(a) = &net.layers()[0] else {
            panic!()
        };
        for (pa, pb) in a.weights().as_slice().iter().zip(b.weights().as_slice()) {
            assert!((pa - (pb - 0.1)).abs() < 1e-12);
        }
        assert!((a.bias()[0] - (b.bias()[0] - 0.1)).abs() < 1e-12);
    }

    #[test]
    fn momentum_accelerates_repeated_steps() {
        let mut plain = Network::seeded(1, 2, &[LayerSpec::dense(2, Activation::Identity)]);
        let mut heavy = plain.clone();
        let mut st_plain = OptimizerState::new(
            Optimizer::Sgd {
                lr: 0.1,
                momentum: 0.0,
            },
            1,
        );
        let mut st_heavy = OptimizerState::new(
            Optimizer::Sgd {
                lr: 0.1,
                momentum: 0.9,
            },
            1,
        );
        for _ in 0..5 {
            let g = grad_of(&plain, 0);
            st_plain.step(&mut plain, &g);
            let g = grad_of(&heavy, 0);
            st_heavy.step(&mut heavy, &g);
        }
        let crate::layer::Layer::Dense(p) = &plain.layers()[0] else {
            panic!()
        };
        let crate::layer::Layer::Dense(h) = &heavy.layers()[0] else {
            panic!()
        };
        // Same gradient every step: momentum must have travelled further.
        assert!(h.weights()[(0, 0)] < p.weights()[(0, 0)]);
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        let mut net = Network::seeded(1, 2, &[LayerSpec::dense(2, Activation::Identity)]);
        let before = net.layers()[0].clone();
        let mut st = OptimizerState::new(Optimizer::adam(0.01), 1);
        let g = grad_of(&net, 0);
        st.step(&mut net, &g);
        let crate::layer::Layer::Dense(b) = &before else {
            panic!()
        };
        let crate::layer::Layer::Dense(a) = &net.layers()[0] else {
            panic!()
        };
        // With constant unit gradient, Adam's bias-corrected first step is
        // exactly lr (up to eps).
        let step = b.weights()[(0, 0)] - a.weights()[(0, 0)];
        assert!((step - 0.01).abs() < 1e-6, "step {step}");
    }

    #[test]
    #[should_panic(expected = "parameterless layer")]
    fn gradient_for_activation_layer_panics() {
        let mut net = Network::seeded(1, 2, &[LayerSpec::dense(2, Activation::Relu)]);
        // Layer 1 is the ReLU activation.
        let mut grads: Vec<Option<LayerGrad>> = vec![None; net.num_layers()];
        grads[1] = Some(LayerGrad {
            dw: Matrix::zeros(1, 1),
            db: vec![0.0],
        });
        let mut st = OptimizerState::new(Optimizer::sgd(0.1), net.num_layers());
        st.step(&mut net, &grads);
    }
}
