//! Sequential feed-forward networks with layer-sliced evaluation.

use crate::activation::Activation;
use crate::error::NnError;
use crate::layer::{AvgPool2d, Conv2d, Dense, Layer, MaxPool2d};
use napmon_tensor::{init::Init, vector, Prng};
use serde::{Deserialize, Serialize};

/// Specification of one dense layer for [`Network::seeded`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerSpec {
    out: usize,
    activation: Activation,
}

impl LayerSpec {
    /// A dense layer with `out` neurons followed by `activation`
    /// (no separate activation layer is added for [`Activation::Identity`]).
    pub fn dense(out: usize, activation: Activation) -> Self {
        Self { out, activation }
    }
}

/// A trained feed-forward network `G = g_n ∘ … ∘ g_1`.
///
/// Layer indices follow the paper: layer `i ∈ {1,…,n}` is `self.layers()[i-1]`,
/// and *boundary* `k ∈ {0,…,n}` denotes the output of the first `k` layers
/// (boundary `0` is the raw input). [`Network::forward_prefix`] computes
/// `G^k`, [`Network::forward_range`] computes `G^{l→k}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    input_dim: usize,
    layers: Vec<Layer>,
}

impl Network {
    /// Builds a network from explicit layers, validating all dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if consecutive layers disagree, or
    /// [`NnError::InvalidConfig`] if `input_dim == 0` or `layers` is empty.
    pub fn from_layers(input_dim: usize, layers: Vec<Layer>) -> Result<Self, NnError> {
        if input_dim == 0 {
            return Err(NnError::InvalidConfig(
                "network input dimension must be positive".into(),
            ));
        }
        if layers.is_empty() {
            return Err(NnError::InvalidConfig(
                "network needs at least one layer".into(),
            ));
        }
        let mut dim = input_dim;
        for (i, layer) in layers.iter().enumerate() {
            dim = layer.try_out_dim(dim).map_err(|_| NnError::ShapeMismatch {
                context: format!("layer {} ({:?} input)", i + 1, dim),
                expected: expected_in_dim(layer).unwrap_or(dim),
                actual: dim,
            })?;
        }
        Ok(Self { input_dim, layers })
    }

    /// Builds a randomly initialized dense network.
    ///
    /// Weight initialization is He-normal before ReLU-family activations and
    /// Xavier-uniform otherwise. Each [`LayerSpec`] expands to a [`Dense`]
    /// layer plus (unless identity) an activation layer.
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty or `input_dim == 0`.
    pub fn seeded(seed: u64, input_dim: usize, specs: &[LayerSpec]) -> Self {
        assert!(input_dim > 0, "seeded: input dimension must be positive");
        assert!(!specs.is_empty(), "seeded: need at least one layer spec");
        let mut rng = Prng::seed(seed);
        let mut layers = Vec::new();
        let mut dim = input_dim;
        for spec in specs {
            let init = match spec.activation {
                Activation::Relu | Activation::LeakyRelu { .. } => Init::HeNormal,
                _ => Init::XavierUniform,
            };
            layers.push(Layer::Dense(Dense::seeded(&mut rng, dim, spec.out, init)));
            if spec.activation != Activation::Identity {
                layers.push(Layer::Activation(spec.activation));
            }
            dim = spec.out;
        }
        Self { input_dim, layers }
    }

    /// Input dimension `d_0`.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Output dimension `d_n`.
    pub fn output_dim(&self) -> usize {
        *self.dims().last().expect("network has layers")
    }

    /// Number of layers `n`.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Borrows all layers (layer `i` of the paper is `layers()[i-1]`).
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutably borrows all layers (used by the trainer).
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Dimensions at every boundary: `dims()[k]` is `d_k`, with
    /// `dims()[0] == input_dim()`.
    pub fn dims(&self) -> Vec<usize> {
        let mut dims = Vec::with_capacity(self.layers.len() + 1);
        dims.push(self.input_dim);
        let mut dim = self.input_dim;
        for layer in &self.layers {
            dim = layer.out_dim(dim);
            dims.push(dim);
        }
        dims
    }

    /// Dimension at boundary `k` (`d_k`).
    ///
    /// # Panics
    ///
    /// Panics if `k > self.num_layers()`.
    pub fn dim_at(&self, k: usize) -> usize {
        let dims = self.dims();
        assert!(
            k < dims.len(),
            "boundary {k} out of range (network has {} layers)",
            self.layers.len()
        );
        dims[k]
    }

    /// Full forward pass `G(x)`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.input_dim()`.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        self.forward_range(x, 0, self.layers.len())
    }

    /// Prefix evaluation `G^k(x)`: applies layers `1..=k`. `k == 0` returns
    /// `x` unchanged (the paper's convention `G^0(v) = v`).
    ///
    /// # Panics
    ///
    /// Panics if `k > self.num_layers()` or `x` has the wrong length.
    pub fn forward_prefix(&self, x: &[f64], k: usize) -> Vec<f64> {
        self.forward_range(x, 0, k)
    }

    /// Prefix evaluation `G^k(x)` through reusable ping-pong buffers: the
    /// steady-state query path of the monitors. After the scratch buffers
    /// have grown to the widest layer, repeated calls perform **no heap
    /// allocation** for dense/batch-norm/activation networks.
    ///
    /// The result borrows from `scratch` and stays valid until the next
    /// call.
    ///
    /// # Panics
    ///
    /// Panics if `k > self.num_layers()` or `x` has the wrong length.
    pub fn forward_prefix_into<'s>(
        &self,
        x: &[f64],
        k: usize,
        scratch: &'s mut ForwardScratch,
    ) -> &'s [f64] {
        assert!(k <= self.layers.len(), "invalid boundary {k}");
        assert_eq!(
            x.len(),
            self.input_dim,
            "forward_prefix_into: input dimension"
        );
        scratch.cur.clear();
        scratch.cur.extend_from_slice(x);
        for layer in &self.layers[..k] {
            layer.forward_into(&scratch.cur, &mut scratch.next);
            std::mem::swap(&mut scratch.cur, &mut scratch.next);
        }
        &scratch.cur
    }

    /// Range evaluation `G^{from→to}`: applies layers `from+1..=to` to a
    /// vector `v` living at boundary `from`.
    ///
    /// # Panics
    ///
    /// Panics if `from > to`, `to > self.num_layers()`, or `v` does not have
    /// dimension `d_from`.
    pub fn forward_range(&self, v: &[f64], from: usize, to: usize) -> Vec<f64> {
        assert!(
            from <= to && to <= self.layers.len(),
            "invalid layer range {from}..{to}"
        );
        assert_eq!(
            v.len(),
            self.dim_at(from),
            "forward_range: input dimension at boundary {from}"
        );
        let mut cur = v.to_vec();
        for layer in &self.layers[from..to] {
            cur = layer.forward(&cur);
        }
        cur
    }

    /// Outputs at every boundary `0..=n` (index 0 is the input itself).
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong length.
    pub fn boundary_values(&self, x: &[f64]) -> Vec<Vec<f64>> {
        assert_eq!(x.len(), self.input_dim, "boundary_values: input dimension");
        let mut values = Vec::with_capacity(self.layers.len() + 1);
        values.push(x.to_vec());
        let mut cur = x.to_vec();
        for layer in &self.layers {
            cur = layer.forward(&cur);
            values.push(cur.clone());
        }
        values
    }

    /// Index of the maximal output (classification decision).
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong length.
    pub fn predict_class(&self, x: &[f64]) -> usize {
        vector::argmax(&self.forward(x))
    }

    /// Total number of trainable parameters.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(Layer::num_params).sum()
    }

    /// The boundary index of the last hidden layer before the final affine
    /// map — the monitoring location the paper and its predecessors use
    /// ("neurons within close-to-output layers represent high-level
    /// features").
    ///
    /// Concretely: the boundary just before the last [`Dense`] layer.
    pub fn penultimate_boundary(&self) -> usize {
        for (i, layer) in self.layers.iter().enumerate().rev() {
            if matches!(layer, Layer::Dense(_)) {
                return i;
            }
        }
        self.layers.len()
    }
}

/// Reusable ping-pong buffers for [`Network::forward_prefix_into`].
///
/// One scratch per querying thread; the monitors' batched APIs allocate one
/// per worker and reuse it across the whole batch.
#[derive(Debug, Clone, Default)]
pub struct ForwardScratch {
    cur: Vec<f64>,
    next: Vec<f64>,
}

impl ForwardScratch {
    /// An empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

fn expected_in_dim(layer: &Layer) -> Option<usize> {
    match layer {
        Layer::Dense(d) => Some(d.in_dim()),
        Layer::Conv2d(c) => Some(c.in_dim()),
        Layer::MaxPool2d(p) => Some(p.in_dim()),
        Layer::AvgPool2d(p) => Some(p.in_dim()),
        Layer::BatchNorm(bn) => Some(bn.dim()),
        Layer::Activation(_) => None,
    }
}

impl Layer {
    /// Output dimension for input dimension `in_dim`, or an error if the
    /// layer cannot accept that input.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] on incompatible dimensions.
    pub fn try_out_dim(&self, in_dim: usize) -> Result<usize, NnError> {
        let ok = match self {
            Layer::Dense(d) => in_dim == d.in_dim(),
            Layer::Conv2d(c) => in_dim == c.in_dim(),
            Layer::MaxPool2d(p) => in_dim == p.in_dim(),
            Layer::AvgPool2d(p) => in_dim == p.in_dim(),
            Layer::BatchNorm(bn) => in_dim == bn.dim(),
            Layer::Activation(_) => true,
        };
        if !ok {
            return Err(NnError::ShapeMismatch {
                context: "layer input".into(),
                expected: expected_in_dim(self).unwrap_or(in_dim),
                actual: in_dim,
            });
        }
        Ok(match self {
            Layer::Dense(d) => d.out_dim(),
            Layer::Conv2d(c) => c.out_dim(),
            Layer::MaxPool2d(p) => p.out_dim(),
            Layer::AvgPool2d(p) => p.out_dim(),
            Layer::BatchNorm(bn) => bn.dim(),
            Layer::Activation(_) => in_dim,
        })
    }
}

/// Builder for networks mixing convolutional and dense stages.
///
/// Tracks the running activation shape so convolution/pooling layers get the
/// right spatial metadata:
///
/// ```
/// use napmon_nn::{network::NetworkBuilder, Activation};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = NetworkBuilder::image(7, 1, 8, 8)
///     .conv(4, 3, 1, 1, Activation::Relu)?
///     .maxpool(2, 2)?
///     .dense(16, Activation::Relu)
///     .dense(2, Activation::Identity)
///     .build()?;
/// assert_eq!(net.input_dim(), 64);
/// assert_eq!(net.output_dim(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    rng: Prng,
    input_dim: usize,
    shape: BuilderShape,
    layers: Vec<Layer>,
    error: Option<String>,
}

#[derive(Debug, Clone, Copy)]
enum BuilderShape {
    Flat(usize),
    Image { c: usize, h: usize, w: usize },
}

impl BuilderShape {
    fn dim(self) -> usize {
        match self {
            BuilderShape::Flat(d) => d,
            BuilderShape::Image { c, h, w } => c * h * w,
        }
    }
}

impl NetworkBuilder {
    /// Starts a builder for a flat input of dimension `input_dim`.
    ///
    /// # Panics
    ///
    /// Panics if `input_dim == 0`.
    pub fn flat(seed: u64, input_dim: usize) -> Self {
        assert!(input_dim > 0, "flat: input dimension must be positive");
        Self {
            rng: Prng::seed(seed),
            input_dim,
            shape: BuilderShape::Flat(input_dim),
            layers: Vec::new(),
            error: None,
        }
    }

    /// Starts a builder for an image input of shape `(c, h, w)`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn image(seed: u64, c: usize, h: usize, w: usize) -> Self {
        assert!(
            c > 0 && h > 0 && w > 0,
            "image: dimensions must be positive"
        );
        Self {
            rng: Prng::seed(seed),
            input_dim: c * h * w,
            shape: BuilderShape::Image { c, h, w },
            layers: Vec::new(),
            error: None,
        }
    }

    /// Appends a dense layer (flattening any image shape) plus activation.
    pub fn dense(mut self, out: usize, activation: Activation) -> Self {
        let in_dim = self.shape.dim();
        let init = match activation {
            Activation::Relu | Activation::LeakyRelu { .. } => Init::HeNormal,
            _ => Init::XavierUniform,
        };
        self.layers.push(Layer::Dense(Dense::seeded(
            &mut self.rng,
            in_dim,
            out,
            init,
        )));
        if activation != Activation::Identity {
            self.layers.push(Layer::Activation(activation));
        }
        self.shape = BuilderShape::Flat(out);
        self
    }

    /// Appends a convolution (He-initialized) plus activation.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if the running shape is flat (use
    /// [`NetworkBuilder::image`]) or the convolution geometry is invalid.
    pub fn conv(
        mut self,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        activation: Activation,
    ) -> Result<Self, NnError> {
        let BuilderShape::Image { c, h, w } = self.shape else {
            return Err(NnError::InvalidConfig(
                "conv: running shape is flat, not an image".into(),
            ));
        };
        let conv = Conv2d::seeded(
            &mut self.rng,
            c,
            h,
            w,
            out_channels,
            kernel,
            stride,
            padding,
            Init::HeNormal,
        )?;
        self.shape = BuilderShape::Image {
            c: out_channels,
            h: conv.out_h(),
            w: conv.out_w(),
        };
        self.layers.push(Layer::Conv2d(conv));
        if activation != Activation::Identity {
            self.layers.push(Layer::Activation(activation));
        }
        Ok(self)
    }

    /// Appends a max-pooling stage.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if the running shape is flat or
    /// the pooling geometry is invalid.
    pub fn maxpool(mut self, pool: usize, stride: usize) -> Result<Self, NnError> {
        let BuilderShape::Image { c, h, w } = self.shape else {
            return Err(NnError::InvalidConfig(
                "maxpool: running shape is flat, not an image".into(),
            ));
        };
        let p = MaxPool2d::new(c, h, w, pool, stride)?;
        self.shape = BuilderShape::Image {
            c,
            h: p.out_h(),
            w: p.out_w(),
        };
        self.layers.push(Layer::MaxPool2d(p));
        Ok(self)
    }

    /// Appends an average-pooling stage.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if the running shape is flat or
    /// the pooling geometry is invalid.
    pub fn avgpool(mut self, pool: usize, stride: usize) -> Result<Self, NnError> {
        let BuilderShape::Image { c, h, w } = self.shape else {
            return Err(NnError::InvalidConfig(
                "avgpool: running shape is flat, not an image".into(),
            ));
        };
        let p = AvgPool2d::new(c, h, w, pool, stride)?;
        self.shape = BuilderShape::Image {
            c,
            h: p.out_h(),
            w: p.out_w(),
        };
        self.layers.push(Layer::AvgPool2d(p));
        Ok(self)
    }

    /// Finishes the network.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if no layers were added.
    pub fn build(self) -> Result<Network, NnError> {
        if let Some(msg) = self.error {
            return Err(NnError::InvalidConfig(msg));
        }
        Network::from_layers(self.input_dim, self.layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use napmon_tensor::Matrix;

    fn two_layer() -> Network {
        // 2 -> 3 (ReLU) -> 1
        let l1 = Dense::new(
            Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]),
            vec![0.0, -0.5, 0.0],
        )
        .unwrap();
        let l2 = Dense::new(Matrix::from_rows(&[&[1.0, 1.0, 1.0]]), vec![0.25]).unwrap();
        Network::from_layers(
            2,
            vec![
                Layer::Dense(l1),
                Layer::Activation(Activation::Relu),
                Layer::Dense(l2),
            ],
        )
        .unwrap()
    }

    #[test]
    fn from_layers_validates_dimension_chain() {
        let bad = Dense::new(Matrix::identity(3), vec![0.0; 3]).unwrap();
        let err = Network::from_layers(2, vec![Layer::Dense(bad)]).unwrap_err();
        assert!(matches!(err, NnError::ShapeMismatch { .. }));
        assert!(Network::from_layers(0, vec![]).is_err());
        assert!(Network::from_layers(2, vec![]).is_err());
    }

    #[test]
    fn dims_tracks_every_boundary() {
        let net = two_layer();
        assert_eq!(net.dims(), vec![2, 3, 3, 1]);
        assert_eq!(net.dim_at(0), 2);
        assert_eq!(net.dim_at(2), 3);
        assert_eq!(net.input_dim(), 2);
        assert_eq!(net.output_dim(), 1);
        assert_eq!(net.num_layers(), 3);
    }

    #[test]
    fn forward_composes_layers() {
        let net = two_layer();
        // x = (1, 2): dense -> (1, 1.5, 3), relu -> same, sum + 0.25 = 5.75
        assert_eq!(net.forward(&[1.0, 2.0]), vec![5.75]);
        // x = (-1, 0): dense -> (-1, -0.5, -1), relu -> 0, out = 0.25
        assert_eq!(net.forward(&[-1.0, 0.0]), vec![0.25]);
    }

    #[test]
    fn forward_prefix_zero_is_identity() {
        let net = two_layer();
        assert_eq!(net.forward_prefix(&[3.0, -4.0], 0), vec![3.0, -4.0]);
    }

    #[test]
    fn prefix_then_range_equals_full_forward() {
        let net = two_layer();
        let x = [0.3, 0.8];
        for k in 0..=net.num_layers() {
            let mid = net.forward_prefix(&x, k);
            let out = net.forward_range(&mid, k, net.num_layers());
            assert_eq!(out, net.forward(&x), "split at boundary {k}");
        }
    }

    #[test]
    fn boundary_values_match_prefixes() {
        let net = two_layer();
        let x = [1.0, 2.0];
        let bs = net.boundary_values(&x);
        assert_eq!(bs.len(), net.num_layers() + 1);
        for (k, b) in bs.iter().enumerate() {
            assert_eq!(*b, net.forward_prefix(&x, k));
        }
    }

    #[test]
    fn penultimate_boundary_points_before_last_dense() {
        let net = two_layer();
        // Layers: [Dense, Relu, Dense] -> last dense at index 2 -> boundary 2.
        assert_eq!(net.penultimate_boundary(), 2);
    }

    #[test]
    fn seeded_network_shapes_and_determinism() {
        let a = Network::seeded(
            5,
            4,
            &[
                LayerSpec::dense(8, Activation::Relu),
                LayerSpec::dense(3, Activation::Identity),
            ],
        );
        let b = Network::seeded(
            5,
            4,
            &[
                LayerSpec::dense(8, Activation::Relu),
                LayerSpec::dense(3, Activation::Identity),
            ],
        );
        assert_eq!(a, b);
        assert_eq!(a.dims(), vec![4, 8, 8, 3]);
        assert_eq!(a.num_params(), 4 * 8 + 8 + 8 * 3 + 3);
    }

    #[test]
    fn builder_tracks_image_shapes() {
        let net = NetworkBuilder::image(7, 1, 8, 8)
            .conv(4, 3, 1, 1, Activation::Relu)
            .unwrap()
            .maxpool(2, 2)
            .unwrap()
            .dense(16, Activation::Relu)
            .dense(2, Activation::Identity)
            .build()
            .unwrap();
        // conv keeps 8x8 (padding 1), pool halves to 4x4, 4 channels = 64.
        assert_eq!(net.dims(), vec![64, 256, 256, 64, 16, 16, 2]);
    }

    #[test]
    fn builder_rejects_conv_after_dense() {
        let err = NetworkBuilder::image(7, 1, 8, 8)
            .dense(16, Activation::Relu)
            .conv(4, 3, 1, 1, Activation::Relu)
            .unwrap_err();
        assert!(err.to_string().contains("flat"));
    }

    #[test]
    fn predict_class_takes_argmax() {
        let l = Dense::new(Matrix::from_rows(&[&[1.0], &[2.0], &[-1.0]]), vec![0.0; 3]).unwrap();
        let net = Network::from_layers(1, vec![Layer::Dense(l)]).unwrap();
        assert_eq!(net.predict_class(&[1.0]), 1);
        assert_eq!(net.predict_class(&[-1.0]), 2);
    }
}

impl std::fmt::Display for Network {
    /// One line per layer plus a parameter count — the quick sanity view
    /// for experiment logs.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Network {} -> {} ({} layers, {} params)",
            self.input_dim(),
            self.output_dim(),
            self.num_layers(),
            self.num_params()
        )?;
        let dims = self.dims();
        for (i, layer) in self.layers.iter().enumerate() {
            let kind = match layer {
                Layer::Dense(_) => "dense",
                Layer::Conv2d(_) => "conv2d",
                Layer::MaxPool2d(_) => "maxpool2d",
                Layer::AvgPool2d(_) => "avgpool2d",
                Layer::BatchNorm(_) => "batchnorm",
                Layer::Activation(Activation::Identity) => "identity",
                Layer::Activation(Activation::Relu) => "relu",
                Layer::Activation(Activation::LeakyRelu { .. }) => "leaky-relu",
                Layer::Activation(Activation::Sigmoid) => "sigmoid",
                Layer::Activation(Activation::Tanh) => "tanh",
            };
            writeln!(
                f,
                "  [{:>2}] {:<10} {:>5} -> {:<5}",
                i + 1,
                kind,
                dims[i],
                dims[i + 1]
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod display_tests {
    use super::*;

    #[test]
    fn display_lists_every_layer_and_param_count() {
        let net = Network::seeded(
            1,
            4,
            &[
                LayerSpec::dense(8, Activation::Relu),
                LayerSpec::dense(2, Activation::Identity),
            ],
        );
        let s = net.to_string();
        assert!(s.contains("Network 4 -> 2"), "{s}");
        assert!(s.contains("dense"));
        assert!(s.contains("relu"));
        assert!(s.contains(&format!("{} params", net.num_params())));
        // One line per layer plus the header.
        assert_eq!(s.lines().count(), net.num_layers() + 1);
    }
}
