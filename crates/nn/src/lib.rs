//! Feed-forward deep neural networks for the `napmon` workspace.
//!
//! The paper models a trained DNN as a function `G = g_n ∘ … ∘ g_1` with
//! fixed parameters, and the monitors need to evaluate *slices* of that
//! composition:
//!
//! - `G^k(v)` — the first `k` layer transformations ([`Network::forward_prefix`]),
//! - `G^{l→k}(v)` — layers `l+1 … k` applied to an intermediate vector
//!   ([`Network::forward_range`], used when perturbation is injected at the
//!   output of layer `kp`).
//!
//! A [`Layer`] is one transformation `g_i`: an affine map (dense or
//! convolutional), a pooling stage, or an elementwise [`Activation`].
//! Keeping linear maps and activations as *separate* layers makes the
//! abstract-interpretation crate (`napmon-absint`) exact on every affine
//! layer and confines over-approximation to the activations, while still
//! matching the paper's formulation (each `g_i` is one layer transformation).
//!
//! The [`train`] module provides enough machinery (SGD/Adam, MSE and
//! softmax cross-entropy, mini-batch trainer) to train the perception
//! networks used by the experiments from scratch — the paper's race-track
//! waypoint regressor is a small feed-forward network, well within reach of
//! a CPU trainer.
//!
//! ```
//! use napmon_nn::{Activation, LayerSpec, Network};
//!
//! let net = Network::seeded(1, 2, &[
//!     LayerSpec::dense(4, Activation::Relu),
//!     LayerSpec::dense(1, Activation::Identity),
//! ]);
//! let y = net.forward(&[0.5, -0.5]);
//! assert_eq!(y.len(), 1);
//! // G^0 is the identity; the full prefix equals forward().
//! assert_eq!(net.forward_prefix(&[0.5, -0.5], 0), vec![0.5, -0.5]);
//! assert_eq!(net.forward_prefix(&[0.5, -0.5], net.num_layers()), y);
//! ```

pub mod activation;
pub mod error;
pub mod io;
pub mod layer;
pub mod network;
pub mod train;

pub use activation::Activation;
pub use error::NnError;
pub use layer::{AvgPool2d, BatchNorm1d, Conv2d, Dense, Layer, MaxPool2d};
pub use network::{ForwardScratch, LayerSpec, Network};
pub use train::{accuracy, Loss, Optimizer, TrainReport, Trainer};
