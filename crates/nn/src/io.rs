//! Model persistence.
//!
//! Networks serialize to JSON: the files are small (the perception networks
//! in the experiments have tens of thousands of parameters), diff-able, and
//! inspectable — which matters when a monitor's behaviour must be traced
//! back to the exact parameters it was built against.

use crate::error::NnError;
use crate::network::Network;
use std::fs;
use std::path::Path;

/// Saves a network as JSON at `path`, creating parent directories.
///
/// # Errors
///
/// Returns [`NnError::Io`] on filesystem failure or [`NnError::Serde`] if
/// serialization fails.
pub fn save(net: &Network, path: impl AsRef<Path>) -> Result<(), NnError> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let json = serde_json::to_string(net)?;
    fs::write(path, json)?;
    Ok(())
}

/// Loads a network previously written by [`save`].
///
/// # Errors
///
/// Returns [`NnError::Io`] if the file cannot be read or
/// [`NnError::Serde`] if it does not contain a valid network.
pub fn load(path: impl AsRef<Path>) -> Result<Network, NnError> {
    let json = fs::read_to_string(path)?;
    Ok(serde_json::from_str(&json)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::network::LayerSpec;

    #[test]
    fn save_load_round_trip() {
        let net = Network::seeded(
            3,
            4,
            &[
                LayerSpec::dense(8, Activation::Relu),
                LayerSpec::dense(2, Activation::Identity),
            ],
        );
        let dir = std::env::temp_dir().join("napmon_nn_io_test");
        let path = dir.join("model.json");
        save(&net, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(net, loaded);
        assert_eq!(
            net.forward(&[0.1, 0.2, 0.3, 0.4]),
            loaded.forward(&[0.1, 0.2, 0.3, 0.4])
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = load("/nonexistent/napmon/model.json").unwrap_err();
        assert!(matches!(err, NnError::Io(_)));
    }

    #[test]
    fn load_garbage_is_serde_error() {
        let dir = std::env::temp_dir().join("napmon_nn_io_garbage");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        fs::write(&path, "{not json").unwrap();
        let err = load(&path).unwrap_err();
        assert!(matches!(err, NnError::Serde(_)));
        fs::remove_dir_all(&dir).ok();
    }
}
