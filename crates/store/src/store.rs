//! The log-structured pattern store.

use crate::error::StoreError;
use crate::faults::Faults;
use crate::manifest::{Manifest, SegmentMeta, MANIFEST_VERSION};
use crate::segment::{segment_file_name, sort_dedup_words, Segment};
use crate::tail::{tail_path, TailLog};
use napmon_bdd::{BitSliceSet, BitWord, FxBuildHasher};
use napmon_core::{MonitorError, PatternSource, SharedPatternSource, SourceDescriptor};
use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::{Arc, RwLock};

/// Sizing knobs of a store; see [`StoreConfig::new`] for the defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Width of every stored word, in bits (monitor dimension × bits per
    /// neuron).
    pub word_bits: usize,
    /// Words the tail may accumulate before it is sealed into a sorted
    /// segment automatically.
    pub segment_capacity: usize,
    /// Bloom filter budget per word in sealed segments (10 bits ≈ 1%
    /// false-positive rate).
    pub bloom_bits_per_word: usize,
}

impl StoreConfig {
    /// The default sizing for `word_bits`-bit words: 64 Ki-word segments,
    /// 10 Bloom bits per word.
    pub fn new(word_bits: usize) -> Self {
        Self {
            word_bits,
            segment_capacity: 1 << 16,
            bloom_bits_per_word: 10,
        }
    }

    /// Overrides the tail capacity that triggers auto-sealing.
    pub fn segment_capacity(mut self, words: usize) -> Self {
        self.segment_capacity = words.max(1);
        self
    }

    /// Overrides the per-word Bloom filter budget.
    pub fn bloom_bits_per_word(mut self, bits: usize) -> Self {
        self.bloom_bits_per_word = bits.max(1);
        self
    }
}

/// A live snapshot of a store's shape and history.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct StoreStats {
    /// Width of every stored word, in bits.
    pub word_bits: usize,
    /// Number of sealed segments.
    pub segments: usize,
    /// Distinct words across sealed segments.
    pub sealed_words: u64,
    /// Distinct words still in the unsealed tail.
    pub tail_words: u64,
    /// Appends accepted since the store was opened (new words only).
    pub appended: u64,
    /// Appends skipped as duplicates since the store was opened.
    pub deduplicated: u64,
    /// Bytes the store occupies on disk (manifest + segments + tail).
    pub disk_bytes: u64,
}

/// An append-only, log-structured, on-disk store of packed [`BitWord`]
/// patterns.
///
/// Layout of a store directory:
///
/// - `MANIFEST.json` — the atomic catalog of sealed segments
///   ([`crate::manifest::Manifest`]); replaced via tmp-file + rename, so
///   commits are crash-safe.
/// - `segment-NNNNNNNN.seg` — immutable sorted word blocks with inline
///   Bloom filters and whole-file checksums ([`crate::segment`]).
/// - `tail.log` — the active append log; fixed-width per-record checksums
///   let a torn final record be detected and dropped on open (see the
///   `tail` module).
///
/// Appends deduplicate against the whole store, buffer through the tail
/// log (write-batched; [`PatternStore::commit`] is the durability point),
/// and auto-seal into sorted segments at
/// [`StoreConfig::segment_capacity`]. [`PatternStore::compact`] merges all
/// segments plus the tail into one, dropping duplicates and dead bytes.
///
/// Queries serve from memory-resident structures loaded at open (Bloom
/// filters + sorted word blocks + a hash index over the tail), so exact
/// membership is `O(segments · log words)` with Bloom-filtered negatives.
/// Hamming-ball membership runs a prefix-partitioned bit-sliced kernel:
/// each sealed segment carries per-partition AND/OR masks that prune
/// whole partitions by a distance lower bound, and surviving partitions
/// are scanned in the block-transposed layout of
/// [`napmon_bdd::BitSliceSet`] rather than word-at-a-time (see
/// [`PatternStore::contains_within`]).
#[derive(Debug)]
pub struct PatternStore {
    dir: PathBuf,
    config: StoreConfig,
    limbs: usize,
    next_segment_id: u64,
    segments: Vec<Segment>,
    tail: TailLog,
    /// Flat packed limbs of the tail's words, in append order.
    tail_words: Vec<u64>,
    /// Exact-membership index over the tail.
    tail_index: HashSet<BitWord, FxBuildHasher>,
    /// Block-transposed mirror of the tail for the batch Hamming kernel;
    /// kept in lockstep with `tail_index` (fresh words only).
    tail_slices: BitSliceSet,
    appended: u64,
    deduplicated: u64,
    /// Held OS advisory lock on `LOCK`: opens are exclusive (see
    /// [`StoreError::Locked`]); released automatically on drop or process
    /// death.
    _lock: std::fs::File,
    /// Fault-injection hooks (inert unless the `fault-injection` feature
    /// is on and an injector was threaded in).
    faults: Faults,
}

#[inline]
const fn limbs_for(bits: usize) -> usize {
    bits.div_ceil(64)
}

impl PatternStore {
    /// Creates a fresh store at `dir` (creating the directory), failing if
    /// a store already exists there.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Mismatch`] if a manifest already exists, or
    /// [`StoreError::Io`] on filesystem failure.
    pub fn create(dir: impl Into<PathBuf>, config: StoreConfig) -> Result<Self, StoreError> {
        Self::create_inner(dir.into(), config, Faults::default())
    }

    fn create_inner(dir: PathBuf, config: StoreConfig, faults: Faults) -> Result<Self, StoreError> {
        if config.word_bits == 0 {
            return Err(StoreError::Mismatch("word_bits must be positive".into()));
        }
        std::fs::create_dir_all(&dir)?;
        if crate::manifest::manifest_path(&dir).exists() {
            return Err(StoreError::Mismatch(format!(
                "a store already exists at {}",
                dir.display()
            )));
        }
        let manifest = Manifest {
            format_version: MANIFEST_VERSION,
            word_bits: config.word_bits,
            segment_capacity: config.segment_capacity,
            bloom_bits_per_word: config.bloom_bits_per_word,
            next_segment_id: 0,
            segments: Vec::new(),
        };
        manifest.store(&dir, &faults)?;
        Self::from_manifest(dir, manifest, faults)
    }

    /// Opens the store at `dir`, verifying every sealed segment's checksum
    /// and recovering the tail log (torn trailing records are dropped).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Missing`] if no store exists at `dir`,
    /// [`StoreError::Corrupt`] for failed integrity checks on sealed
    /// files, and [`StoreError::Io`] on filesystem failure.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let dir = dir.into();
        let manifest = Manifest::load(&dir)?;
        Self::from_manifest(dir, manifest, Faults::default())
    }

    /// Like [`PatternStore::create`], with `injector` consulted at every
    /// named fault site of the durability path (see the site table in the
    /// crate's `faults` module docs). Test-only machinery behind the
    /// `fault-injection` feature.
    ///
    /// # Errors
    ///
    /// As [`PatternStore::create`], plus the injector's planned faults.
    #[cfg(feature = "fault-injection")]
    pub fn create_with_faults(
        dir: impl Into<PathBuf>,
        config: StoreConfig,
        injector: napmon_faultline::FaultInjector,
    ) -> Result<Self, StoreError> {
        Self::create_inner(dir.into(), config, Faults::new(injector))
    }

    /// Like [`PatternStore::open`], with `injector` consulted at every
    /// named fault site of the durability path. Test-only machinery behind
    /// the `fault-injection` feature.
    ///
    /// # Errors
    ///
    /// As [`PatternStore::open`], plus the injector's planned faults.
    #[cfg(feature = "fault-injection")]
    pub fn open_with_faults(
        dir: impl Into<PathBuf>,
        injector: napmon_faultline::FaultInjector,
    ) -> Result<Self, StoreError> {
        let dir = dir.into();
        let manifest = Manifest::load(&dir)?;
        Self::from_manifest(dir, manifest, Faults::new(injector))
    }

    /// Opens the store at `dir` if one exists, creating it with `config`
    /// otherwise. An existing store must match `config.word_bits`.
    ///
    /// # Errors
    ///
    /// Any [`PatternStore::open`] / [`PatternStore::create`] error, plus
    /// [`StoreError::Mismatch`] on word-width disagreement.
    pub fn open_or_create(
        dir: impl Into<PathBuf>,
        config: StoreConfig,
    ) -> Result<Self, StoreError> {
        let dir = dir.into();
        match Self::open(&dir) {
            Ok(store) => {
                if store.word_bits() != config.word_bits {
                    return Err(StoreError::Mismatch(format!(
                        "store at {} holds {}-bit words, caller wants {}-bit",
                        dir.display(),
                        store.word_bits(),
                        config.word_bits
                    )));
                }
                Ok(store)
            }
            Err(StoreError::Missing(_)) => Self::create(dir, config),
            Err(e) => Err(e),
        }
    }

    fn from_manifest(dir: PathBuf, manifest: Manifest, faults: Faults) -> Result<Self, StoreError> {
        let lock = acquire_lock(&dir)?;
        let limbs = limbs_for(manifest.word_bits);
        let mut segments = Vec::with_capacity(manifest.segments.len());
        for meta in &manifest.segments {
            segments.push(Segment::load(
                &dir,
                &meta.file,
                manifest.word_bits,
                limbs,
                meta.checksum,
                meta.masks_checksum,
            )?);
        }
        let (tail, recovered) =
            TailLog::open(tail_path(&dir), manifest.word_bits, limbs, faults.clone())?;
        let mut store = Self {
            dir,
            config: StoreConfig {
                word_bits: manifest.word_bits,
                segment_capacity: manifest.segment_capacity,
                bloom_bits_per_word: manifest.bloom_bits_per_word,
            },
            limbs,
            next_segment_id: manifest.next_segment_id,
            segments,
            tail,
            tail_words: Vec::new(),
            tail_index: HashSet::default(),
            tail_slices: BitSliceSet::with_bits(manifest.word_bits),
            appended: 0,
            deduplicated: 0,
            _lock: lock,
            faults,
        };
        // Rebuild the tail's in-memory index from the recovered records,
        // dropping words a sealed segment already holds: a crash between
        // seal()'s manifest swap and its tail reset leaves the sealed
        // words still in tail.log, and replaying them would double-count
        // the set (and re-seal the duplicates later).
        let mut stale = false;
        // The recovery buffer must hold whole words; a fractional trailing
        // chunk would otherwise vanish in `chunks_exact` below, silently
        // shrinking the recovered set.
        if !recovered.len().is_multiple_of(limbs.max(1)) {
            return Err(StoreError::Corrupt {
                file: tail_path(&store.dir),
                detail: format!(
                    "recovered tail block of {} limbs is not a multiple of the \
                     {}-limb word width",
                    recovered.len(),
                    limbs.max(1)
                ),
            });
        }
        for chunk in recovered.chunks_exact(limbs.max(1)) {
            if store.segments.iter().rev().any(|s| s.contains(chunk)) {
                stale = true;
                continue;
            }
            let word = word_from_limbs(chunk, store.config.word_bits);
            if store.tail_index.insert(word) {
                store.tail_words.extend_from_slice(chunk);
                store.tail_slices.insert_limbs(chunk);
            }
        }
        if stale {
            // Replace the log atomically with the reconciled view. The
            // surviving words were already durably committed, so the
            // rewrite must not pass through a truncated state a crash
            // could freeze — tmp file + rename, like the manifest.
            store
                .tail
                .rewrite(store.config.word_bits, &store.tail_words)?;
        }
        Ok(store)
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Width of every stored word, in bits.
    pub fn word_bits(&self) -> usize {
        self.config.word_bits
    }

    /// The sizing configuration the store runs with.
    pub fn config(&self) -> StoreConfig {
        self.config
    }

    /// Number of sealed segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Number of distinct words across segments and tail.
    pub fn len(&self) -> u64 {
        self.segments.iter().map(|s| s.len() as u64).sum::<u64>() + self.tail_index.len() as u64
    }

    /// Whether the store holds no words.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends one word. Returns `true` if the word was new; duplicates
    /// (anywhere in the store) are skipped without touching disk.
    ///
    /// The append lands in the buffered tail log; call
    /// [`PatternStore::commit`] to make a batch durable. When the tail
    /// reaches [`StoreConfig::segment_capacity`] words it is sealed into a
    /// sorted segment automatically (which is itself a durable commit).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Mismatch`] for a wrong-width word and
    /// [`StoreError::Io`] on filesystem failure.
    pub fn append(&mut self, word: &BitWord) -> Result<bool, StoreError> {
        if word.len() != self.config.word_bits {
            return Err(StoreError::Mismatch(format!(
                "append of a {}-bit word to a {}-bit store",
                word.len(),
                self.config.word_bits
            )));
        }
        #[cfg(feature = "obs")]
        let started = std::time::Instant::now();
        if self.contains(word) {
            self.deduplicated += 1;
            #[cfg(feature = "obs")]
            crate::obs::metrics().deduplicated.inc();
            return Ok(false);
        }
        self.tail.append(word.limbs())?;
        self.tail_words.extend_from_slice(word.limbs());
        self.tail_index.insert(word.clone());
        self.tail_slices.insert_limbs(word.limbs());
        self.appended += 1;
        if self.tail_index.len() >= self.config.segment_capacity {
            self.seal()?;
        }
        #[cfg(feature = "obs")]
        {
            let metrics = crate::obs::metrics();
            metrics.appended.inc();
            metrics
                .append_ns
                .record(started.elapsed().as_nanos() as u64);
        }
        Ok(true)
    }

    /// Appends a batch and commits once at the end (the write-batched
    /// path). Returns the number of new words.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PatternStore::append`].
    pub fn append_batch<'a>(
        &mut self,
        words: impl IntoIterator<Item = &'a BitWord>,
    ) -> Result<u64, StoreError> {
        #[cfg(feature = "obs")]
        let started_ns = napmon_obs::now_ns();
        let mut fresh = 0u64;
        for word in words {
            if self.append(word)? {
                fresh += 1;
            }
        }
        self.commit()?;
        #[cfg(feature = "obs")]
        crate::obs::maintenance_span(napmon_obs::SpanKind::StoreAppend, started_ns, fresh);
        Ok(fresh)
    }

    /// Flushes buffered appends and fsyncs the tail log: after this
    /// returns, every accepted append survives a crash.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on filesystem failure.
    pub fn commit(&mut self) -> Result<(), StoreError> {
        self.tail.commit()
    }

    /// Seals the tail into a sorted, Bloom-filtered segment and commits
    /// the manifest atomically. A no-op on an empty tail.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on filesystem failure.
    pub fn seal(&mut self) -> Result<(), StoreError> {
        if self.tail_index.is_empty() {
            return Ok(());
        }
        #[cfg(feature = "obs")]
        let (started, started_ns, sealed_words) = (
            std::time::Instant::now(),
            napmon_obs::now_ns(),
            self.tail_index.len() as u64,
        );
        let sorted = sort_dedup_words(&self.tail_words, self.limbs);
        let id = self.next_segment_id;
        let file = segment_file_name(id);
        let segment = Segment::write(
            &self.dir,
            &file,
            self.config.word_bits,
            self.limbs,
            &sorted,
            self.config.bloom_bits_per_word,
            &self.faults,
        )?;
        // Two-phase commit: the segment file exists but is invisible until
        // the manifest swap below; a crash in between leaves an ignored
        // orphan file (ids never repeat, so it can never be resurrected).
        self.next_segment_id = id + 1;
        let meta = SegmentMeta {
            file,
            words: segment.len() as u64,
            checksum: segment.checksum,
            masks_checksum: Some(segment.masks_checksum),
        };
        let mut manifest = self.manifest();
        manifest.segments.push(meta);
        manifest.next_segment_id = self.next_segment_id;
        manifest.store(&self.dir, &self.faults)?;
        self.segments.push(segment);
        self.tail.reset()?;
        self.tail_words.clear();
        self.tail_index.clear();
        self.tail_slices = BitSliceSet::with_bits(self.config.word_bits);
        #[cfg(feature = "obs")]
        {
            crate::obs::metrics()
                .seal_ns
                .record(started.elapsed().as_nanos() as u64);
            crate::obs::maintenance_span(napmon_obs::SpanKind::StoreSeal, started_ns, sealed_words);
        }
        Ok(())
    }

    /// Merges every sealed segment plus the tail into one sorted, deduped
    /// segment, commits the new manifest atomically, and deletes the
    /// replaced files. A no-op on an empty store.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on filesystem failure.
    pub fn compact(&mut self) -> Result<(), StoreError> {
        if self.is_empty() {
            return Ok(());
        }
        #[cfg(feature = "obs")]
        let (started, started_ns, live_words) =
            (std::time::Instant::now(), napmon_obs::now_ns(), self.len());
        let mut all: Vec<u64> = Vec::with_capacity((self.len() as usize) * self.limbs);
        for segment in &self.segments {
            all.extend_from_slice(&segment.words);
        }
        all.extend_from_slice(&self.tail_words);
        let sorted = sort_dedup_words(&all, self.limbs);
        let id = self.next_segment_id;
        let file = segment_file_name(id);
        let segment = Segment::write(
            &self.dir,
            &file,
            self.config.word_bits,
            self.limbs,
            &sorted,
            self.config.bloom_bits_per_word,
            &self.faults,
        )?;
        self.next_segment_id = id + 1;
        let manifest = Manifest {
            next_segment_id: self.next_segment_id,
            segments: vec![SegmentMeta {
                file,
                words: segment.len() as u64,
                checksum: segment.checksum,
                masks_checksum: Some(segment.masks_checksum),
            }],
            ..self.manifest()
        };
        manifest.store(&self.dir, &self.faults)?;
        // The old files are dead the moment the manifest swap lands;
        // removal is cleanup, not correctness.
        let old: Vec<String> = self.segments.iter().map(|s| s.file.clone()).collect();
        self.segments = vec![segment];
        self.tail.reset()?;
        self.tail_words.clear();
        self.tail_index.clear();
        self.tail_slices = BitSliceSet::with_bits(self.config.word_bits);
        for file in old {
            let _ = std::fs::remove_file(self.dir.join(file));
        }
        #[cfg(feature = "obs")]
        {
            crate::obs::metrics()
                .compact_ns
                .record(started.elapsed().as_nanos() as u64);
            crate::obs::maintenance_span(
                napmon_obs::SpanKind::StoreCompact,
                started_ns,
                live_words,
            );
        }
        Ok(())
    }

    fn manifest(&self) -> Manifest {
        Manifest {
            format_version: MANIFEST_VERSION,
            word_bits: self.config.word_bits,
            segment_capacity: self.config.segment_capacity,
            bloom_bits_per_word: self.config.bloom_bits_per_word,
            next_segment_id: self.next_segment_id,
            segments: self
                .segments
                .iter()
                .map(|s| SegmentMeta {
                    file: s.file.clone(),
                    words: s.len() as u64,
                    checksum: s.checksum,
                    masks_checksum: Some(s.masks_checksum),
                })
                .collect(),
        }
    }

    /// Every distinct word the store holds, sealed segments first (oldest
    /// to newest) then the tail in append order. Materializes the full
    /// set — meant for audits and recovery oracles, not the query path.
    pub fn words(&self) -> Vec<BitWord> {
        let limbs = self.limbs.max(1);
        debug_assert!(
            self.tail_words.len().is_multiple_of(limbs),
            "tail word block is not word-aligned"
        );
        let mut out = Vec::with_capacity(self.len() as usize);
        for segment in &self.segments {
            for chunk in segment.words.chunks_exact(limbs) {
                out.push(word_from_limbs(chunk, self.config.word_bits));
            }
        }
        for chunk in self.tail_words.chunks_exact(limbs) {
            out.push(word_from_limbs(chunk, self.config.word_bits));
        }
        out
    }

    /// Exact membership: the tail's hash index, then per segment (newest
    /// first) Bloom filter → binary search.
    pub fn contains(&self, word: &BitWord) -> bool {
        if self.tail_index.contains(word) {
            return true;
        }
        let limbs = word.limbs();
        self.segments.iter().rev().any(|s| s.contains(limbs))
    }

    /// Hamming-ball membership: whether some stored word differs from
    /// `word` in at most `tau` positions.
    ///
    /// Sealed segments answer through their prefix-partitioned index —
    /// per-partition AND/OR masks lower-bound the distance to every word
    /// in the partition, so partitions that cannot hold a hit are skipped
    /// without touching their words, and survivors run the bit-sliced
    /// batch kernel over exactly their superblocks (see
    /// [`napmon_bdd::BitSliceSet`]). The unsealed tail keeps a sliced
    /// mirror and scans it the same way.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Mismatch`] if `word`'s width differs from the
    /// store's. (An earlier revision compared only the overlapping limbs
    /// of a wrong-width query — a silently-truncated answer; the width is
    /// now part of the contract.)
    pub fn contains_within(&self, word: &BitWord, tau: usize) -> Result<bool, StoreError> {
        if word.len() != self.config.word_bits {
            return Err(StoreError::Mismatch(format!(
                "Hamming query with a {}-bit word against a {}-bit store",
                word.len(),
                self.config.word_bits
            )));
        }
        if tau == 0 {
            return Ok(self.contains(word));
        }
        Ok(self.tail_slices.contains_within(word, tau)
            || self.segments.iter().any(|s| s.contains_within(word, tau)))
    }

    /// A live snapshot of the store's shape and history.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if on-disk sizes cannot be read.
    pub fn stats(&mut self) -> Result<StoreStats, StoreError> {
        Ok(StoreStats {
            word_bits: self.config.word_bits,
            segments: self.segments.len(),
            sealed_words: self.segments.iter().map(|s| s.len() as u64).sum(),
            tail_words: self.tail_index.len() as u64,
            appended: self.appended,
            deduplicated: self.deduplicated,
            disk_bytes: self.disk_bytes()?,
        })
    }

    /// Bytes the store occupies on disk (manifest + sealed segments +
    /// tail log, including not-yet-committed buffered appends).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if file sizes cannot be read.
    pub fn disk_bytes(&mut self) -> Result<u64, StoreError> {
        let mut total = self.tail.disk_bytes()?;
        total += std::fs::metadata(crate::manifest::manifest_path(&self.dir))?.len();
        for segment in &self.segments {
            total += std::fs::metadata(self.dir.join(&segment.file))?.len();
        }
        Ok(total)
    }

    /// Wraps the store into the shared, lock-guarded form monitors consume
    /// (see [`napmon_core::SharedPatternSource`]).
    pub fn into_shared(self) -> SharedPatternSource {
        Arc::new(RwLock::new(self))
    }
}

fn word_from_limbs(limbs: &[u64], bits: usize) -> BitWord {
    BitWord::from_fn(bits, |i| (limbs[i / 64] >> (i % 64)) & 1 == 1)
}

/// Takes the store's exclusive advisory lock (`LOCK` in the store
/// directory). The lock is tied to the returned file handle: dropping the
/// store — or the process dying — releases it, so crashes never wedge a
/// store.
fn acquire_lock(dir: &Path) -> Result<std::fs::File, StoreError> {
    let lock = std::fs::OpenOptions::new()
        .create(true)
        .truncate(false)
        .write(true)
        .open(dir.join("LOCK"))?;
    match lock.try_lock() {
        Ok(()) => Ok(lock),
        Err(std::fs::TryLockError::WouldBlock) => Err(StoreError::Locked(dir.to_path_buf())),
        Err(std::fs::TryLockError::Error(e)) => Err(StoreError::Io(e)),
    }
}

impl PatternSource for PatternStore {
    fn word_bits(&self) -> usize {
        self.config.word_bits
    }

    fn insert(&mut self, word: &BitWord) -> Result<bool, MonitorError> {
        if word.len() != self.config.word_bits {
            return Err(MonitorError::DimensionMismatch {
                context: "pattern store insert".into(),
                expected: self.config.word_bits,
                actual: word.len(),
            });
        }
        self.append(word).map_err(Into::into)
    }

    fn contains(&self, word: &BitWord) -> bool {
        PatternStore::contains(self, word)
    }

    fn contains_within(&self, word: &BitWord, tau: usize) -> bool {
        // The only failure mode is a width mismatch, and monitors validate
        // word width when the source is attached — reaching it here is a
        // bug in the caller, not a runtime condition.
        PatternStore::contains_within(self, word, tau)
            .expect("query width is validated when the source is attached to a monitor")
    }

    fn word_count(&self) -> u64 {
        self.len()
    }

    fn store_size(&self) -> usize {
        self.len() as usize
    }

    fn commit(&mut self) -> Result<(), MonitorError> {
        PatternStore::commit(self).map_err(Into::into)
    }

    fn descriptor(&self) -> SourceDescriptor {
        SourceDescriptor {
            kind: "napmon-store".into(),
            path: self.dir.display().to_string(),
            word_bits: self.config.word_bits,
        }
    }
}

/// A [`napmon_core::SourceProvider`] handing each member monitor its own
/// store under one root directory (`member-NNNN/`). The layout is what
/// multi-layer and per-class compositions persist as, and what
/// [`open_member_source`] reopens.
#[derive(Debug, Clone)]
pub struct StoreProvider {
    root: PathBuf,
    segment_capacity: Option<usize>,
}

impl StoreProvider {
    /// A provider that opens-or-creates member stores under `root`.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Self {
            root: root.into(),
            segment_capacity: None,
        }
    }

    /// Overrides the segment capacity of newly created member stores.
    pub fn segment_capacity(mut self, words: usize) -> Self {
        self.segment_capacity = Some(words);
        self
    }

    /// The directory backing member `member` under `root`.
    pub fn member_dir(root: &Path, member: usize) -> PathBuf {
        root.join(format!("member-{member:04}"))
    }

    /// The store namespace for one mounted tenant version:
    /// `root/tenant-<id>/v<NNNN>/`, with the usual `member-NNNN/` layout
    /// nested underneath. Namespacing by *version* (not just tenant) is
    /// what lets a registry hot-swap a store-backed monitor: the candidate
    /// version's stores live in their own directory, so its advisory locks
    /// never alias the still-serving version's.
    pub fn tenant_dir(root: &Path, tenant: &str, version: u32) -> PathBuf {
        root.join(format!("tenant-{tenant}"))
            .join(format!("v{version:04}"))
    }
}

impl From<PathBuf> for StoreProvider {
    fn from(root: PathBuf) -> Self {
        Self::new(root)
    }
}

impl napmon_core::SourceProvider for StoreProvider {
    fn open_source(
        &mut self,
        member: usize,
        word_bits: usize,
    ) -> Result<SharedPatternSource, MonitorError> {
        let mut config = StoreConfig::new(word_bits);
        if let Some(capacity) = self.segment_capacity {
            config = config.segment_capacity(capacity);
        }
        let store = PatternStore::open_or_create(Self::member_dir(&self.root, member), config)?;
        Ok(store.into_shared())
    }
}

/// Reopens the existing member store under `root` for member `member`,
/// verifying it holds `word_bits`-bit words — the warm-start path
/// (`MonitorEngine::from_store` in `napmon-serve` resolves members through
/// this).
///
/// # Errors
///
/// Returns [`StoreError::Missing`] if the member store does not exist and
/// [`StoreError::Mismatch`] on word-width disagreement, both mapped into
/// [`MonitorError::ExternalSource`].
pub fn open_member_source(
    root: &Path,
    member: usize,
    word_bits: usize,
) -> Result<SharedPatternSource, MonitorError> {
    let dir = StoreProvider::member_dir(root, member);
    let store = PatternStore::open(&dir)?;
    if store.word_bits() != word_bits {
        return Err(MonitorError::DimensionMismatch {
            context: format!("member store {}", dir.display()),
            expected: word_bits,
            actual: store.word_bits(),
        });
    }
    Ok(store.into_shared())
}
