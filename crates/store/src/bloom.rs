//! Per-segment Bloom filters for fast negative membership.
//!
//! Every sealed segment carries a Bloom filter over its words, so an exact
//! membership query touches a segment's sorted word block only when the
//! filter says "maybe". Filters are sized at build time from the segment's
//! word count ([`BloomFilter::with_capacity`]) and serialized inline in
//! the segment file.

use crate::checksum::fnv1a_limbs;

/// A classic `k`-hash Bloom filter over packed word limbs.
///
/// The two base hashes come from one FNV-1a pass over the limbs plus a
/// SplitMix64 finalizer; probe `i` uses the standard double-hashing scheme
/// `h1 + i·h2`, which preserves the false-positive bound of `k`
/// independent hashes (Kirsch & Mitzenmacher).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u64>,
    /// Number of addressable bits (`m`).
    m: u64,
    /// Number of probes per key (`k`).
    k: u32,
}

/// SplitMix64 finalizer: decorrelates the second probe hash from the first.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl BloomFilter {
    /// A filter sized for `words` keys at `bits_per_word` bits each, with
    /// the near-optimal probe count `k ≈ bits_per_word · ln 2`.
    pub fn with_capacity(words: usize, bits_per_word: usize) -> Self {
        let m = (words.max(1) * bits_per_word.max(1)).max(64) as u64;
        let k = ((bits_per_word as f64 * std::f64::consts::LN_2).round() as u32).clamp(1, 16);
        Self::new(m, k)
    }

    /// An empty filter with `m` bits and `k` probes.
    pub fn new(m: u64, k: u32) -> Self {
        Self {
            bits: vec![0u64; (m as usize).div_ceil(64)],
            m,
            k,
        }
    }

    /// Rebuilds a filter from its serialized parts (segment load path).
    pub fn from_parts(bits: Vec<u64>, m: u64, k: u32) -> Self {
        debug_assert_eq!(bits.len(), (m as usize).div_ceil(64));
        Self { bits, m, k }
    }

    /// Number of addressable bits.
    pub fn m(&self) -> u64 {
        self.m
    }

    /// Number of probes per key.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The backing bit words (serialization).
    pub fn words(&self) -> &[u64] {
        &self.bits
    }

    #[inline]
    fn probes(&self, limbs: &[u64]) -> (u64, u64) {
        let h1 = fnv1a_limbs(limbs);
        // An odd step hash cycles the full residue ring for power-of-two m
        // and avoids the degenerate h2 = 0 orbit in general.
        let h2 = mix64(h1) | 1;
        (h1, h2)
    }

    /// Marks `limbs` present.
    pub fn insert(&mut self, limbs: &[u64]) {
        let (h1, h2) = self.probes(limbs);
        for i in 0..self.k as u64 {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % self.m;
            self.bits[(bit / 64) as usize] |= 1u64 << (bit % 64);
        }
    }

    /// Whether `limbs` might be present (`false` is definitive).
    #[inline]
    pub fn might_contain(&self, limbs: &[u64]) -> bool {
        let (h1, h2) = self.probes(limbs);
        (0..self.k as u64).all(|i| {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % self.m;
            self.bits[(bit / 64) as usize] & (1u64 << (bit % 64)) != 0
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut bloom = BloomFilter::with_capacity(128, 10);
        let keys: Vec<Vec<u64>> = (0..128u64).map(|i| vec![i * 0x1234_5678, i]).collect();
        for k in &keys {
            bloom.insert(k);
        }
        for k in &keys {
            assert!(bloom.might_contain(k));
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let mut bloom = BloomFilter::with_capacity(512, 10);
        for i in 0..512u64 {
            bloom.insert(&[i, i ^ 0xdead_beef]);
        }
        let false_positives = (10_000u64..20_000)
            .filter(|&i| bloom.might_contain(&[i, i ^ 0xdead_beef]))
            .count();
        // Theoretical rate at 10 bits/key is ~1%; allow generous slack.
        assert!(
            false_positives < 500,
            "false positive rate too high: {false_positives}/10000"
        );
    }

    #[test]
    fn round_trips_through_parts() {
        let mut bloom = BloomFilter::with_capacity(16, 8);
        bloom.insert(&[42]);
        let rebuilt = BloomFilter::from_parts(bloom.words().to_vec(), bloom.m(), bloom.k());
        assert_eq!(rebuilt, bloom);
        assert!(rebuilt.might_contain(&[42]));
    }

    #[test]
    fn empty_filter_rejects_everything() {
        let bloom = BloomFilter::with_capacity(64, 10);
        assert!(!bloom.might_contain(&[1, 2, 3]));
    }
}
