//! Store-side observability probes (compiled only with the `obs` feature).
//!
//! All metrics land in the process-wide [`napmon_obs::global`] registry
//! under the `store.` namespace, so a wire server's metrics scrape picks
//! them up without any plumbing through the store API:
//!
//! | metric                      | type      | meaning                               |
//! |-----------------------------|-----------|---------------------------------------|
//! | `store.append_ns`           | histogram | per-word append latency               |
//! | `store.seal_ns`             | histogram | tail → sorted-segment seal latency    |
//! | `store.compact_ns`          | histogram | full-store compaction latency         |
//! | `store.appended`            | counter   | fresh words accepted                  |
//! | `store.deduplicated`        | counter   | appends skipped as duplicates         |
//! | `store.bloom.hits`          | counter   | segment Bloom probes answering maybe  |
//! | `store.bloom.misses`        | counter   | segment Bloom probes pruning a search |
//! | `store.bloom.false_positives` | counter | maybes the binary search then refuted |
//!
//! Seal and compaction additionally emit [`SpanKind::StoreSeal`] /
//! [`SpanKind::StoreCompact`] trace spans (and batched appends a
//! [`SpanKind::StoreAppend`] span) when tracing is on. Store operations
//! run below the wire layer's request plumbing, so the spans carry trace
//! id 0 — the "background work" id — unless a traced request reaches
//! them some other way.
//!
//! [`SpanKind::StoreSeal`]: napmon_obs::SpanKind::StoreSeal
//! [`SpanKind::StoreCompact`]: napmon_obs::SpanKind::StoreCompact
//! [`SpanKind::StoreAppend`]: napmon_obs::SpanKind::StoreAppend

use napmon_obs::{Counter, LatencyHistogram, SpanKind};
use std::sync::{Arc, OnceLock};

/// Handles into the global registry, resolved once per process so the
/// hot paths never take the registry lock.
pub(crate) struct StoreMetrics {
    pub(crate) append_ns: Arc<LatencyHistogram>,
    pub(crate) seal_ns: Arc<LatencyHistogram>,
    pub(crate) compact_ns: Arc<LatencyHistogram>,
    pub(crate) appended: Counter,
    pub(crate) deduplicated: Counter,
    pub(crate) bloom_hits: Counter,
    pub(crate) bloom_misses: Counter,
    pub(crate) bloom_false_positives: Counter,
}

pub(crate) fn metrics() -> &'static StoreMetrics {
    static METRICS: OnceLock<StoreMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = napmon_obs::global();
        StoreMetrics {
            append_ns: registry.histogram("store.append_ns"),
            seal_ns: registry.histogram("store.seal_ns"),
            compact_ns: registry.histogram("store.compact_ns"),
            appended: registry.counter("store.appended"),
            deduplicated: registry.counter("store.deduplicated"),
            bloom_hits: registry.counter("store.bloom.hits"),
            bloom_misses: registry.counter("store.bloom.misses"),
            bloom_false_positives: registry.counter("store.bloom.false_positives"),
        }
    })
}

/// Emits a store-maintenance span under trace id 0 when tracing is on.
#[inline]
pub(crate) fn maintenance_span(kind: SpanKind, start_ns: u64, detail: u64) {
    if napmon_obs::tracing_enabled() {
        let now = napmon_obs::now_ns();
        napmon_obs::record_span(0, kind, start_ns, now.saturating_sub(start_ns), detail);
    }
}
