//! FNV-1a checksums over bytes and packed limbs.
//!
//! Store files are guarded by 64-bit FNV-1a: cheap, dependency-free, and
//! strong enough to catch the failure modes a local log store actually
//! sees (torn writes, truncation, bit rot) — this is an integrity check,
//! not a cryptographic one.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice.
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// FNV-1a over packed limbs, folding each limb a byte at a time in
/// little-endian order — identical to [`fnv1a`] over the limbs'
/// little-endian byte serialization, without materializing it.
#[inline]
pub fn fnv1a_limbs(limbs: &[u64]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &limb in limbs {
        for shift in (0..64).step_by(8) {
            hash ^= (limb >> shift) & 0xff;
            hash = hash.wrapping_mul(FNV_PRIME);
        }
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limb_hash_matches_byte_hash() {
        let limbs = [0x0123_4567_89ab_cdefu64, 0xdead_beef_0000_ffff];
        let mut bytes = Vec::new();
        for limb in limbs {
            bytes.extend_from_slice(&limb.to_le_bytes());
        }
        assert_eq!(fnv1a_limbs(&limbs), fnv1a(&bytes));
    }

    #[test]
    fn known_vector() {
        // FNV-1a("a") from the reference specification.
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b""), FNV_OFFSET);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let a = fnv1a_limbs(&[1, 2, 3]);
        let b = fnv1a_limbs(&[1, 2, 2]);
        assert_ne!(a, b);
    }
}
