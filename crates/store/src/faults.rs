//! Feature-gated fault-injection hooks on the store's write path.
//!
//! With the `fault-injection` feature off (the default), [`Faults`] is a
//! zero-sized pass-through and every hook compiles to nothing. With it
//! on, a [`napmon_faultline::FaultInjector`] threaded in via
//! [`PatternStore::create_with_faults`](crate::PatternStore::create_with_faults)
//! or [`PatternStore::open_with_faults`](crate::PatternStore::open_with_faults)
//! is consulted at every named site of the durability path:
//!
//! | site | step |
//! |---|---|
//! | `tail.append.write` | tail-log record write (can tear) |
//! | `tail.commit.flush` / `tail.commit.sync` | the durability point |
//! | `tail.reset.truncate` / `tail.reset.sync` | post-seal tail reset |
//! | `tail.rewrite.write` / `.sync` / `.rename` | recovery reconciliation (can tear) |
//! | `segment.write` / `segment.sync` / `segment.rename` | sealed-segment two-phase write (can tear) |
//! | `manifest.write` / `manifest.sync` / `manifest.rename` | the atomic commit point (can tear) |
//!
//! Site names are structural, not per-operation: `seal()` and `compact()`
//! both cross `segment.write`, distinguished by occurrence index — which
//! is exactly how the crash-point matrix test enumerates them.

use crate::error::StoreError;
use std::io::Write;

/// The injector handle the store threads through its internals. Default
/// (and the only state without the `fault-injection` feature) is inert.
#[derive(Debug, Clone, Default)]
pub(crate) struct Faults {
    #[cfg(feature = "fault-injection")]
    injector: Option<napmon_faultline::FaultInjector>,
}

impl Faults {
    /// Wraps a live injector (feature-gated constructors only).
    #[cfg(feature = "fault-injection")]
    pub(crate) fn new(injector: napmon_faultline::FaultInjector) -> Self {
        Self {
            injector: Some(injector),
        }
    }

    /// Consults the plan at a non-write site.
    #[inline]
    pub(crate) fn check(&self, _site: &str) -> Result<(), StoreError> {
        #[cfg(feature = "fault-injection")]
        if let Some(injector) = &self.injector {
            injector
                .check(_site)
                .map_err(|fault| StoreError::Io(fault.into()))?;
        }
        Ok(())
    }

    /// Writes `bytes` to `out` under the plan: all of them normally, or —
    /// when a short-write rule fires — only the scheduled prefix, followed
    /// by the injected error. The caller must treat that error like any
    /// I/O failure; the injector is already poisoned (crashed).
    #[inline]
    pub(crate) fn write_all(
        &self,
        _site: &str,
        out: &mut impl Write,
        bytes: &[u8],
    ) -> Result<(), StoreError> {
        #[cfg(feature = "fault-injection")]
        if let Some(injector) = &self.injector {
            return match injector
                .write_fault(_site, bytes.len())
                .map_err(|fault| StoreError::Io(fault.into()))?
            {
                None => {
                    out.write_all(bytes)?;
                    Ok(())
                }
                Some(keep) => {
                    // Land the torn prefix for real, so a reopen sees
                    // exactly what a mid-write crash would have left.
                    out.write_all(&bytes[..keep])?;
                    out.flush()?;
                    Err(StoreError::Io(injector.torn(_site).into()))
                }
            };
        }
        out.write_all(bytes)?;
        Ok(())
    }

    /// Whether a crash fault has fired: buffered user-space state must be
    /// discarded, not flushed, to model the process dying.
    #[inline]
    pub(crate) fn crashed(&self) -> bool {
        #[cfg(feature = "fault-injection")]
        if let Some(injector) = &self.injector {
            return injector.crashed();
        }
        false
    }
}
