//! Sealed segment files: immutable, sorted, checksummed word blocks.
//!
//! A segment is written once (by seal or compaction) and never modified.
//! Layout, all integers little-endian:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"NAPSEG01"
//! 8       4     word_bits (u32)
//! 12      4     bloom probe count k (u32)
//! 16      8     word_count (u64)
//! 24      8     bloom bit count m (u64)
//! 32      8·⌈m/64⌉           bloom bit words
//! …       8·word_count·limbs packed words, sorted ascending (limb-lex)
//! end−8   8     FNV-1a checksum of every preceding byte
//! ```
//!
//! Words are stored sorted so exact membership is one binary search; the
//! inline Bloom filter short-circuits the common negative case without
//! touching the word block at all.

use crate::bloom::BloomFilter;
use crate::checksum::{fnv1a, fnv1a_limbs};
use crate::error::StoreError;
use crate::faults::Faults;
use napmon_bdd::{BitSliceSet, BitWord, SUPERBLOCK_PATTERNS};
use std::path::Path;

pub(crate) const SEGMENT_MAGIC: &[u8; 8] = b"NAPSEG01";

/// Words per prefix partition of the Hamming index: two bit-slice
/// superblocks, so a partition that survives mask pruning maps exactly
/// onto a superblock range of the sliced kernel.
pub(crate) const PARTITION_WORDS: usize = 2 * SUPERBLOCK_PATTERNS;

/// One sealed segment, fully resident: metadata, Bloom filter, and the
/// sorted packed word block.
#[derive(Debug, Clone)]
pub struct Segment {
    /// File name within the store directory.
    pub(crate) file: String,
    /// Number of words.
    pub(crate) count: usize,
    /// `u64` limbs per word.
    pub(crate) limbs: usize,
    /// The membership pre-filter.
    pub(crate) bloom: BloomFilter,
    /// `count · limbs` packed limbs, sorted ascending by word.
    pub(crate) words: Vec<u64>,
    /// Whole-file checksum, as recorded in the manifest.
    pub(crate) checksum: u64,
    /// Block-transposed mirror of `words` for the batch Hamming kernel.
    pub(crate) slices: BitSliceSet,
    /// Per-partition AND of every word's limbs: partition `p` owns
    /// `and_masks[p·limbs..(p+1)·limbs]`. Because `words` is sorted
    /// limb-lexicographically, consecutive words share leading-limb
    /// prefixes, which keeps these masks tight exactly where pruning pays.
    pub(crate) and_masks: Vec<u64>,
    /// Per-partition OR of every word's limbs, same layout.
    pub(crate) or_masks: Vec<u64>,
    /// FNV-1a over the partition masks, recorded in the manifest so a
    /// rebuilt index can be pinned against drift.
    pub(crate) masks_checksum: u64,
}

/// Builds the Hamming index over a sorted word block: the bit-sliced
/// mirror plus the per-partition AND/OR masks and their checksum.
fn build_index(
    word_bits: usize,
    limbs: usize,
    count: usize,
    words: &[u64],
) -> (BitSliceSet, Vec<u64>, Vec<u64>, u64) {
    let lw = limbs.max(1);
    debug_assert!(
        words.len().is_multiple_of(lw),
        "segment word block is not word-aligned"
    );
    let mut slices = BitSliceSet::with_bits(word_bits.max(1));
    let partitions = count.div_ceil(PARTITION_WORDS);
    let mut and_masks = vec![!0u64; partitions * lw];
    let mut or_masks = vec![0u64; partitions * lw];
    for i in 0..count {
        let word = &words[i * lw..(i + 1) * lw];
        slices.insert_limbs(word);
        let base = (i / PARTITION_WORDS) * lw;
        for (l, &limb) in word.iter().enumerate() {
            and_masks[base + l] &= limb;
            or_masks[base + l] |= limb;
        }
    }
    let mut checksum_input = Vec::with_capacity(and_masks.len() + or_masks.len());
    checksum_input.extend_from_slice(&and_masks);
    checksum_input.extend_from_slice(&or_masks);
    let masks_checksum = fnv1a_limbs(&checksum_input);
    (slices, and_masks, or_masks, masks_checksum)
}

impl Segment {
    /// Number of words in the segment.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the segment holds no words.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The word at `index` as a limb slice.
    #[inline]
    pub(crate) fn word(&self, index: usize) -> &[u64] {
        &self.words[index * self.limbs..(index + 1) * self.limbs]
    }

    /// Exact membership: Bloom pre-filter, then binary search over the
    /// sorted word block.
    #[inline]
    pub(crate) fn contains(&self, limbs: &[u64]) -> bool {
        if !self.bloom.might_contain(limbs) {
            #[cfg(feature = "obs")]
            crate::obs::metrics().bloom_misses.inc();
            return false;
        }
        #[cfg(feature = "obs")]
        crate::obs::metrics().bloom_hits.inc();
        let (mut lo, mut hi) = (0usize, self.count);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match self.word(mid).cmp(limbs) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return true,
            }
        }
        #[cfg(feature = "obs")]
        crate::obs::metrics().bloom_false_positives.inc();
        false
    }

    /// Hamming-ball membership over the sealed block, pruned by the
    /// partition index: a partition whose AND/OR masks already force more
    /// than `tau` mismatches cannot contain a hit and is skipped without
    /// touching its words; survivors run the bit-sliced kernel over
    /// exactly their two superblocks.
    ///
    /// The mask bound is sound: for any stored word `w` in the partition,
    /// a query bit set where no word has it set (`q & !or`), or clear
    /// where every word has it set (`!q & and`), differs from `w` at that
    /// position, so the popcount of those two sets lower-bounds
    /// `hamming(q, w)`.
    pub(crate) fn contains_within(&self, query: &BitWord, tau: usize) -> bool {
        if self.count == 0 {
            return false;
        }
        let q = query.limbs();
        let lw = self.limbs.max(1);
        let partitions = self.count.div_ceil(PARTITION_WORDS);
        let sb_per_partition = PARTITION_WORDS / SUPERBLOCK_PATTERNS;
        let sb_total = self.slices.superblocks();
        for p in 0..partitions {
            let and = &self.and_masks[p * lw..(p + 1) * lw];
            let or = &self.or_masks[p * lw..(p + 1) * lw];
            let mut lower_bound = 0usize;
            for l in 0..lw {
                let forced = (q[l] & !or[l]) | (!q[l] & and[l]);
                lower_bound += forced.count_ones() as usize;
                if lower_bound > tau {
                    break;
                }
            }
            if lower_bound > tau {
                continue;
            }
            let sb_start = p * sb_per_partition;
            let sb_end = ((p + 1) * sb_per_partition).min(sb_total);
            if self
                .slices
                .contains_within_range(query, tau, sb_start, sb_end)
            {
                return true;
            }
        }
        false
    }

    /// Writes a segment atomically (`.tmp` + fsync + rename) and returns
    /// its in-memory form. `sorted_words` must be `count · limbs` limbs in
    /// ascending word order with no duplicates.
    pub(crate) fn write(
        dir: &Path,
        file: &str,
        word_bits: usize,
        limbs: usize,
        sorted_words: &[u64],
        bloom_bits_per_word: usize,
        faults: &Faults,
    ) -> Result<Self, StoreError> {
        debug_assert_eq!(sorted_words.len() % limbs.max(1), 0);
        let count = sorted_words.len().checked_div(limbs).unwrap_or(0);
        let mut bloom = BloomFilter::with_capacity(count, bloom_bits_per_word);
        for i in 0..count {
            bloom.insert(&sorted_words[i * limbs..(i + 1) * limbs]);
        }

        let mut bytes = Vec::with_capacity(32 + 8 * (bloom.words().len() + sorted_words.len()) + 8);
        bytes.extend_from_slice(SEGMENT_MAGIC);
        bytes.extend_from_slice(&(word_bits as u32).to_le_bytes());
        bytes.extend_from_slice(&bloom.k().to_le_bytes());
        bytes.extend_from_slice(&(count as u64).to_le_bytes());
        bytes.extend_from_slice(&bloom.m().to_le_bytes());
        for &w in bloom.words() {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        for &w in sorted_words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        let checksum = fnv1a(&bytes);
        bytes.extend_from_slice(&checksum.to_le_bytes());

        let path = dir.join(file);
        let tmp = dir.join(format!("{file}.tmp"));
        {
            let mut f = std::fs::File::create(&tmp)?;
            faults.write_all("segment.write", &mut f, &bytes)?;
            faults.check("segment.sync")?;
            f.sync_all()?;
        }
        faults.check("segment.rename")?;
        std::fs::rename(&tmp, &path)?;

        let (slices, and_masks, or_masks, masks_checksum) =
            build_index(word_bits, limbs, count, sorted_words);
        Ok(Self {
            file: file.to_string(),
            count,
            limbs,
            bloom,
            words: sorted_words.to_vec(),
            checksum,
            slices,
            and_masks,
            or_masks,
            masks_checksum,
        })
    }

    /// Loads and fully verifies a sealed segment. `expect_masks` is the
    /// manifest's recorded partition-index checksum; `None` (a pre-index
    /// manifest) accepts the freshly rebuilt index as-is.
    pub(crate) fn load(
        dir: &Path,
        file: &str,
        expect_bits: usize,
        limbs: usize,
        expect_checksum: u64,
        expect_masks: Option<u64>,
    ) -> Result<Self, StoreError> {
        let path = dir.join(file);
        let corrupt = |detail: String| StoreError::Corrupt {
            file: path.clone(),
            detail,
        };
        let bytes = std::fs::read(&path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                StoreError::Missing(path.clone())
            } else {
                StoreError::Io(e)
            }
        })?;
        if bytes.len() < 40 {
            return Err(corrupt(format!("file too short ({} bytes)", bytes.len())));
        }
        if &bytes[0..8] != SEGMENT_MAGIC {
            return Err(corrupt("bad magic".into()));
        }
        let body = &bytes[..bytes.len() - 8];
        let recorded = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8 bytes"));
        if fnv1a(body) != recorded {
            return Err(corrupt(
                "checksum mismatch (torn or bit-rotted write)".into(),
            ));
        }
        if recorded != expect_checksum {
            return Err(corrupt(format!(
                "checksum {recorded:#x} disagrees with manifest {expect_checksum:#x}"
            )));
        }
        let word_bits = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) as usize;
        if word_bits != expect_bits {
            return Err(StoreError::Mismatch(format!(
                "segment {file} stores {word_bits}-bit words, store is {expect_bits}-bit"
            )));
        }
        let k = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
        let count = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes")) as usize;
        let m = u64::from_le_bytes(bytes[24..32].try_into().expect("8 bytes"));
        let bloom_words = (m as usize).div_ceil(64);
        let expected_len = 32 + 8 * (bloom_words + count * limbs) + 8;
        if bytes.len() != expected_len {
            return Err(corrupt(format!(
                "length {} does not match header ({} expected)",
                bytes.len(),
                expected_len
            )));
        }
        let read_limbs = |range: std::ops::Range<usize>| -> Vec<u64> {
            bytes[range]
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
                .collect()
        };
        let bloom = BloomFilter::from_parts(read_limbs(32..32 + 8 * bloom_words), m, k);
        let words = read_limbs(32 + 8 * bloom_words..bytes.len() - 8);
        let (slices, and_masks, or_masks, masks_checksum) =
            build_index(word_bits, limbs, count, &words);
        if let Some(expected) = expect_masks {
            if masks_checksum != expected {
                return Err(corrupt(format!(
                    "partition index checksum {masks_checksum:#x} disagrees with \
                     manifest {expected:#x}"
                )));
            }
        }
        Ok(Self {
            file: file.to_string(),
            count,
            limbs,
            bloom,
            words,
            checksum: recorded,
            slices,
            and_masks,
            or_masks,
            masks_checksum,
        })
    }
}

/// Sorts and deduplicates a flat limb buffer of `limbs`-wide words in
/// place-ish, returning the canonical segment word block.
pub(crate) fn sort_dedup_words(words: &[u64], limbs: usize) -> Vec<u64> {
    if limbs == 0 || words.is_empty() {
        return Vec::new();
    }
    let mut index: Vec<usize> = (0..words.len() / limbs).collect();
    index.sort_unstable_by(|&a, &b| {
        words[a * limbs..(a + 1) * limbs].cmp(&words[b * limbs..(b + 1) * limbs])
    });
    let mut out: Vec<u64> = Vec::with_capacity(words.len());
    for &i in &index {
        let w = &words[i * limbs..(i + 1) * limbs];
        if out.len() >= limbs && &out[out.len() - limbs..] == w {
            continue;
        }
        out.extend_from_slice(w);
    }
    out
}

/// The canonical file name of segment `id`.
pub(crate) fn segment_file_name(id: u64) -> String {
    format!("segment-{id:08}.seg")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("napmon_segment_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_load_round_trip() {
        let dir = tmp_dir("roundtrip");
        let words = sort_dedup_words(&[3, 1, 2, 1], 1);
        assert_eq!(words, vec![1, 2, 3]);
        let seg = Segment::write(
            &dir,
            "segment-00000000.seg",
            40,
            1,
            &words,
            10,
            &Faults::default(),
        )
        .unwrap();
        let loaded = Segment::load(
            &dir,
            "segment-00000000.seg",
            40,
            1,
            seg.checksum,
            Some(seg.masks_checksum),
        )
        .unwrap();
        assert_eq!(loaded.len(), 3);
        assert!(loaded.contains(&[2]));
        assert!(!loaded.contains(&[4]));
        // The rebuilt partition index matches the one computed at write.
        assert_eq!(loaded.masks_checksum, seg.masks_checksum);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_masks_checksum_is_corrupt() {
        let dir = tmp_dir("maskdrift");
        let seg = Segment::write(&dir, "s.seg", 64, 1, &[5, 9], 10, &Faults::default()).unwrap();
        let err = Segment::load(
            &dir,
            "s.seg",
            64,
            1,
            seg.checksum,
            Some(seg.masks_checksum ^ 1),
        )
        .unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn partition_pruned_hamming_matches_linear_scan() {
        let dir = tmp_dir("hamming");
        // Enough words to span several partitions, clustered so the
        // AND/OR masks actually prune (sorted order groups the clusters).
        let bits = 100usize;
        let limbs = 2usize;
        let mut flat = Vec::new();
        for cluster in 0u64..5 {
            let hi = cluster << 30;
            for i in 0u64..300 {
                flat.extend_from_slice(&[hi | (i * 3), cluster]);
            }
        }
        let sorted = sort_dedup_words(&flat, limbs);
        let seg = Segment::write(
            &dir,
            "s.seg",
            bits as u32 as usize,
            limbs,
            &sorted,
            10,
            &Faults::default(),
        )
        .unwrap();
        let count = sorted.len() / limbs;
        let probe = |limb0: u64, limb1: u64| {
            BitWord::from_fn(bits, |i| {
                let l = [limb0, limb1][i / 64];
                (l >> (i % 64)) & 1 == 1
            })
        };
        let mut checked = 0;
        for &(a, b) in &[
            (0u64, 0u64),
            (3, 0),
            (7, 0),
            ((3 << 30) | 9, 3),
            ((3 << 30) | 8, 3),
            ((9 << 30) | 1, 9),
            (u64::MAX >> 10, 2),
        ] {
            let q = probe(a, b);
            let ql = q.limbs();
            for tau in 0..4usize {
                let naive = (0..count).any(|i| {
                    let w = &sorted[i * limbs..(i + 1) * limbs];
                    let d: u32 = w.iter().zip(ql).map(|(x, y)| (x ^ y).count_ones()).sum();
                    d as usize <= tau
                });
                assert_eq!(
                    seg.contains_within(&q, tau),
                    naive,
                    "probe {a:#x}/{b:#x} tau {tau}"
                );
                checked += 1;
            }
        }
        assert!(checked > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_byte_is_detected() {
        let dir = tmp_dir("corrupt");
        let seg = Segment::write(&dir, "s.seg", 64, 1, &[5, 9], 10, &Faults::default()).unwrap();
        let path = dir.join("s.seg");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let err = Segment::load(&dir, "s.seg", 64, 1, seg.checksum, None).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_segment_is_detected() {
        let dir = tmp_dir("truncated");
        let seg =
            Segment::write(&dir, "s.seg", 64, 1, &[5, 9, 11], 10, &Faults::default()).unwrap();
        let path = dir.join("s.seg");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();
        let err = Segment::load(&dir, "s.seg", 64, 1, seg.checksum, None).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn multi_limb_words_sort_lexicographically() {
        let flat = [
            1u64, 0, // word A = limbs [1, 0]
            0, 1, // word B = limbs [0, 1]
            1, 0, // duplicate of A
        ];
        let sorted = sort_dedup_words(&flat, 2);
        assert_eq!(sorted, vec![0, 1, 1, 0]);
    }
}
