//! Sealed segment files: immutable, sorted, checksummed word blocks.
//!
//! A segment is written once (by seal or compaction) and never modified.
//! Layout, all integers little-endian:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"NAPSEG01"
//! 8       4     word_bits (u32)
//! 12      4     bloom probe count k (u32)
//! 16      8     word_count (u64)
//! 24      8     bloom bit count m (u64)
//! 32      8·⌈m/64⌉           bloom bit words
//! …       8·word_count·limbs packed words, sorted ascending (limb-lex)
//! end−8   8     FNV-1a checksum of every preceding byte
//! ```
//!
//! Words are stored sorted so exact membership is one binary search; the
//! inline Bloom filter short-circuits the common negative case without
//! touching the word block at all.

use crate::bloom::BloomFilter;
use crate::checksum::fnv1a;
use crate::error::StoreError;
use crate::faults::Faults;
use std::path::Path;

pub(crate) const SEGMENT_MAGIC: &[u8; 8] = b"NAPSEG01";

/// One sealed segment, fully resident: metadata, Bloom filter, and the
/// sorted packed word block.
#[derive(Debug, Clone)]
pub struct Segment {
    /// File name within the store directory.
    pub(crate) file: String,
    /// Number of words.
    pub(crate) count: usize,
    /// `u64` limbs per word.
    pub(crate) limbs: usize,
    /// The membership pre-filter.
    pub(crate) bloom: BloomFilter,
    /// `count · limbs` packed limbs, sorted ascending by word.
    pub(crate) words: Vec<u64>,
    /// Whole-file checksum, as recorded in the manifest.
    pub(crate) checksum: u64,
}

impl Segment {
    /// Number of words in the segment.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the segment holds no words.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The word at `index` as a limb slice.
    #[inline]
    pub(crate) fn word(&self, index: usize) -> &[u64] {
        &self.words[index * self.limbs..(index + 1) * self.limbs]
    }

    /// Exact membership: Bloom pre-filter, then binary search over the
    /// sorted word block.
    #[inline]
    pub(crate) fn contains(&self, limbs: &[u64]) -> bool {
        if !self.bloom.might_contain(limbs) {
            return false;
        }
        let (mut lo, mut hi) = (0usize, self.count);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match self.word(mid).cmp(limbs) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// Writes a segment atomically (`.tmp` + fsync + rename) and returns
    /// its in-memory form. `sorted_words` must be `count · limbs` limbs in
    /// ascending word order with no duplicates.
    pub(crate) fn write(
        dir: &Path,
        file: &str,
        word_bits: usize,
        limbs: usize,
        sorted_words: &[u64],
        bloom_bits_per_word: usize,
        faults: &Faults,
    ) -> Result<Self, StoreError> {
        debug_assert_eq!(sorted_words.len() % limbs.max(1), 0);
        let count = sorted_words.len().checked_div(limbs).unwrap_or(0);
        let mut bloom = BloomFilter::with_capacity(count, bloom_bits_per_word);
        for i in 0..count {
            bloom.insert(&sorted_words[i * limbs..(i + 1) * limbs]);
        }

        let mut bytes = Vec::with_capacity(32 + 8 * (bloom.words().len() + sorted_words.len()) + 8);
        bytes.extend_from_slice(SEGMENT_MAGIC);
        bytes.extend_from_slice(&(word_bits as u32).to_le_bytes());
        bytes.extend_from_slice(&bloom.k().to_le_bytes());
        bytes.extend_from_slice(&(count as u64).to_le_bytes());
        bytes.extend_from_slice(&bloom.m().to_le_bytes());
        for &w in bloom.words() {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        for &w in sorted_words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        let checksum = fnv1a(&bytes);
        bytes.extend_from_slice(&checksum.to_le_bytes());

        let path = dir.join(file);
        let tmp = dir.join(format!("{file}.tmp"));
        {
            let mut f = std::fs::File::create(&tmp)?;
            faults.write_all("segment.write", &mut f, &bytes)?;
            faults.check("segment.sync")?;
            f.sync_all()?;
        }
        faults.check("segment.rename")?;
        std::fs::rename(&tmp, &path)?;

        Ok(Self {
            file: file.to_string(),
            count,
            limbs,
            bloom,
            words: sorted_words.to_vec(),
            checksum,
        })
    }

    /// Loads and fully verifies a sealed segment.
    pub(crate) fn load(
        dir: &Path,
        file: &str,
        expect_bits: usize,
        limbs: usize,
        expect_checksum: u64,
    ) -> Result<Self, StoreError> {
        let path = dir.join(file);
        let corrupt = |detail: String| StoreError::Corrupt {
            file: path.clone(),
            detail,
        };
        let bytes = std::fs::read(&path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                StoreError::Missing(path.clone())
            } else {
                StoreError::Io(e)
            }
        })?;
        if bytes.len() < 40 {
            return Err(corrupt(format!("file too short ({} bytes)", bytes.len())));
        }
        if &bytes[0..8] != SEGMENT_MAGIC {
            return Err(corrupt("bad magic".into()));
        }
        let body = &bytes[..bytes.len() - 8];
        let recorded = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8 bytes"));
        if fnv1a(body) != recorded {
            return Err(corrupt(
                "checksum mismatch (torn or bit-rotted write)".into(),
            ));
        }
        if recorded != expect_checksum {
            return Err(corrupt(format!(
                "checksum {recorded:#x} disagrees with manifest {expect_checksum:#x}"
            )));
        }
        let word_bits = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) as usize;
        if word_bits != expect_bits {
            return Err(StoreError::Mismatch(format!(
                "segment {file} stores {word_bits}-bit words, store is {expect_bits}-bit"
            )));
        }
        let k = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
        let count = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes")) as usize;
        let m = u64::from_le_bytes(bytes[24..32].try_into().expect("8 bytes"));
        let bloom_words = (m as usize).div_ceil(64);
        let expected_len = 32 + 8 * (bloom_words + count * limbs) + 8;
        if bytes.len() != expected_len {
            return Err(corrupt(format!(
                "length {} does not match header ({} expected)",
                bytes.len(),
                expected_len
            )));
        }
        let read_limbs = |range: std::ops::Range<usize>| -> Vec<u64> {
            bytes[range]
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
                .collect()
        };
        let bloom = BloomFilter::from_parts(read_limbs(32..32 + 8 * bloom_words), m, k);
        let words = read_limbs(32 + 8 * bloom_words..bytes.len() - 8);
        Ok(Self {
            file: file.to_string(),
            count,
            limbs,
            bloom,
            words,
            checksum: recorded,
        })
    }
}

/// Sorts and deduplicates a flat limb buffer of `limbs`-wide words in
/// place-ish, returning the canonical segment word block.
pub(crate) fn sort_dedup_words(words: &[u64], limbs: usize) -> Vec<u64> {
    if limbs == 0 || words.is_empty() {
        return Vec::new();
    }
    let mut index: Vec<usize> = (0..words.len() / limbs).collect();
    index.sort_unstable_by(|&a, &b| {
        words[a * limbs..(a + 1) * limbs].cmp(&words[b * limbs..(b + 1) * limbs])
    });
    let mut out: Vec<u64> = Vec::with_capacity(words.len());
    for &i in &index {
        let w = &words[i * limbs..(i + 1) * limbs];
        if out.len() >= limbs && &out[out.len() - limbs..] == w {
            continue;
        }
        out.extend_from_slice(w);
    }
    out
}

/// The canonical file name of segment `id`.
pub(crate) fn segment_file_name(id: u64) -> String {
    format!("segment-{id:08}.seg")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("napmon_segment_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_load_round_trip() {
        let dir = tmp_dir("roundtrip");
        let words = sort_dedup_words(&[3, 1, 2, 1], 1);
        assert_eq!(words, vec![1, 2, 3]);
        let seg = Segment::write(
            &dir,
            "segment-00000000.seg",
            40,
            1,
            &words,
            10,
            &Faults::default(),
        )
        .unwrap();
        let loaded = Segment::load(&dir, "segment-00000000.seg", 40, 1, seg.checksum).unwrap();
        assert_eq!(loaded.len(), 3);
        assert!(loaded.contains(&[2]));
        assert!(!loaded.contains(&[4]));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_byte_is_detected() {
        let dir = tmp_dir("corrupt");
        let seg = Segment::write(&dir, "s.seg", 64, 1, &[5, 9], 10, &Faults::default()).unwrap();
        let path = dir.join("s.seg");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let err = Segment::load(&dir, "s.seg", 64, 1, seg.checksum).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_segment_is_detected() {
        let dir = tmp_dir("truncated");
        let seg =
            Segment::write(&dir, "s.seg", 64, 1, &[5, 9, 11], 10, &Faults::default()).unwrap();
        let path = dir.join("s.seg");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();
        let err = Segment::load(&dir, "s.seg", 64, 1, seg.checksum).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn multi_limb_words_sort_lexicographically() {
        let flat = [
            1u64, 0, // word A = limbs [1, 0]
            0, 1, // word B = limbs [0, 1]
            1, 0, // duplicate of A
        ];
        let sorted = sort_dedup_words(&flat, 2);
        assert_eq!(sorted, vec![0, 1, 1, 0]);
    }
}
