//! The active append log (the store's unsealed tail segment).
//!
//! Appends land here first, one fixed-width checksummed record per word,
//! so a crash can tear at most the final record. Layout, little-endian:
//!
//! ```text
//! offset  size      field
//! 0       8         magic b"NAPLOG01"
//! 8       4         word_bits (u32)
//! 12      4         reserved (0)
//! 16      …         records: [limbs · 8 bytes word][8 bytes FNV-1a of the word bytes]
//! ```
//!
//! On open the log is scanned record by record; the first short or
//! checksum-failing record marks the torn tail, which is truncated away —
//! every fully-written word before it survives. Sealing moves the tail's
//! words into a sorted sealed segment and resets the log to its header.

use crate::checksum::fnv1a_limbs;
use crate::error::StoreError;
use crate::faults::Faults;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

pub(crate) const TAIL_MAGIC: &[u8; 8] = b"NAPLOG01";
pub(crate) const TAIL_HEADER_LEN: u64 = 16;

/// The open tail log: a buffered append handle plus the live word buffer
/// recovered from (and mirrored to) disk.
#[derive(Debug)]
pub(crate) struct TailLog {
    path: PathBuf,
    /// `Some` for the log's whole life; taken only in `drop`, where a
    /// simulated crash must discard the buffer instead of flushing it.
    writer: Option<BufWriter<std::fs::File>>,
    limbs: usize,
    faults: Faults,
}

impl TailLog {
    /// Opens (creating or recovering) the tail log at `path`, returning the
    /// log plus every intact word recovered from disk as a flat limb
    /// buffer. Torn trailing records are truncated away.
    pub(crate) fn open(
        path: PathBuf,
        word_bits: usize,
        limbs: usize,
        faults: Faults,
    ) -> Result<(Self, Vec<u64>), StoreError> {
        let record_len = 8 * (limbs + 1);
        let mut recovered: Vec<u64> = Vec::new();
        let valid_len = match std::fs::read(&path) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                let mut header = Vec::with_capacity(TAIL_HEADER_LEN as usize);
                header.extend_from_slice(TAIL_MAGIC);
                header.extend_from_slice(&(word_bits as u32).to_le_bytes());
                header.extend_from_slice(&0u32.to_le_bytes());
                let mut f = std::fs::File::create(&path)?;
                f.write_all(&header)?;
                f.sync_all()?;
                TAIL_HEADER_LEN
            }
            Err(e) => return Err(StoreError::Io(e)),
            Ok(bytes) => {
                if bytes.len() < TAIL_HEADER_LEN as usize || &bytes[0..8] != TAIL_MAGIC {
                    return Err(StoreError::Corrupt {
                        file: path,
                        detail: "bad tail log header".into(),
                    });
                }
                let bits = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) as usize;
                if bits != word_bits {
                    return Err(StoreError::Mismatch(format!(
                        "tail log stores {bits}-bit words, store is {word_bits}-bit"
                    )));
                }
                let mut offset = TAIL_HEADER_LEN as usize;
                while offset + record_len <= bytes.len() {
                    let record = &bytes[offset..offset + record_len];
                    let limb_vals: Vec<u64> = record[..8 * limbs]
                        .chunks_exact(8)
                        .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
                        .collect();
                    let recorded =
                        u64::from_le_bytes(record[8 * limbs..].try_into().expect("8 bytes"));
                    if fnv1a_limbs(&limb_vals) != recorded {
                        // Torn record: everything from here on is dropped.
                        break;
                    }
                    recovered.extend_from_slice(&limb_vals);
                    offset += record_len;
                }
                offset as u64
            }
        };
        // Truncate away any torn tail so future appends extend a clean log.
        let file = std::fs::OpenOptions::new().write(true).open(&path)?;
        file.set_len(valid_len)?;
        file.sync_all()?;
        drop(file);
        let writer = BufWriter::new(std::fs::OpenOptions::new().append(true).open(&path)?);
        Ok((
            Self {
                path,
                writer: Some(writer),
                limbs,
                faults,
            },
            recovered,
        ))
    }

    fn writer(&mut self) -> &mut BufWriter<std::fs::File> {
        self.writer.as_mut().expect("tail writer live until drop")
    }

    /// Buffers one word record (write-batched; call [`TailLog::commit`]
    /// for durability).
    pub(crate) fn append(&mut self, limbs: &[u64]) -> Result<(), StoreError> {
        debug_assert_eq!(limbs.len(), self.limbs);
        let mut record = Vec::with_capacity(8 * (limbs.len() + 1));
        for &limb in limbs {
            record.extend_from_slice(&limb.to_le_bytes());
        }
        record.extend_from_slice(&fnv1a_limbs(limbs).to_le_bytes());
        let faults = self.faults.clone();
        faults.write_all("tail.append.write", self.writer(), &record)
    }

    /// Flushes buffered records to the OS and fsyncs: the durability point.
    pub(crate) fn commit(&mut self) -> Result<(), StoreError> {
        self.faults.check("tail.commit.flush")?;
        self.writer().flush()?;
        self.faults.check("tail.commit.sync")?;
        self.writer().get_ref().sync_data()?;
        Ok(())
    }

    /// Resets the log to its bare header (after sealing its words into a
    /// segment).
    pub(crate) fn reset(&mut self) -> Result<(), StoreError> {
        self.writer().flush()?;
        self.faults.check("tail.reset.truncate")?;
        let file = std::fs::OpenOptions::new().write(true).open(&self.path)?;
        file.set_len(TAIL_HEADER_LEN)?;
        self.faults.check("tail.reset.sync")?;
        file.sync_all()?;
        drop(file);
        self.writer = Some(BufWriter::new(
            std::fs::OpenOptions::new().append(true).open(&self.path)?,
        ));
        Ok(())
    }

    /// Atomically replaces the log's contents with exactly `words`
    /// (`limbs`-wide, flat): the whole new log is written to a temporary
    /// file, fsynced, and renamed over the old one, so a crash at any
    /// point leaves either the complete old log or the complete new one —
    /// never a truncated in-between. Used by crash-recovery
    /// reconciliation, where the surviving words were already committed
    /// and must not re-enter a loss window.
    pub(crate) fn rewrite(&mut self, word_bits: usize, words: &[u64]) -> Result<(), StoreError> {
        self.writer().flush()?;
        let tmp = self.path.with_extension("log.tmp");
        {
            let mut bytes =
                Vec::with_capacity(TAIL_HEADER_LEN as usize + words.len() / self.limbs.max(1) * 8);
            bytes.extend_from_slice(TAIL_MAGIC);
            bytes.extend_from_slice(&(word_bits as u32).to_le_bytes());
            bytes.extend_from_slice(&0u32.to_le_bytes());
            for chunk in words.chunks_exact(self.limbs.max(1)) {
                for &limb in chunk {
                    bytes.extend_from_slice(&limb.to_le_bytes());
                }
                bytes.extend_from_slice(&fnv1a_limbs(chunk).to_le_bytes());
            }
            let mut f = std::fs::File::create(&tmp)?;
            self.faults
                .write_all("tail.rewrite.write", &mut f, &bytes)?;
            self.faults.check("tail.rewrite.sync")?;
            f.sync_all()?;
        }
        self.faults.check("tail.rewrite.rename")?;
        std::fs::rename(&tmp, &self.path)?;
        if let Some(dir) = self.path.parent() {
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        self.writer = Some(BufWriter::new(
            std::fs::OpenOptions::new().append(true).open(&self.path)?,
        ));
        Ok(())
    }

    /// Current size of the log file on disk (flushing first so the figure
    /// reflects buffered appends).
    pub(crate) fn disk_bytes(&mut self) -> Result<u64, StoreError> {
        self.writer().flush()?;
        Ok(std::fs::metadata(&self.path)?.len())
    }
}

impl Drop for TailLog {
    /// Best-effort flush: durability is only guaranteed after an explicit
    /// commit, but there is no reason to discard buffered records on drop —
    /// *unless* a simulated crash has fired, in which case the buffer is
    /// exactly the user-space state a real crash would lose, and flushing
    /// it would grant the test store durability the real one never had.
    fn drop(&mut self) {
        let Some(writer) = self.writer.take() else {
            return;
        };
        if self.faults.crashed() {
            // Unwrap the File out of the BufWriter so its Drop cannot
            // flush the buffered bytes.
            let _ = writer.into_parts();
        } else {
            drop(writer); // BufWriter's Drop flushes, best-effort.
        }
    }
}

/// The tail log's file name within a store directory.
pub(crate) fn tail_path(dir: &Path) -> PathBuf {
    dir.join("tail.log")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("napmon_tail_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_commit_reopen_recovers_all_words() {
        let dir = tmp("recover");
        let path = tail_path(&dir);
        let (mut log, recovered) = TailLog::open(path.clone(), 70, 2, Faults::default()).unwrap();
        assert!(recovered.is_empty());
        log.append(&[1, 2]).unwrap();
        log.append(&[3, 4]).unwrap();
        log.commit().unwrap();
        drop(log);
        let (_, recovered) = TailLog::open(path, 70, 2, Faults::default()).unwrap();
        assert_eq!(recovered, vec![1, 2, 3, 4]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_record_is_dropped_and_truncated() {
        let dir = tmp("torn");
        let path = tail_path(&dir);
        let (mut log, _) = TailLog::open(path.clone(), 70, 2, Faults::default()).unwrap();
        log.append(&[1, 2]).unwrap();
        log.append(&[3, 4]).unwrap();
        log.commit().unwrap();
        drop(log);
        // Tear the last record mid-way.
        let len = std::fs::metadata(&path).unwrap().len();
        let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(len - 5).unwrap();
        drop(file);
        let (_, recovered) = TailLog::open(path.clone(), 70, 2, Faults::default()).unwrap();
        assert_eq!(recovered, vec![1, 2], "only the intact record survives");
        // The file was truncated to the last valid record.
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            TAIL_HEADER_LEN + 8 * 3
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn word_width_mismatch_is_typed() {
        let dir = tmp("mismatch");
        let path = tail_path(&dir);
        let (log, _) = TailLog::open(path.clone(), 70, 2, Faults::default()).unwrap();
        drop(log);
        let err = TailLog::open(path, 71, 2, Faults::default()).unwrap_err();
        assert!(matches!(err, StoreError::Mismatch(_)), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reset_empties_the_log() {
        let dir = tmp("reset");
        let path = tail_path(&dir);
        let (mut log, _) = TailLog::open(path.clone(), 64, 1, Faults::default()).unwrap();
        log.append(&[9]).unwrap();
        log.reset().unwrap();
        log.append(&[7]).unwrap();
        log.commit().unwrap();
        drop(log);
        let (_, recovered) = TailLog::open(path, 64, 1, Faults::default()).unwrap();
        assert_eq!(recovered, vec![7]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
