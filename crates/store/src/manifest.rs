//! The store manifest: the atomic commit point.
//!
//! `MANIFEST.json` names every sealed segment (file, word count, checksum)
//! plus the store's fixed parameters. It is replaced atomically — written
//! to a temporary file, fsynced, renamed over the old manifest, directory
//! fsynced — so a crash during seal or compaction leaves either the old
//! or the new manifest, never a mix. Files not named by the manifest are
//! simply ignored on open, which is what makes segment writes + manifest
//! swap a crash-safe two-phase commit.

use crate::error::StoreError;
use crate::faults::Faults;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// The manifest schema version this crate reads and writes.
pub const MANIFEST_VERSION: u32 = 1;

/// Catalog entry for one sealed segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentMeta {
    /// File name within the store directory.
    pub file: String,
    /// Number of words the segment holds.
    pub words: u64,
    /// Whole-file FNV-1a checksum; must match the file on load.
    pub checksum: u64,
    /// FNV-1a checksum of the segment's partition index (the per-partition
    /// AND/OR masks derived from the sorted word block; see
    /// `crate::segment`). `None` in manifests written before the index
    /// existed — the index is rebuilt from the word block either way, this
    /// only pins the rebuild against drift.
    pub masks_checksum: Option<u64>,
}

// Hand-written serde: `masks_checksum` must be *optional* on read so
// pre-index manifests keep loading, and the in-tree serde derive treats
// every field as required.
impl Serialize for SegmentMeta {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut m = serde::Map::new();
        let field =
            |v: Result<serde::Value, serde::ValueError>| v.map_err(serde::ser::Error::custom);
        m.insert("file".to_string(), field(serde::to_value(&self.file))?);
        m.insert("words".to_string(), field(serde::to_value(&self.words))?);
        m.insert(
            "checksum".to_string(),
            field(serde::to_value(&self.checksum))?,
        );
        if let Some(masks) = self.masks_checksum {
            m.insert(
                "masks_checksum".to_string(),
                field(serde::to_value(&masks))?,
            );
        }
        serializer.serialize_value(serde::Value::Object(m))
    }
}

impl<'de> Deserialize<'de> for SegmentMeta {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let mut map = match deserializer.deserialize_value()? {
            serde::Value::Object(map) => map,
            _ => {
                return Err(serde::de::Error::custom(
                    "SegmentMeta: expected object".to_string(),
                ))
            }
        };
        fn required<T: for<'a> serde::Deserialize<'a>>(
            map: &mut serde::Map,
            name: &str,
        ) -> Result<T, String> {
            map.remove(name)
                .ok_or_else(|| format!("SegmentMeta: missing field `{name}`"))
                .and_then(|v| serde::from_value(v).map_err(|e| format!("SegmentMeta.{name}: {e}")))
        }
        let file: String = required(&mut map, "file").map_err(serde::de::Error::custom)?;
        let words: u64 = required(&mut map, "words").map_err(serde::de::Error::custom)?;
        let checksum: u64 = required(&mut map, "checksum").map_err(serde::de::Error::custom)?;
        let masks_checksum = match map.remove("masks_checksum") {
            None | Some(serde::Value::Null) => None,
            Some(v) => Some(serde::from_value(v).map_err(serde::de::Error::custom)?),
        };
        Ok(Self {
            file,
            words,
            checksum,
            masks_checksum,
        })
    }
}

/// The on-disk catalog of a pattern store.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Manifest {
    /// Manifest schema version ([`MANIFEST_VERSION`]).
    pub format_version: u32,
    /// Width of every stored word, in bits.
    pub word_bits: usize,
    /// Words the tail may accumulate before it is auto-sealed.
    pub segment_capacity: usize,
    /// Bloom filter budget per word in sealed segments.
    pub bloom_bits_per_word: usize,
    /// Next unused segment id (segment file names never repeat, so a
    /// crashed seal's orphan file can never be mistaken for a live one).
    pub next_segment_id: u64,
    /// Sealed segments, oldest first.
    pub segments: Vec<SegmentMeta>,
}

/// `MANIFEST.json` within a store directory.
pub(crate) fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("MANIFEST.json")
}

impl Manifest {
    /// Reads and validates the manifest of the store at `dir`.
    pub(crate) fn load(dir: &Path) -> Result<Self, StoreError> {
        let path = manifest_path(dir);
        let text = std::fs::read_to_string(&path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                StoreError::Missing(dir.to_path_buf())
            } else {
                StoreError::Io(e)
            }
        })?;
        let manifest: Manifest = serde_json::from_str(&text).map_err(|e| StoreError::Corrupt {
            file: path.clone(),
            detail: format!("manifest does not parse: {e}"),
        })?;
        if manifest.format_version != MANIFEST_VERSION {
            return Err(StoreError::Mismatch(format!(
                "manifest format version {} (this build reads {MANIFEST_VERSION})",
                manifest.format_version
            )));
        }
        if manifest.word_bits == 0 {
            return Err(StoreError::Corrupt {
                file: path,
                detail: "word_bits is zero".into(),
            });
        }
        Ok(manifest)
    }

    /// Writes the manifest atomically: tmp file + fsync + rename + dir
    /// fsync.
    pub(crate) fn store(&self, dir: &Path, faults: &Faults) -> Result<(), StoreError> {
        let path = manifest_path(dir);
        let tmp = dir.join("MANIFEST.json.tmp");
        let text = serde_json::to_string_pretty(self).map_err(|e| StoreError::Corrupt {
            file: tmp.clone(),
            detail: format!("manifest does not serialize: {e}"),
        })?;
        {
            let mut f = std::fs::File::create(&tmp)?;
            faults.write_all("manifest.write", &mut f, text.as_bytes())?;
            faults.check("manifest.sync")?;
            f.sync_all()?;
        }
        faults.check("manifest.rename")?;
        std::fs::rename(&tmp, &path)?;
        // Make the rename itself durable.
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("napmon_manifest_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample() -> Manifest {
        Manifest {
            format_version: MANIFEST_VERSION,
            word_bits: 48,
            segment_capacity: 1 << 16,
            bloom_bits_per_word: 10,
            next_segment_id: 2,
            segments: vec![SegmentMeta {
                file: "segment-00000000.seg".into(),
                words: 17,
                checksum: 0xabcd,
                masks_checksum: Some(0x1234),
            }],
        }
    }

    #[test]
    fn store_load_round_trip() {
        let dir = tmp("roundtrip");
        let manifest = sample();
        manifest.store(&dir, &Faults::default()).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), manifest);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_manifest_is_typed() {
        let dir = tmp("missing");
        assert!(matches!(
            Manifest::load(&dir).unwrap_err(),
            StoreError::Missing(_)
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn foreign_version_is_rejected() {
        let dir = tmp("version");
        let mut manifest = sample();
        manifest.format_version = 99;
        manifest.store(&dir, &Faults::default()).unwrap();
        assert!(matches!(
            Manifest::load(&dir).unwrap_err(),
            StoreError::Mismatch(_)
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbage_manifest_is_corrupt() {
        let dir = tmp("garbage");
        std::fs::write(manifest_path(&dir), "{not json").unwrap();
        assert!(matches!(
            Manifest::load(&dir).unwrap_err(),
            StoreError::Corrupt { .. }
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pre_index_manifest_without_masks_checksum_still_loads() {
        let dir = tmp("preindex");
        // A manifest as written before the partition index existed: the
        // segment entry has no `masks_checksum` key at all.
        let text = r#"{
            "format_version": 1,
            "word_bits": 48,
            "segment_capacity": 65536,
            "bloom_bits_per_word": 10,
            "next_segment_id": 1,
            "segments": [
                {"file": "segment-00000000.seg", "words": 17, "checksum": 43981}
            ]
        }"#;
        std::fs::write(manifest_path(&dir), text).unwrap();
        let manifest = Manifest::load(&dir).unwrap();
        assert_eq!(manifest.segments.len(), 1);
        assert_eq!(manifest.segments[0].masks_checksum, None);
        assert_eq!(manifest.segments[0].checksum, 43981);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn orphan_tmp_file_is_ignored() {
        let dir = tmp("orphan");
        sample().store(&dir, &Faults::default()).unwrap();
        std::fs::write(dir.join("MANIFEST.json.tmp"), "torn write").unwrap();
        assert!(Manifest::load(&dir).is_ok());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
