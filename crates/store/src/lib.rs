//! Persistent log-structured storage for activation-pattern word sets.
//!
//! The paper builds its monitors offline and queries them in operation
//! time — but every pattern store in the sibling crates lives in process
//! RAM: a deployment cannot hold million-input pattern sets, survive a
//! restart without a full rebuild, or grow its abstraction from
//! operation-time traffic the way the original activation-pattern
//! monitoring line of work proposes when enlarging monitors with newly
//! observed patterns. This crate is that missing persistence layer: an
//! append-only, log-structured on-disk store of packed
//! [`napmon_bdd::BitWord`]s, built on `std::fs` alone (the build
//! environment vendors no rocksdb/mmap crates — see the workspace
//! vendoring policy in the repository README).
//!
//! # Design
//!
//! A [`PatternStore`] directory holds three kinds of file:
//!
//! | file | role |
//! |---|---|
//! | `MANIFEST.json` | atomic catalog of sealed segments (tmp + rename swap) |
//! | `segment-NNNNNNNN.seg` | immutable sorted word block + Bloom filter + checksum |
//! | `tail.log` | active append log, per-record checksums, torn tail dropped on open |
//!
//! Appends deduplicate, buffer through the tail log
//! ([`PatternStore::commit`] is the durability point), and auto-seal into
//! sorted segments; [`PatternStore::compact`] merges everything into one
//! segment. Exact membership is Bloom-filter → binary search; Hamming-ball
//! membership runs through a prefix-partitioned index over each sealed
//! segment (per-partition AND/OR masks prune by a distance lower bound)
//! into the bit-sliced batch kernel of [`napmon_bdd::BitSliceSet`].
//! Crash safety comes from the two-phase commit: segment files are
//! written and fsynced *before* the manifest swap makes them visible, and
//! files the manifest does not name are ignored.
//!
//! # Monitors on top
//!
//! [`PatternStore`] implements [`napmon_core::PatternSource`], so pattern
//! monitors can delegate their word set to a store handle
//! (`PatternMonitor::with_source`, spec-level
//! `MonitorSpec::build_with_sources`), serving engines can absorb
//! operation-time patterns into it without a rebuild, and a fresh process
//! can warm-start from the segments on disk
//! (`MonitorSpec::mount_with_sources`, `MonitorEngine::from_store`).
//! [`StoreProvider`] maps composed monitors onto a `member-NNNN/`
//! directory layout under one root.
//!
//! # Observability
//!
//! With the `obs` feature on, the store publishes `store.*` metrics into
//! the process-wide [`napmon_obs::global`] registry — append/seal/compact
//! latency histograms, fresh/duplicate counters, and Bloom-filter
//! hit/miss/false-positive counters — and emits seal/compact trace spans
//! when tracing is enabled (see the `obs` module). Without the feature no
//! probe code is compiled at all, so the hot membership path carries zero
//! instrumentation cost.
//!
//! ```
//! use napmon_bdd::BitWord;
//! use napmon_store::{PatternStore, StoreConfig};
//!
//! # fn main() -> Result<(), napmon_store::StoreError> {
//! let dir = std::env::temp_dir().join(format!("napmon_store_doc_{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//! let mut store = PatternStore::create(&dir, StoreConfig::new(3))?;
//! store.append(&BitWord::from_bools(&[true, false, true]))?;
//! store.commit()?; // durable from here on
//! drop(store);
//!
//! // A fresh process reopens the same set from disk.
//! let store = PatternStore::open(&dir)?;
//! assert!(store.contains(&BitWord::from_bools(&[true, false, true])));
//! assert!(store.contains_within(&BitWord::from_bools(&[true, true, true]), 1)?);
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok(())
//! # }
//! ```

pub mod bloom;
mod checksum;
pub mod error;
mod faults;
pub mod manifest;
#[cfg(feature = "obs")]
mod obs;
pub mod segment;
mod store;
mod tail;

pub use bloom::BloomFilter;
pub use error::StoreError;
pub use manifest::{Manifest, SegmentMeta, MANIFEST_VERSION};
pub use store::{open_member_source, PatternStore, StoreConfig, StoreProvider, StoreStats};
