//! Error surface of the pattern store.

use std::fmt;
use std::path::PathBuf;

/// Errors raised while opening, appending to, or compacting a
/// [`PatternStore`](crate::PatternStore).
///
/// Marked `#[non_exhaustive]`: future store format versions may add
/// variants without breaking downstream matches.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// Filesystem access failed.
    Io(std::io::Error),
    /// A store file exists but fails its integrity checks (bad magic,
    /// length, or checksum). The torn *tail* of the append log is not an
    /// error — it is dropped on open — but a corrupt sealed segment or
    /// manifest is.
    Corrupt {
        /// The offending file.
        file: PathBuf,
        /// What failed.
        detail: String,
    },
    /// The store exists but disagrees with the caller (word width, format
    /// version).
    Mismatch(String),
    /// No store exists at the given directory.
    Missing(PathBuf),
    /// Another live [`PatternStore`](crate::PatternStore) (this process
    /// or another) holds the store open. Two handles on one directory
    /// would each buffer appends and index words independently —
    /// silent-corruption territory — so opens are exclusive, enforced
    /// with an OS advisory lock that dies with its holder (a crashed
    /// process never wedges the store).
    Locked(PathBuf),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o failed: {e}"),
            StoreError::Corrupt { file, detail } => {
                write!(f, "store file {} is corrupt: {detail}", file.display())
            }
            StoreError::Mismatch(msg) => write!(f, "store mismatch: {msg}"),
            StoreError::Missing(dir) => {
                write!(f, "no pattern store at {}", dir.display())
            }
            StoreError::Locked(dir) => {
                write!(
                    f,
                    "pattern store at {} is already open elsewhere",
                    dir.display()
                )
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Store failures surface to monitor callers as the core error type.
impl From<StoreError> for napmon_core::MonitorError {
    fn from(e: StoreError) -> Self {
        napmon_core::MonitorError::ExternalSource(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StoreError::Corrupt {
            file: PathBuf::from("/tmp/x.seg"),
            detail: "checksum".into(),
        };
        assert!(e.to_string().contains("x.seg"));
        assert!(StoreError::Missing(PathBuf::from("/tmp/d"))
            .to_string()
            .contains("no pattern store"));
        let m: napmon_core::MonitorError = StoreError::Mismatch("w".into()).into();
        assert!(m.to_string().contains("store mismatch"));
    }
}
