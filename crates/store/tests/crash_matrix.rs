//! The crash-point matrix: every named fault site of the store's
//! durability path, crossed with every fault shape, and recovery
//! invariants asserted after each.
//!
//! Protocol (see `napmon_faultline`):
//!
//! 1. A recorder pass runs a fixed workload — appends, commits, an
//!    auto-seal, an explicit [`PatternStore::seal`], a
//!    [`PatternStore::compact`], more appends — and enumerates every
//!    `(site, occurrence)` the workload crosses.
//! 2. For each trace entry × each [`FaultAction`] (failed operation, hard
//!    crash, torn write), the same workload re-runs on a fresh copy of
//!    the base store with exactly that fault armed. The run aborts at the
//!    fault; simulated-crash semantics discard user-space buffers.
//! 3. The store is reopened *without* faults and checked against an
//!    in-memory oracle: every word committed before the fault is present,
//!    every present word was at least attempted, and no word appears
//!    twice (a crashed seal must not double-count).
//!
//! Any failure message carries the `(site, occurrence, action, seed)`
//! tuple, which is everything needed to replay that exact cell. The seed
//! is fixed for CI reproducibility; override with `NAPMON_FAULT_SEED`.

#![cfg(feature = "fault-injection")]

use napmon_bdd::BitWord;
use napmon_faultline::{FaultAction, FaultInjector};
use napmon_store::{PatternStore, StoreConfig};
use std::collections::HashSet;
use std::path::{Path, PathBuf};

const WORD_BITS: usize = 48;
/// Small enough that the workload crosses an auto-seal.
const SEGMENT_CAPACITY: usize = 4;
/// Committed default so CI failures reproduce; override via env.
const DEFAULT_SEED: u64 = 0xC0FF_EE00_0000_0006;

fn seed() -> u64 {
    std::env::var("NAPMON_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

fn word(i: u64) -> BitWord {
    BitWord::from_fn(WORD_BITS, |bit| {
        (i >> (bit % 48)) & 1 == 1 || bit as u64 == i % 17
    })
}

/// Tracks what the workload has done, from outside the store: `attempted`
/// grows at every append *call* (the word may or may not have reached
/// disk), `committed` snapshots `attempted` only when a durability point
/// — commit, seal, compact — *returns* successfully.
#[derive(Default)]
struct Oracle {
    attempted: HashSet<BitWord>,
    committed: HashSet<BitWord>,
}

impl Oracle {
    fn attempt(&mut self, w: &BitWord) {
        self.attempted.insert(w.clone());
    }

    fn durable_point(&mut self) {
        self.committed = self.attempted.clone();
    }
}

/// The fixed workload. Aborts at the first store error (the injected
/// fault), leaving the oracle describing exactly the pre-fault state.
fn run_workload(
    store: &mut PatternStore,
    oracle: &mut Oracle,
) -> Result<(), napmon_store::StoreError> {
    // Batch 1: enough to cross the auto-seal at capacity 4.
    for i in 0..6 {
        let w = word(i);
        oracle.attempt(&w);
        store.append(&w)?;
    }
    store.commit()?;
    oracle.durable_point();
    // Batch 2 + explicit seal: the two-phase commit under test.
    for i in 6..9 {
        let w = word(i);
        oracle.attempt(&w);
        store.append(&w)?;
    }
    store.seal()?;
    oracle.durable_point();
    // Batch 3 + compaction: merge every segment plus the tail.
    for i in 9..12 {
        let w = word(i);
        oracle.attempt(&w);
        store.append(&w)?;
    }
    store.compact()?;
    oracle.durable_point();
    // Post-compaction appends, committed.
    for i in 12..14 {
        let w = word(i);
        oracle.attempt(&w);
        store.append(&w)?;
    }
    store.commit()?;
    oracle.durable_point();
    // And two appends left uncommitted: allowed to survive or vanish.
    for i in 14..16 {
        let w = word(i);
        oracle.attempt(&w);
        store.append(&w)?;
    }
    Ok(())
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("napmon_crash_matrix_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn copy_store_dir(from: &Path, to: &Path) {
    let _ = std::fs::remove_dir_all(to);
    std::fs::create_dir_all(to).expect("create copy dir");
    for entry in std::fs::read_dir(from).expect("read base dir") {
        let entry = entry.expect("dir entry");
        if entry.file_type().expect("file type").is_file() {
            std::fs::copy(entry.path(), to.join(entry.file_name())).expect("copy store file");
        }
    }
}

/// Reopens `dir` plain and asserts the recovery invariants against the
/// oracle. `context` identifies the matrix cell for the failure message.
fn assert_reopen_invariants(dir: &Path, oracle: &Oracle, context: &str) {
    let store = PatternStore::open(dir)
        .unwrap_or_else(|e| panic!("{context}: post-fault reopen must succeed, got {e}"));
    let words = store.words();
    let present: HashSet<BitWord> = words.iter().cloned().collect();
    assert_eq!(
        present.len(),
        words.len(),
        "{context}: reopened store double-counts a word"
    );
    for w in &oracle.committed {
        assert!(
            present.contains(w),
            "{context}: committed word lost after reopen"
        );
    }
    for w in &present {
        assert!(
            oracle.attempted.contains(w),
            "{context}: phantom word present that was never appended"
        );
    }
    // The store's own membership structures must agree with words().
    for w in &present {
        assert!(store.contains(w), "{context}: words()/contains() disagree");
    }
}

/// Builds the pristine base store every matrix cell starts from.
fn build_base(tag: &str) -> PathBuf {
    let base = fresh_dir(tag);
    let store = PatternStore::create(
        &base,
        StoreConfig::new(WORD_BITS).segment_capacity(SEGMENT_CAPACITY),
    )
    .expect("create base store");
    drop(store);
    base
}

#[test]
fn crash_point_matrix_preserves_recovery_invariants() {
    let seed = seed();
    let base = build_base("base");

    // Pass 1: record the full site trace of a fault-free run.
    let trace = {
        let dir = fresh_dir("recorder");
        copy_store_dir(&base, &dir);
        let recorder = FaultInjector::recorder();
        let mut store =
            PatternStore::open_with_faults(&dir, recorder.clone()).expect("open recorder store");
        let mut oracle = Oracle::default();
        run_workload(&mut store, &mut oracle).expect("recorder workload must not fault");
        drop(store);
        // The fault-free end state is itself a reopen fixture.
        assert_reopen_invariants(&dir, &oracle, "recorder");
        let _ = std::fs::remove_dir_all(&dir);
        recorder.trace()
    };
    assert!(
        trace.len() >= 30,
        "workload must cross the full site set, got {} hits",
        trace.len()
    );
    // Sanity: the trace covers every step family of the durability path.
    for family in [
        "tail.append.write",
        "tail.commit.flush",
        "tail.commit.sync",
        "tail.reset.truncate",
        "tail.reset.sync",
        "segment.write",
        "segment.sync",
        "segment.rename",
        "manifest.write",
        "manifest.sync",
        "manifest.rename",
    ] {
        assert!(
            trace.iter().any(|h| h.site == family),
            "workload never crossed site {family}"
        );
    }

    // Pass 2: the matrix. One run per (site, occurrence) × action.
    let dir = fresh_dir("cell");
    let mut cells = 0usize;
    for hit in &trace {
        for action in [
            FaultAction::Fail,
            FaultAction::Crash,
            FaultAction::ShortWrite,
        ] {
            let context = format!(
                "site={}#{} action={action} seed={seed:#x}",
                hit.site, hit.occurrence
            );
            copy_store_dir(&base, &dir);
            let injector = FaultInjector::rule(&hit.site, hit.occurrence, action, seed);
            let mut store = PatternStore::open_with_faults(&dir, injector.clone())
                .unwrap_or_else(|e| panic!("{context}: pre-fault open failed: {e}"));
            let mut oracle = Oracle::default();
            let outcome = run_workload(&mut store, &mut oracle);
            assert!(
                outcome.is_err(),
                "{context}: armed fault never surfaced from the workload"
            );
            assert!(
                injector.fired().is_some(),
                "{context}: workload errored but the fault never fired"
            );
            drop(store); // crash semantics: buffered state is discarded
            assert_reopen_invariants(&dir, &oracle, &context);
            cells += 1;
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&base);
    assert!(cells >= 90, "matrix unexpectedly small: {cells} cells");
}

/// A fault on one cell must leave the *handle* in a state where dropping
/// and reopening works even when the fault was transient (`Fail`), i.e.
/// a failed fsync does not poison an otherwise healthy store.
#[test]
fn transient_fail_then_reopen_retains_committed_words() {
    let seed = seed();
    let base = build_base("transient");
    let injector = FaultInjector::rule("tail.commit.sync", 0, FaultAction::Fail, seed);
    let mut store =
        PatternStore::open_with_faults(&base, injector).expect("open with transient fault");
    let w = word(1);
    store.append(&w).expect("append");
    let err = store
        .commit()
        .expect_err("first commit hits the failed fsync");
    assert!(err.to_string().contains("tail.commit.sync"), "{err}");
    // The handle survives a transient failure: retrying succeeds.
    store
        .commit()
        .expect("second commit retries past the fault");
    drop(store);
    let reopened = PatternStore::open(&base).expect("reopen");
    assert!(reopened.contains(&w), "retried commit must be durable");
    drop(reopened);
    let _ = std::fs::remove_dir_all(&base);
}
