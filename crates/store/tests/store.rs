//! Integration tests of the log-structured store: durability, crash
//! recovery, compaction, and differential equivalence against the
//! in-memory reference source.

use napmon_bdd::BitWord;
use napmon_core::{MemoryPatternSource, PatternSource};
use napmon_store::{PatternStore, StoreConfig, StoreError};
use napmon_tensor::Prng;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("napmon_store_it_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn random_words(seed: u64, n: usize, bits: usize) -> Vec<BitWord> {
    let mut rng = Prng::seed(seed);
    (0..n)
        .map(|_| {
            let v = rng.uniform_vec(bits, -1.0, 1.0);
            BitWord::from_fn(bits, |i| v[i] > 0.0)
        })
        .collect()
}

#[test]
fn append_commit_reopen_round_trip() {
    let dir = tmp("roundtrip");
    let words = random_words(7, 300, 90);
    let mut store = PatternStore::create(&dir, StoreConfig::new(90)).unwrap();
    let fresh = store.append_batch(&words).unwrap();
    assert!(fresh > 0 && fresh <= 300);
    assert_eq!(store.len(), fresh);
    drop(store);

    let store = PatternStore::open(&dir).unwrap();
    assert_eq!(store.len(), fresh);
    for w in &words {
        assert!(store.contains(w), "lost {w:?} across reopen");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn matches_memory_source_exactly_and_within_hamming() {
    let dir = tmp("differential");
    let bits = 70; // crosses the u64 limb boundary
    let mut store =
        PatternStore::create(&dir, StoreConfig::new(bits).segment_capacity(64)).unwrap();
    let mut memory = MemoryPatternSource::new(bits);
    for w in random_words(11, 500, bits) {
        let a = store.append(&w).unwrap();
        let b = memory.insert(&w).unwrap();
        assert_eq!(a, b, "dedup disagreement on {w:?}");
    }
    store.commit().unwrap();
    assert_eq!(store.len(), memory.word_count());

    // Sealing happened along the way (capacity 64), so probes hit sealed
    // segments, the tail, and misses.
    assert!(store.segment_count() >= 2);
    for probe in random_words(13, 400, bits) {
        assert_eq!(store.contains(&probe), memory.contains(&probe));
        for tau in [0usize, 1, 3, 8] {
            assert_eq!(
                store.contains_within(&probe, tau).unwrap(),
                memory.contains_within(&probe, tau),
                "tau={tau} probe={probe:?}"
            );
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_tail_record_is_dropped_on_open() {
    let dir = tmp("torn_tail");
    let words = random_words(3, 20, 40);
    let mut store = PatternStore::create(&dir, StoreConfig::new(40)).unwrap();
    let fresh = store.append_batch(&words).unwrap();
    drop(store);

    // Simulate a crash mid-append: cut into the final tail record.
    let tail = dir.join("tail.log");
    let len = std::fs::metadata(&tail).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(&tail).unwrap();
    f.set_len(len - 3).unwrap();
    drop(f);

    let store = PatternStore::open(&dir).unwrap();
    assert_eq!(store.len(), fresh - 1, "exactly the torn word is dropped");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_sealed_segment_is_a_typed_error() {
    let dir = tmp("corrupt_segment");
    let mut store = PatternStore::create(&dir, StoreConfig::new(32)).unwrap();
    store.append_batch(&random_words(5, 50, 32)).unwrap();
    store.seal().unwrap();
    drop(store);

    let seg = dir.join("segment-00000000.seg");
    let mut bytes = std::fs::read(&seg).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&seg, &bytes).unwrap();

    let err = PatternStore::open(&dir).unwrap_err();
    assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn seal_and_compact_preserve_membership_and_shrink_files() {
    let dir = tmp("compact");
    let words = random_words(17, 400, 50);
    let mut store = PatternStore::create(&dir, StoreConfig::new(50).segment_capacity(32)).unwrap();
    store.append_batch(&words).unwrap();
    store.seal().unwrap();
    let segments_before = store.segment_count();
    assert!(
        segments_before > 1,
        "capacity 32 must produce many segments"
    );
    let len_before = store.len();

    store.compact().unwrap();
    assert_eq!(store.segment_count(), 1);
    assert_eq!(store.len(), len_before);
    for w in &words {
        assert!(store.contains(w));
    }
    // Dead segment files are gone from disk.
    let seg_files = std::fs::read_dir(&dir)
        .unwrap()
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .file_name()
                .to_string_lossy()
                .ends_with(".seg")
        })
        .count();
    assert_eq!(seg_files, 1);

    // And the compacted store still reopens identically.
    drop(store);
    let store = PatternStore::open(&dir).unwrap();
    assert_eq!(store.len(), len_before);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn uncommitted_appends_may_be_lost_but_committed_ones_never() {
    let dir = tmp("durability");
    let committed = random_words(21, 30, 24);
    let mut store = PatternStore::create(&dir, StoreConfig::new(24)).unwrap();
    for w in &committed {
        store.append(w).unwrap();
    }
    store.commit().unwrap();
    let durable = store.len();
    drop(store); // drop flushes best-effort, but commit is the guarantee

    let store = PatternStore::open(&dir).unwrap();
    assert!(store.len() >= durable);
    for w in &committed {
        assert!(store.contains(w));
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn stats_track_shape_and_dedup() {
    let dir = tmp("stats");
    let mut store = PatternStore::create(&dir, StoreConfig::new(16).segment_capacity(8)).unwrap();
    let w = BitWord::from_fn(16, |i| i % 2 == 0);
    assert!(store.append(&w).unwrap());
    assert!(!store.append(&w).unwrap());
    let stats = store.stats().unwrap();
    assert_eq!(stats.word_bits, 16);
    assert_eq!(stats.appended, 1);
    assert_eq!(stats.deduplicated, 1);
    assert_eq!(stats.tail_words, 1);
    assert_eq!(stats.segments, 0);
    assert!(stats.disk_bytes > 0);
    // Stats serialize for ops scraping.
    let json = serde_json::to_string(&stats).unwrap();
    assert!(json.contains("\"disk_bytes\""));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn open_or_create_enforces_word_width() {
    let dir = tmp("open_or_create");
    let store = PatternStore::open_or_create(&dir, StoreConfig::new(12)).unwrap();
    drop(store);
    assert!(PatternStore::open_or_create(&dir, StoreConfig::new(12)).is_ok());
    let err = PatternStore::open_or_create(&dir, StoreConfig::new(13)).unwrap_err();
    assert!(matches!(err, StoreError::Mismatch(_)), "{err}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn missing_store_is_typed() {
    let dir = tmp("missing");
    assert!(matches!(
        PatternStore::open(&dir).unwrap_err(),
        StoreError::Missing(_)
    ));
}

#[test]
fn pattern_source_impl_round_trips_through_trait_object() {
    let dir = tmp("as_source");
    let store = PatternStore::create(&dir, StoreConfig::new(8)).unwrap();
    let shared = store.into_shared();
    {
        let mut guard = shared.write().unwrap();
        assert!(guard.insert(&BitWord::from_fn(8, |i| i == 3)).unwrap());
        assert!(
            guard.insert(&BitWord::from_fn(4, |_| true)).is_err(),
            "wrong width must be rejected"
        );
        guard.commit().unwrap();
        assert_eq!(guard.word_count(), 1);
        let descriptor = guard.descriptor();
        assert_eq!(descriptor.kind, "napmon-store");
        assert_eq!(descriptor.word_bits, 8);
        assert!(descriptor.path.contains("as_source"));
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn opens_are_exclusive_until_drop() {
    let dir = tmp("exclusive");
    let store = PatternStore::create(&dir, StoreConfig::new(8)).unwrap();
    // A second handle on the live store is a typed error…
    let err = PatternStore::open(&dir).unwrap_err();
    assert!(matches!(err, StoreError::Locked(_)), "{err}");
    // …and the lock dies with the holder.
    drop(store);
    assert!(PatternStore::open(&dir).is_ok());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A crash between seal()'s manifest swap and its tail reset leaves the
/// freshly-sealed words still sitting in tail.log. Reopening must
/// reconcile: no double counting, no duplicate re-sealing.
#[test]
fn crashed_seal_does_not_double_count_words() {
    let dir = tmp("crashed_seal");
    let words = random_words(29, 60, 32);
    let mut store = PatternStore::create(&dir, StoreConfig::new(32)).unwrap();
    let fresh = store.append_batch(&words).unwrap();
    // Snapshot the pre-seal tail log, then seal normally.
    let tail_bytes = std::fs::read(dir.join("tail.log")).unwrap();
    store.seal().unwrap();
    assert_eq!(store.segment_count(), 1);
    drop(store);
    // "Crash before tail reset": restore the stale tail log.
    std::fs::write(dir.join("tail.log"), &tail_bytes).unwrap();

    let mut store = PatternStore::open(&dir).unwrap();
    assert_eq!(store.len(), fresh, "sealed words must not count twice");
    let stats = store.stats().unwrap();
    assert_eq!(stats.sealed_words, fresh);
    assert_eq!(stats.tail_words, 0, "stale tail reconciled away");
    // Sealing again must not duplicate anything on disk.
    store.append_batch(&words).unwrap(); // all duplicates
    store.seal().unwrap();
    assert_eq!(store.segment_count(), 1, "nothing new to seal");
    assert_eq!(store.len(), fresh);
    // And the reconciliation itself survives another reopen.
    drop(store);
    let store = PatternStore::open(&dir).unwrap();
    assert_eq!(store.len(), fresh);
    for w in &words {
        assert!(store.contains(w));
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
