//! Property tests pinning the store's partition-pruned Hamming kernel to
//! a naive per-bit oracle, at widths straddling the u64 limb boundary and
//! across tail-resident vs. sealed residency.
//!
//! The oracle deliberately compares *bits*, not limbs: the bug this
//! guards against was a limb-level `zip` that silently ignored trailing
//! limbs of wider words, so the reference must not share that shape.

use napmon_bdd::BitWord;
use napmon_store::{PatternStore, StoreConfig, StoreError};
use proptest::prelude::*;
use std::path::PathBuf;

fn tmp(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("napmon_store_oracle_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic pseudo-random words from a splitmix-style stream.
fn pseudo_words(bits: usize, count: usize, mut state: u64) -> Vec<BitWord> {
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    (0..count)
        .map(|_| {
            let limbs: Vec<u64> = (0..bits.div_ceil(64)).map(|_| next()).collect();
            BitWord::from_fn(bits, |i| (limbs[i / 64] >> (i % 64)) & 1 == 1)
        })
        .collect()
}

/// Per-bit Hamming oracle: true iff some stored word is within `tau`.
fn oracle(stored: &[BitWord], probe: &BitWord, tau: usize) -> bool {
    stored.iter().any(|w| {
        let a = w.to_bools();
        let b = probe.to_bools();
        a.iter().zip(&b).filter(|(x, y)| x != y).count() <= tau
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Widths 63/64/65/128/129 cross the limb boundary both ways; small
    /// segment capacity forces part of the set into sealed segments while
    /// the remainder stays tail-resident, so both kernels are exercised
    /// in one store.
    #[test]
    fn store_hamming_matches_per_bit_oracle(
        width_pick in 0usize..5,
        count in 1usize..120,
        seal_at in 8usize..64,
        seed in 0u64..u64::MAX,
    ) {
        let bits = [63usize, 64, 65, 128, 129][width_pick];
        let dir = tmp(&format!("prop_{bits}_{count}_{seal_at}"));
        let mut store = PatternStore::create(
            &dir,
            StoreConfig::new(bits).segment_capacity(seal_at),
        )
        .unwrap();
        let words = pseudo_words(bits, count, seed | 1);
        store.append_batch(&words).unwrap();

        // Probes: fresh random words plus near-misses of stored words
        // (flip 1..=4 bits), so hits at every tau are actually reachable.
        let mut probes = pseudo_words(bits, 6, seed.rotate_left(21) | 1);
        for (i, w) in words.iter().take(4).enumerate() {
            let flips = i + 1;
            probes.push(BitWord::from_fn(bits, |j| {
                let bit = w.to_bools()[j];
                if j < flips { !bit } else { bit }
            }));
        }
        for probe in &probes {
            for tau in 0..5usize {
                let expect = oracle(&words, probe, tau);
                prop_assert_eq!(store.contains_within(probe, tau).unwrap(), expect);
            }
        }
        drop(store);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// The satellite bugfix itself: a wrong-width Hamming query is a typed
/// error, never a silently-truncated limb comparison.
#[test]
fn wrong_width_hamming_query_is_a_typed_mismatch() {
    let dir = tmp("width_mismatch");
    let mut store = PatternStore::create(&dir, StoreConfig::new(64)).unwrap();
    let stored = BitWord::from_fn(64, |i| i % 3 == 0);
    store.append(&stored).unwrap();

    // A 65-bit query whose first 64 bits match a stored word exactly: the
    // old limb-zip scan would have answered `true` for tau >= 1 by
    // ignoring the trailing limb entirely.
    let wide = BitWord::from_fn(65, |i| i < 64 && i % 3 == 0);
    for tau in 0..3usize {
        let err = store.contains_within(&wide, tau).unwrap_err();
        assert!(matches!(err, StoreError::Mismatch(_)), "tau={tau}: {err}");
    }
    // Narrower queries are rejected the same way.
    let narrow = BitWord::from_fn(63, |i| i % 3 == 0);
    assert!(matches!(
        store.contains_within(&narrow, 2).unwrap_err(),
        StoreError::Mismatch(_)
    ));
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}

/// Sealing and compaction move words from the tail kernel to the
/// partition-indexed segment kernel; answers must not change.
#[test]
fn answers_stable_across_seal_and_compact() {
    let dir = tmp("residency");
    let bits = 129;
    let mut store = PatternStore::create(&dir, StoreConfig::new(bits)).unwrap();
    let words = pseudo_words(bits, 700, 0x5eed);
    store.append_batch(&words).unwrap();

    let probes = pseudo_words(bits, 10, 0x0dd5);
    let baseline: Vec<Vec<bool>> = probes
        .iter()
        .map(|p| {
            (0..5)
                .map(|tau| store.contains_within(p, tau).unwrap())
                .collect()
        })
        .collect();
    for (p, b) in probes.iter().zip(&baseline) {
        for (tau, &expect) in b.iter().enumerate() {
            assert_eq!(oracle(&words, p, tau), expect, "tail baseline tau={tau}");
        }
    }

    store.seal().unwrap();
    for (p, b) in probes.iter().zip(&baseline) {
        for (tau, &expect) in b.iter().enumerate() {
            assert_eq!(
                store.contains_within(p, tau).unwrap(),
                expect,
                "sealed tau={tau}"
            );
        }
    }

    // More appends, then compact everything into one segment.
    store
        .append_batch(&pseudo_words(bits, 300, 0xbeef))
        .unwrap();
    store.compact().unwrap();
    for (p, b) in probes.iter().zip(&baseline) {
        for (tau, &expect) in b.iter().enumerate() {
            // Compaction only adds words, so an existing hit must survive.
            if expect {
                assert!(
                    store.contains_within(p, tau).unwrap(),
                    "compacted tau={tau}"
                );
            }
        }
    }
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}
