//! Cross-crate integration: the full pipeline from synthetic data through
//! training to monitoring, exercising every workspace crate through the
//! `napmon` facade.

use napmon::absint::Domain;
use napmon::core::{Monitor, MonitorBuilder, MonitorKind, PatternBackend, ThresholdPolicy};
use napmon::data::ood::OodScenario;
use napmon::data::racetrack::{TrackConfig, TrackSampler};
use napmon::eval::experiment::{Experiment, RacetrackConfig};
use napmon::eval::warn_rate;
use napmon::nn::{Activation, LayerSpec, Loss, Network, Optimizer, Trainer};
use napmon::tensor::Prng;

fn small_config() -> RacetrackConfig {
    RacetrackConfig {
        train_size: 120,
        test_size: 120,
        ood_size: 40,
        hidden: vec![16, 8],
        epochs: 4,
        track: TrackConfig {
            height: 8,
            width: 8,
            ..TrackConfig::default()
        },
        ..RacetrackConfig::default()
    }
}

#[test]
fn racetrack_pipeline_standard_vs_robust() {
    let exp = Experiment::prepare(small_config());
    let rows = exp.standard_vs_robust(0.002, Domain::Box);
    assert_eq!(rows.len(), 6);
    // The robust construction can only widen the abstraction: FP never up.
    for pair in rows.chunks(2) {
        assert!(
            pair[1].fp_rate <= pair[0].fp_rate + 1e-12,
            "{}",
            pair[1].name
        );
    }
    // Rates are well-formed probabilities.
    for row in &rows {
        assert!((0.0..=1.0).contains(&row.fp_rate));
        for rate in row.detection.values() {
            assert!((0.0..=1.0).contains(rate));
        }
    }
}

#[test]
fn lemma_1_holds_on_the_racetrack_pipeline() {
    let exp = Experiment::prepare(small_config());
    let net = exp.network();
    let delta = 0.004;
    let monitor = MonitorBuilder::new(net, exp.monitored_boundary())
        .robust(delta, 0, Domain::Box)
        .build(
            MonitorKind::pattern_with(ThresholdPolicy::Mean, PatternBackend::Bdd, 0),
            &exp.train_data().inputs,
        )
        .expect("build robust monitor");
    let mut rng = Prng::seed(404);
    for base in exp.train_data().inputs.iter().take(30) {
        let perturbed: Vec<f64> = base
            .iter()
            .map(|&v| v + rng.uniform(-delta, delta))
            .collect();
        assert!(
            !monitor.warns(net, &perturbed).unwrap(),
            "robust monitor warned within its Δ guarantee"
        );
    }
}

#[test]
fn ood_scenarios_shift_activations_measurably() {
    // Substrate sanity behind E1: the corruptions must move feature vectors
    // (otherwise detection rates would be vacuous).
    let cfg = TrackConfig {
        height: 8,
        width: 8,
        ..TrackConfig::default()
    };
    let mut sampler = TrackSampler::new(cfg, 7);
    let train = sampler.dataset(100);

    let mut net = Network::seeded(
        3,
        cfg.input_dim(),
        &[
            LayerSpec::dense(16, Activation::Relu),
            LayerSpec::dense(2, Activation::Identity),
        ],
    );
    Trainer::new(Loss::Mse, Optimizer::adam(0.005))
        .epochs(4)
        .run(&mut net, &train.inputs, &train.targets, 9);

    let boundary = net.penultimate_boundary();
    let feature_mean = |inputs: &[Vec<f64>]| -> Vec<f64> {
        let mut acc = vec![0.0; net.dim_at(boundary)];
        for x in inputs {
            for (a, v) in acc.iter_mut().zip(net.forward_prefix(x, boundary)) {
                *a += v;
            }
        }
        acc.iter().map(|a| a / inputs.len() as f64).collect()
    };
    let nominal_mean = feature_mean(&train.inputs);
    for scenario in OodScenario::PAPER {
        let corrupted: Vec<Vec<f64>> = train.inputs[..40]
            .iter()
            .map(|x| {
                let img = napmon::data::Image::from_pixels(8, 8, x.clone());
                scenario.apply(&img, sampler.rng_mut()).into_pixels()
            })
            .collect();
        let shifted_mean = feature_mean(&corrupted);
        let shift: f64 = nominal_mean
            .iter()
            .zip(&shifted_mean)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / nominal_mean.len() as f64;
        assert!(
            shift > 1e-3,
            "{scenario} produced no feature shift ({shift})"
        );
    }
}

#[test]
fn monitors_survive_model_save_load() {
    // A monitor built against a saved-then-reloaded network must behave
    // identically — parameters round-trip bit-exactly through JSON.
    let mut rng = Prng::seed(21);
    let inputs: Vec<Vec<f64>> = (0..64).map(|_| rng.uniform_vec(4, -1.0, 1.0)).collect();
    let net = Network::seeded(
        33,
        4,
        &[
            LayerSpec::dense(12, Activation::Relu),
            LayerSpec::dense(2, Activation::Identity),
        ],
    );

    let dir = std::env::temp_dir().join("napmon_root_integration");
    let path = dir.join("model.json");
    napmon::nn::io::save(&net, &path).unwrap();
    let reloaded = napmon::nn::io::load(&path).unwrap();
    std::fs::remove_dir_all(&dir).ok();

    let m1 = MonitorBuilder::new(&net, 2)
        .build(MonitorKind::interval(2), &inputs)
        .unwrap();
    let m2 = MonitorBuilder::new(&reloaded, 2)
        .build(MonitorKind::interval(2), &inputs)
        .unwrap();
    for _ in 0..200 {
        let probe = rng.uniform_vec(4, -2.0, 2.0);
        assert_eq!(
            m1.warns(&net, &probe).unwrap(),
            m2.warns(&reloaded, &probe).unwrap()
        );
    }
}

#[test]
fn warn_rate_composes_with_any_family() {
    let exp = Experiment::prepare(small_config());
    let net = exp.network();
    for (name, kind) in Experiment::monitor_families() {
        let monitor = MonitorBuilder::new(net, exp.monitored_boundary())
            .build(kind, &exp.train_data().inputs)
            .unwrap();
        let fp = warn_rate(&monitor, net, &exp.test_data().inputs);
        assert!((0.0..=1.0).contains(&fp), "{name}: fp {fp}");
        // A monitor never warns on its own training data.
        assert_eq!(
            warn_rate(&monitor, net, &exp.train_data().inputs),
            0.0,
            "{name}"
        );
    }
}
