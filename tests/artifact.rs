//! Facade-level artifact tests: the committed golden file loads, matches a
//! fresh deterministic build bit-for-bit, and mounts on the serving
//! engine; malformed files fail typed at every entry point.

use napmon::artifact::{ArtifactError, MonitorArtifact, FORMAT_VERSION};
use napmon::core::Monitor;
use napmon::serve::{EngineConfig, MonitorEngine};
use napmon_bench::golden;

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_artifact.json");

#[test]
fn committed_golden_artifact_loads_and_matches_fresh_build() {
    let loaded = MonitorArtifact::load_json(GOLDEN_PATH)
        .expect("committed golden artifact must load under the current format version");
    assert_eq!(loaded.format_version, FORMAT_VERSION);
    let fresh = golden::build();
    assert_eq!(loaded.spec(), fresh.spec());
    assert_eq!(loaded.network(), fresh.network());
    assert_eq!(loaded.stats(), fresh.stats());

    let probes = golden::probes();
    assert_eq!(
        loaded
            .monitor()
            .query_batch(loaded.network(), &probes)
            .unwrap(),
        fresh
            .monitor()
            .query_batch(fresh.network(), &probes)
            .unwrap(),
        "golden verdicts must be bit-identical to a fresh build"
    );
}

#[test]
fn golden_artifact_serves_through_the_engine() {
    let loaded = MonitorArtifact::load_json(GOLDEN_PATH).unwrap();
    let probes = golden::probes();
    let expected = loaded
        .monitor()
        .query_batch(loaded.network(), &probes)
        .unwrap();
    let engine = MonitorEngine::from_artifact(loaded, EngineConfig::with_shards(2));
    let served = engine.submit_batch(probes).unwrap();
    assert_eq!(served, expected);
    engine.shutdown();
}

#[test]
fn golden_artifact_with_bumped_version_is_rejected() {
    let json = std::fs::read_to_string(GOLDEN_PATH).unwrap();
    let bumped = json.replacen(
        &format!("\"format_version\":{FORMAT_VERSION}"),
        &format!("\"format_version\":{}", FORMAT_VERSION + 41),
        1,
    );
    assert_ne!(json, bumped);
    match MonitorArtifact::from_json_str(&bumped) {
        Err(ArtifactError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, FORMAT_VERSION + 41);
            assert_eq!(supported, FORMAT_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}
