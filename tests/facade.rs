//! The `napmon` facade re-exports every subsystem; these tests pin the
//! public paths a downstream user would import.

use napmon::absint::{propagate_bounds, BoxBounds, Domain, Interval, Simplex, StarSet, Zonotope};
use napmon::bdd::{to_dot, Bdd};
use napmon::core::{
    perturbation_estimate, FeatureExtractor, IntervalPatternMonitor, MinMaxMonitor, Monitor,
    MonitorBuilder, MonitorKind, PatternMonitor, ThresholdPolicy,
};
use napmon::data::{
    gaussian::GaussianClusters, shapes::ShapesConfig, Dataset, Image, OodScenario, TrackConfig,
    TrackSampler,
};
use napmon::eval::{warn_rate, Table};
use napmon::nn::{Activation, Conv2d, Dense, Layer, LayerSpec, MaxPool2d, Network};
use napmon::tensor::{vector, Matrix, Prng};

#[test]
fn every_major_type_is_reachable_through_the_facade() {
    // tensor
    let m = Matrix::identity(2);
    assert_eq!(vector::dot(&m.matvec(&[1.0, 2.0]), &[1.0, 0.0]), 1.0);
    let mut rng = Prng::seed(0);

    // nn
    let net = Network::seeded(1, 2, &[LayerSpec::dense(3, Activation::Relu)]);
    assert_eq!(net.output_dim(), 3);
    let _: (
        &[Layer],
        Option<&Dense>,
        Option<&Conv2d>,
        Option<&MaxPool2d>,
    ) = (net.layers(), None, None, None);

    // absint
    let iv = Interval::new(0.0, 1.0);
    assert!(iv.contains(0.5));
    let b = BoxBounds::from_center_radius(&[0.0, 0.0], 0.1);
    let out = propagate_bounds(&net, 0, net.num_layers(), &b, Domain::Box);
    assert_eq!(out.dim(), 3);
    let _z = Zonotope::from_box(&b);
    let _s = StarSet::from_box(&b);
    let lp = Simplex::new(1).less_equal(&[1.0], 1.0);
    assert!((lp.maximize(&[1.0]).unwrap().objective - 1.0).abs() < 1e-9);

    // bdd
    let mut bdd = Bdd::new(2);
    let x = bdd.var(0);
    assert!(to_dot(&bdd, x).contains("digraph"));

    // core
    let fx = FeatureExtractor::new(&net, 1).unwrap();
    let _mm = MinMaxMonitor::empty(fx.clone());
    let _pm =
        PatternMonitor::empty(fx.clone(), vec![0.0; 3], napmon::core::PatternBackend::Bdd).unwrap();
    let _im = IntervalPatternMonitor::empty(fx, 2, vec![vec![0.0, 1.0, 2.0]; 3]).unwrap();
    let pe = perturbation_estimate(&net, &[0.1, 0.2], 0, 1, 0.05, Domain::Box).unwrap();
    assert_eq!(pe.dim(), 3);

    // data
    let img = Image::filled(2, 2, 0.5);
    assert_eq!(img.pixels().len(), 4);
    let mut sampler = TrackSampler::new(TrackConfig::default(), 1);
    let ds: Dataset = sampler.dataset(4);
    assert_eq!(ds.len(), 4);
    let _ = OodScenario::Dark.apply(&img, &mut rng);
    let g = GaussianClusters::ring(3, 2, 2.0, 0.1);
    assert_eq!(g.num_classes(), 3);
    let shapes = ShapesConfig::default();
    assert_eq!(shapes.input_dim(), 144);

    // eval
    let data: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64 / 8.0, 0.1]).collect();
    let monitor = MonitorBuilder::new(&net, 1)
        .build(
            MonitorKind::pattern_with(ThresholdPolicy::Mean, napmon::core::PatternBackend::Bdd, 0),
            &data,
        )
        .unwrap();
    assert_eq!(warn_rate(&monitor, &net, &data), 0.0);
    let mut table = Table::new(vec!["k".into(), "v".into()]);
    table.row(vec!["a".into(), "b".into()]);
    assert!(table.to_string().contains('a'));
    let _ = monitor.verdict(&net, &data[0]).unwrap();
}

#[test]
fn gaussian_per_class_monitoring_detects_phantom_cluster() {
    // A compact end-to-end classification scenario entirely through the
    // facade: per-class monitors on Gaussian clusters flag samples from an
    // unseen cluster at a far higher rate than in-distribution data.
    use napmon::nn::{Loss, Optimizer, Trainer};
    let g = GaussianClusters::ring(3, 2, 4.0, 0.3);
    let mut rng = Prng::seed(37);
    let train = g.dataset(120, &mut rng);
    let test = g.dataset(40, &mut rng);
    let ood = g.ood_inputs(120, &mut rng);

    let mut net = Network::seeded(
        8,
        2,
        &[
            LayerSpec::dense(16, Activation::Relu),
            LayerSpec::dense(3, Activation::Identity),
        ],
    );
    Trainer::new(Loss::SoftmaxCrossEntropy, Optimizer::adam(0.01))
        .epochs(30)
        .run(&mut net, &train.inputs, &train.targets, 3);

    let labels = train.labels.as_ref().unwrap();
    let pc = MonitorBuilder::new(&net, net.penultimate_boundary())
        .build_per_class(MonitorKind::min_max(), &train.inputs, labels, 3)
        .unwrap();

    let rate = |xs: &[Vec<f64>]| {
        xs.iter().filter(|x| pc.warns(&net, x).unwrap()).count() as f64 / xs.len() as f64
    };
    let fp = rate(&test.inputs);
    let det = rate(&ood);
    assert!(det > fp, "detection {det} should exceed FP {fp}");
    assert!(det > 0.5, "phantom cluster detection too low: {det}");
}
