//! End-to-end online serving: the full pipeline from synthetic race-track
//! data through training to a live sharded engine, through the `napmon`
//! facade.

use napmon::core::{MonitorBuilder, MonitorKind, PatternBackend, ThresholdPolicy};
use napmon::data::racetrack::TrackConfig;
use napmon::eval::experiment::{Experiment, RacetrackConfig};
use napmon::eval::warn_rate;
use napmon::serve::{EngineConfig, MonitorEngine};

fn small_config() -> RacetrackConfig {
    RacetrackConfig {
        train_size: 120,
        test_size: 120,
        ood_size: 40,
        hidden: vec![16, 8],
        epochs: 4,
        track: TrackConfig {
            height: 8,
            width: 8,
            ..TrackConfig::default()
        },
        ..RacetrackConfig::default()
    }
}

#[test]
fn two_shard_engine_matches_batch_evaluation_and_drains_on_shutdown() {
    // Train the waypoint regressor and build its operation-time monitor.
    let exp = Experiment::prepare(small_config());
    let net = exp.network();
    let monitor = MonitorBuilder::new(net, exp.monitored_boundary())
        .build(
            MonitorKind::pattern_with(ThresholdPolicy::Mean, PatternBackend::Bdd, 0),
            &exp.train_data().inputs,
        )
        .expect("build monitor");

    // The offline reference: batch evaluation over the in-ODD test set.
    let batch_rate = warn_rate(&monitor, net, &exp.test_data().inputs);

    // The online engine: two shards serving the same traffic.
    let engine = MonitorEngine::new(net.clone(), monitor, EngineConfig::with_shards(2));
    let verdicts = engine
        .submit_batch(exp.test_data().inputs.clone())
        .expect("serve test traffic");
    let served_rate = verdicts.iter().filter(|v| v.warning).count() as f64 / verdicts.len() as f64;

    // Queries never mutate the monitor, so the online warn rate is not
    // merely close to the batch one — it is identical.
    assert!(
        (served_rate - batch_rate).abs() < 1e-12,
        "online warn rate {served_rate} != batch warn rate {batch_rate}"
    );

    // Enqueue more traffic asynchronously and shut down immediately: the
    // engine must drain every in-flight request, and its final report must
    // account for all of them.
    let in_flight = engine.submit_batch_async(exp.train_data().inputs.clone());
    let report = engine.shutdown();
    let total = exp.test_data().inputs.len() + exp.train_data().inputs.len();
    assert_eq!(report.requests, total as u64, "shutdown lost requests");

    // The drained verdicts are still collectable, and training traffic
    // never warns on its own monitor.
    let drained = in_flight.wait().expect("drained batch");
    assert_eq!(drained.len(), exp.train_data().inputs.len());
    assert!(drained.iter().all(|v| !v.warning));

    // Cross-checks: the report's stream-side warn rate agrees with the
    // verdicts the clients saw, and both shards carried load.
    let warned = verdicts.iter().filter(|v| v.warning).count() as u64;
    assert_eq!(report.warnings, warned);
    assert_eq!(report.shards.len(), 2);
    for shard in &report.shards {
        assert!(shard.requests() > 0, "shard {} served nothing", shard.shard);
        // The drain guarantee, per shard: nothing may still be queued
        // after a graceful shutdown.
        assert_eq!(
            shard.queue_depth, 0,
            "shard {} retired with queued work",
            shard.shard
        );
    }
    assert_eq!(report.queue_depth, 0, "engine retired with queued work");

    // Ops scrape these reports: the full aggregate (queue depths
    // included) must survive a JSON round trip bit-identically.
    let json = serde_json::to_string(&report).expect("report serializes");
    assert!(json.contains("\"queue_depth\""), "{json}");
    let scraped: napmon::serve::ServeReport =
        serde_json::from_str(&json).expect("report deserializes");
    assert_eq!(scraped, report);
}
