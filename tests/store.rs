//! Differential acceptance tests for the persistent pattern store:
//! store-backed monitors must return bit-identical verdicts to their
//! in-memory counterparts across every monitor kind × standard/robust ×
//! single/multi-layer composition — including after operation-time
//! absorption and a full close/reopen cycle — and a store with a torn
//! tail must reopen cleanly, losing only the torn record.

use napmon::absint::Domain;
use napmon::core::{
    ComposedMonitor, Monitor, MonitorKind, MonitorSpec, PatternBackend, ThresholdPolicy, Vote,
    WatchedLayer,
};
use napmon::nn::{Activation, LayerSpec, Network};
use napmon::serve::{EngineConfig, MonitorEngine};
use napmon::store::{PatternStore, StoreConfig, StoreProvider};
use napmon::tensor::Prng;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("napmon_e2e_store_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn net() -> Network {
    Network::seeded(
        23,
        3,
        &[
            LayerSpec::dense(8, Activation::Relu),
            LayerSpec::dense(4, Activation::Relu),
            LayerSpec::dense(2, Activation::Identity),
        ],
    )
}

fn data(seed: u64, n: usize, span: f64) -> Vec<Vec<f64>> {
    let mut rng = Prng::seed(seed);
    (0..n).map(|_| rng.uniform_vec(3, -span, span)).collect()
}

fn warnings(m: &ComposedMonitor, net: &Network, probes: &[Vec<f64>]) -> Vec<bool> {
    m.query_batch(net, probes)
        .unwrap()
        .iter()
        .map(|v| v.warning)
        .collect()
}

/// Every kind × standard/robust × single/multi-layer: the store-backed
/// build answers bit-identically to the in-memory reference, both before
/// and after absorb + reopen. (Min-max has no pattern set; its row checks
/// that the in-memory build is unaffected by the machinery, keeping the
/// kind matrix complete.)
#[test]
fn store_backed_verdicts_are_bit_identical_across_the_matrix() {
    let net = net();
    let train = data(99, 48, 0.5);
    let probes = data(7, 96, 2.0);
    let absorbs = data(13, 12, 2.5);

    // (label, in-memory kind, store-backed kind). `None` marks kinds with
    // no pattern set to externalize.
    let kinds: Vec<(&str, MonitorKind, Option<MonitorKind>)> = vec![
        (
            "pattern",
            MonitorKind::pattern(),
            Some(MonitorKind::pattern_with(
                ThresholdPolicy::Sign,
                PatternBackend::Store,
                0,
            )),
        ),
        (
            "pattern-hamming1",
            MonitorKind::pattern_with(ThresholdPolicy::Sign, PatternBackend::HashSet, 1),
            Some(MonitorKind::pattern_with(
                ThresholdPolicy::Sign,
                PatternBackend::Store,
                1,
            )),
        ),
        (
            "interval-2bit",
            MonitorKind::interval(2),
            Some(MonitorKind::interval(2)),
        ),
        ("min-max", MonitorKind::min_max(), None),
    ];
    let compositions: Vec<(&str, Vec<WatchedLayer>, Option<Vote>)> = vec![
        ("single", vec![WatchedLayer::whole(4)], None),
        (
            "multi-layer",
            vec![WatchedLayer::whole(2), WatchedLayer::whole(4)],
            Some(Vote::Any),
        ),
    ];

    for (kind_name, mem_kind, store_kind) in &kinds {
        for robust in [false, true] {
            for (comp_name, layers, vote) in &compositions {
                let ctx = format!("{kind_name}/{comp_name}/robust={robust}");
                let make_spec = |kind: MonitorKind| {
                    let mut spec = match vote {
                        None => MonitorSpec::new(layers[0].layer, kind),
                        Some(vote) => MonitorSpec::multi_layer(layers.clone(), kind, *vote),
                    };
                    if robust {
                        spec = spec.robust(0.02, 0, Domain::Box);
                    }
                    spec
                };
                let mut reference = make_spec(mem_kind.clone()).build(&net, &train).unwrap();
                let Some(store_kind) = store_kind else {
                    // No pattern set: just pin that the reference behaves.
                    assert!(
                        !warnings(&reference, &net, &train).iter().any(|w| *w),
                        "{ctx}"
                    );
                    continue;
                };
                let dir = tmp(&format!("{kind_name}_{comp_name}_{robust}"));
                let spec = make_spec(store_kind.clone());
                let stored = spec
                    .build_with_sources(&net, &train, &mut StoreProvider::new(&dir))
                    .unwrap();

                // 1. Bit-identical verdicts after construction.
                assert_eq!(
                    stored.query_batch(&net, &probes).unwrap(),
                    reference.query_batch(&net, &probes).unwrap(),
                    "{ctx}: construction differs"
                );

                // 2. Absorb the same operation-time traffic on both sides
                //    (shared path for the store, &mut path in memory).
                for x in &absorbs {
                    stored.absorb_operation(&net, x).unwrap();
                    reference.absorb_mut(&net, x).unwrap();
                }
                stored.commit_external_sources().unwrap();
                assert_eq!(
                    stored.query_batch(&net, &probes).unwrap(),
                    reference.query_batch(&net, &probes).unwrap(),
                    "{ctx}: absorption diverged"
                );

                // 3. Reopen in a "fresh process": persist the thresholds
                //    through an artifact (which references the store by
                //    path), load it back — the artifact reattaches the
                //    segments on disk — and require bit-identical
                //    verdicts again.
                let artifact = napmon::artifact::MonitorArtifact::from_parts(
                    spec.clone(),
                    net.clone(),
                    stored,
                    train.len(),
                )
                .unwrap();
                let path = dir.join("artifact.json");
                artifact.save_json(&path).unwrap();
                drop(artifact);
                let reopened = napmon::artifact::MonitorArtifact::load_json(&path).unwrap();
                assert_eq!(
                    reopened.monitor().query_batch(&net, &probes).unwrap(),
                    reference.query_batch(&net, &probes).unwrap(),
                    "{ctx}: reopen diverged"
                );
                std::fs::remove_dir_all(&dir).unwrap();
            }
        }
    }
}

/// Crash safety at the acceptance level: tear the store's tail
/// mid-record, reopen, and verify the survivors answer exactly as an
/// in-memory monitor holding the intact prefix.
#[test]
fn torn_segment_tail_reopens_cleanly_with_prefix_semantics() {
    let dir = tmp("torn");
    let bits = 16;
    let mut store = PatternStore::create(&dir, StoreConfig::new(bits)).unwrap();
    let words: Vec<napmon::bdd::BitWord> = (0..40u64)
        .map(|i| napmon::bdd::BitWord::from_fn(bits, |j| (i >> (j % 6)) & 1 == 1))
        .collect();
    let fresh = store.append_batch(&words).unwrap();
    drop(store);

    // Crash mid-append: the last record is torn.
    let tail = dir.join("tail.log");
    let len = std::fs::metadata(&tail).unwrap().len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(&tail)
        .unwrap()
        .set_len(len - 7)
        .unwrap();

    let store = PatternStore::open(&dir).unwrap();
    assert_eq!(store.len(), fresh - 1, "exactly the torn record is lost");
    // Every fully-committed word is still a member; and the store keeps
    // accepting appends after recovery.
    let mut survivors = 0;
    for w in &words {
        if store.contains(w) {
            survivors += 1;
        }
    }
    assert_eq!(survivors as u64, fresh - 1);
    let mut store = store;
    store.append_batch(&words).unwrap();
    assert_eq!(store.len(), fresh, "recovered store absorbs the tail again");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The serve-side loop at facade level: store-backed engine verdicts stay
/// identical to the in-memory engine, then absorption + warm restart keep
/// the enlarged abstraction without a rebuild.
#[test]
fn engine_round_trip_through_the_store_matches_in_memory_engine() {
    let dir = tmp("engine");
    let network = net();
    let train = data(5, 64, 0.5);
    let probes = data(31, 80, 2.0);

    let mem_monitor = MonitorSpec::new(4, MonitorKind::pattern())
        .build(&network, &train)
        .unwrap();
    let spec = MonitorSpec::new(
        4,
        MonitorKind::pattern_with(ThresholdPolicy::Sign, PatternBackend::Store, 0),
    );
    let stored_monitor = spec
        .build_with_sources(&network, &train, &mut StoreProvider::new(&dir))
        .unwrap();

    let mem_engine = MonitorEngine::new(network.clone(), mem_monitor, EngineConfig::with_shards(2));
    let store_engine = MonitorEngine::new(
        network.clone(),
        stored_monitor,
        EngineConfig::with_shards(2),
    );
    let a = mem_engine.submit_batch(probes.clone()).unwrap();
    let b = store_engine.submit_batch(probes.clone()).unwrap();
    assert_eq!(a, b, "engines disagree before absorption");
    mem_engine.shutdown();

    // Absorb every warning probe, sync, shut down, warm start: the
    // enlarged set must persist.
    store_engine.absorb_batch(&probes).unwrap();
    let enlarged = store_engine.submit_batch(probes.clone()).unwrap();
    assert!(enlarged.iter().all(|v| !v.warning));
    store_engine.shutdown();

    let warm =
        MonitorEngine::from_store(&spec, network, &dir, EngineConfig::with_shards(2)).unwrap();
    let after = warm.submit_batch(probes).unwrap();
    assert_eq!(after, enlarged, "warm restart lost absorbed patterns");
    warm.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}
