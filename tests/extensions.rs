//! Integration tests for the extension features: monitor persistence,
//! quantitative scores with ROC analysis, and multi-layer voting monitors.

use napmon::absint::Domain;
use napmon::core::{Monitor, MonitorBuilder, MonitorKind, MultiLayerMonitor, ScoredMonitor, Vote};
use napmon::eval::{auc, roc, scores};
use napmon::nn::{Activation, LayerSpec, Network};
use napmon::tensor::Prng;

#[allow(clippy::type_complexity)]
fn setup() -> (Network, Vec<Vec<f64>>, Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let net = Network::seeded(
        91,
        3,
        &[
            LayerSpec::dense(12, Activation::Relu),
            LayerSpec::dense(6, Activation::Relu),
            LayerSpec::dense(2, Activation::Identity),
        ],
    );
    let mut rng = Prng::seed(92);
    let train: Vec<Vec<f64>> = (0..128).map(|_| rng.uniform_vec(3, -0.5, 0.5)).collect();
    let test: Vec<Vec<f64>> = (0..64).map(|_| rng.uniform_vec(3, -0.5, 0.5)).collect();
    let ood: Vec<Vec<f64>> = (0..64).map(|_| rng.uniform_vec(3, 2.0, 4.0)).collect();
    (net, train, test, ood)
}

#[test]
fn monitors_round_trip_through_json() {
    let (net, train, test, _) = setup();
    for kind in [
        MonitorKind::min_max(),
        MonitorKind::pattern(),
        MonitorKind::interval(2),
    ] {
        let monitor = MonitorBuilder::new(&net, 4)
            .robust(0.02, 0, Domain::Box)
            .build(kind, &train)
            .unwrap();
        let json = serde_json::to_string(&monitor).unwrap();
        let back: napmon::core::AnyMonitor = serde_json::from_str(&json).unwrap();
        for x in train.iter().chain(&test) {
            assert_eq!(
                monitor.warns(&net, x).unwrap(),
                back.warns(&net, x).unwrap()
            );
        }
    }
}

#[test]
fn deserialized_pattern_monitor_keeps_absorbing() {
    // The rebuilt BDD unique table must stay consistent: inserting after a
    // round trip behaves like inserting into the original.
    let (net, train, _, _) = setup();
    let monitor = MonitorBuilder::new(&net, 4)
        .build(MonitorKind::pattern(), &train[..64])
        .unwrap();
    let json = serde_json::to_string(&monitor).unwrap();
    let back: napmon::core::AnyMonitor = serde_json::from_str(&json).unwrap();
    let (mut orig, mut copy) = (
        monitor.as_pattern().unwrap().clone(),
        back.as_pattern().unwrap().clone(),
    );
    for x in &train[64..] {
        let f = orig.extractor().features(&net, x).unwrap();
        orig.absorb_point(&f);
        copy.absorb_point(&f);
    }
    assert_eq!(orig.pattern_count(), copy.pattern_count());
}

#[test]
fn quantitative_scores_yield_high_auc_on_far_ood() {
    use napmon::core::{PatternBackend, ThresholdPolicy};
    let (net, train, test, ood) = setup();
    // Mean thresholds: sign thresholds degenerate on post-ReLU layers.
    let pattern = MonitorKind::pattern_with(ThresholdPolicy::Mean, PatternBackend::Bdd, 0);
    // Continuous min-max distances separate sharply; Hamming distances over
    // a 6-neuron pattern space are coarse, so the bar is lower there.
    for (kind, min_auc) in [
        (MonitorKind::min_max(), 0.9),
        (pattern, 0.55),
        (MonitorKind::interval(2), 0.55),
    ] {
        let monitor = MonitorBuilder::new(&net, 4)
            .build(kind.clone(), &train)
            .unwrap();
        let neg = scores(&monitor, &net, &test);
        let pos = scores(&monitor, &net, &ood);
        let curve = roc(&neg, &pos);
        let area = auc(&curve);
        assert!(area > min_auc, "{kind:?}: auc {area} <= {min_auc}");
    }
}

#[test]
fn scores_refine_the_binary_verdict() {
    let (net, train, _, _) = setup();
    let monitor = MonitorBuilder::new(&net, 4)
        .build(MonitorKind::min_max(), &train)
        .unwrap();
    let mut rng = Prng::seed(93);
    for _ in 0..200 {
        let probe = rng.uniform_vec(3, -2.0, 2.0);
        let features = monitor.extractor().features(&net, &probe).unwrap();
        assert_eq!(
            monitor.warns_features(&features),
            monitor.score_features(&features) > 0.0
        );
    }
}

#[test]
fn multi_layer_vote_reduces_false_positives() {
    let (net, train, test, ood) = setup();
    let m2 = MonitorBuilder::new(&net, 2)
        .build(MonitorKind::pattern(), &train)
        .unwrap();
    let m4 = MonitorBuilder::new(&net, 4)
        .build(MonitorKind::pattern(), &train)
        .unwrap();
    let any = MultiLayerMonitor::new(vec![m2.clone(), m4.clone()], Vote::Any);
    let all = MultiLayerMonitor::new(vec![m2, m4], Vote::All);

    let rate = |mm: &MultiLayerMonitor, xs: &[Vec<f64>]| -> f64 {
        xs.iter().filter(|x| mm.warns(&net, x).unwrap()).count() as f64 / xs.len() as f64
    };
    // ALL-votes warn on a subset of what ANY-votes warn on.
    assert!(rate(&all, &test) <= rate(&any, &test) + 1e-12);
    assert!(rate(&all, &ood) <= rate(&any, &ood) + 1e-12);
    // Training data stays silent under both.
    assert_eq!(rate(&any, &train), 0.0);
}

#[test]
fn multi_layer_serde_round_trip() {
    let (net, train, test, _) = setup();
    let m2 = MonitorBuilder::new(&net, 2)
        .build(MonitorKind::min_max(), &train)
        .unwrap();
    let m4 = MonitorBuilder::new(&net, 4)
        .build(MonitorKind::interval(2), &train)
        .unwrap();
    let mm = MultiLayerMonitor::new(vec![m2, m4], Vote::AtLeast(1));
    let json = serde_json::to_string(&mm).unwrap();
    let back: MultiLayerMonitor = serde_json::from_str(&json).unwrap();
    for x in &test {
        assert_eq!(mm.warns(&net, x).unwrap(), back.warns(&net, x).unwrap());
    }
}
