//! # napmon — provably-robust runtime monitoring of neuron activation patterns
//!
//! A Rust reproduction of *"Provably-Robust Runtime Monitoring of Neuron
//! Activation Patterns"* (Chih-Hong Cheng, DATE 2021). The crate is a facade
//! that re-exports the workspace members:
//!
//! - [`tensor`] — dense vectors/matrices and RNG utilities,
//! - [`nn`] — feed-forward networks, training, and layer-sliced evaluation
//!   (`G^k`, `G^{l->k}` in the paper's notation),
//! - [`absint`] — abstract domains (interval/box, zonotope, DeepPoly-style
//!   polyhedra, star set) used to compute the perturbation estimate of
//!   Definition 1,
//! - [`bdd`] — reduced ordered binary decision diagrams storing pattern sets,
//! - [`core`] — the monitors themselves: min-max, Boolean on-off patterns and
//!   multi-bit interval patterns, each with standard and robust construction,
//!   built from a declarative [`MonitorSpec`](core::MonitorSpec),
//! - [`artifact`] — versioned deployment artifacts: spec + network + built
//!   monitor in one validated file (build → save → load → serve),
//! - [`store`] — the persistent log-structured pattern store: checksummed
//!   segments + Bloom filters + atomic manifest, so pattern sets survive
//!   restarts, scale past RAM budgets, and grow at operation time,
//! - [`data`] — synthetic datasets standing in for the paper's race-track lab,
//! - [`eval`] — the experiment harness regenerating the paper's evaluation,
//! - [`serve`] — the long-lived sharded serving engine keeping a monitor hot
//!   next to a deployed network (bootable straight from an artifact file),
//! - [`wire`] — the network boundary: a framed binary TCP protocol serving
//!   the engine to remote clients (query, absorb, stats, graceful shutdown).
//!
//! ## Quickstart: spec-first
//!
//! The construction API is *spec-first*: describe the whole monitor build
//! as data ([`MonitorSpec`](core::MonitorSpec)), build it, and — when it is
//! time to deploy — package it as a versioned
//! [`MonitorArtifact`](artifact::MonitorArtifact) that a fresh process can
//! load and mount.
//!
//! ```
//! use napmon::absint::Domain;
//! use napmon::artifact::MonitorArtifact;
//! use napmon::core::{Monitor, MonitorKind, MonitorSpec};
//! use napmon::nn::{Activation, LayerSpec, Network};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A tiny trained-elsewhere network: 4 -> 8 -> 2 with ReLU.
//! let net = Network::seeded(42, 4, &[
//!     LayerSpec::dense(8, Activation::Relu),
//!     LayerSpec::dense(2, Activation::Identity),
//! ]);
//! // Training data (here: random points standing in for a real set).
//! let train: Vec<Vec<f64>> = (0..64)
//!     .map(|i| (0..4).map(|j| ((i * 7 + j * 3) % 10) as f64 / 10.0).collect())
//!     .collect();
//!
//! // The whole build, declared as data: a robust on-off pattern monitor
//! // at the last hidden layer, tolerating input perturbations up to 0.05
//! // per dimension.
//! let spec = MonitorSpec::new(1, MonitorKind::pattern()).robust(0.05, 0, Domain::Box);
//! let monitor = spec.build(&net, &train)?;
//! // Inputs near the training data never warn (Lemma 1)...
//! assert!(!monitor.warns(&net, &train[0])?);
//!
//! // ...and the deployment unit is one validated, versioned file:
//! let artifact = MonitorArtifact::build(spec, &net, &train)?;
//! let json = artifact.to_json_string()?;
//! let reloaded = MonitorArtifact::from_json_str(&json)?;
//! assert!(!reloaded.monitor().warns(reloaded.network(), &train[0])?);
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/artifact_roundtrip.rs` for the full build → save → load →
//! serve pipeline, including `MonitorEngine::from_artifact`.

pub use napmon_absint as absint;
pub use napmon_artifact as artifact;
pub use napmon_bdd as bdd;
pub use napmon_core as core;
pub use napmon_data as data;
pub use napmon_eval as eval;
pub use napmon_nn as nn;
pub use napmon_obs as obs;
pub use napmon_registry as registry;
pub use napmon_serve as serve;
pub use napmon_store as store;
pub use napmon_tensor as tensor;
pub use napmon_wire as wire;
