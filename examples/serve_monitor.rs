//! Operation-time monitoring as a long-lived service: train the race-track
//! perception network, freeze its monitor, and serve mixed traffic through
//! a sharded `napmon-serve` engine — the deployment shape the paper's
//! monitors are designed for.
//!
//! ```text
//! cargo run --release --example serve_monitor
//! ```

use napmon::core::{MonitorBuilder, MonitorKind, PatternBackend, ThresholdPolicy};
use napmon::data::ood::OodScenario;
use napmon::data::Image;
use napmon::eval::experiment::{Experiment, RacetrackConfig};
use napmon::serve::{EngineConfig, MonitorEngine};

fn main() {
    // 1. Train the perception network and build the frozen monitor.
    println!("training perception network…");
    let exp = Experiment::prepare(RacetrackConfig {
        train_size: 400,
        test_size: 400,
        ood_size: 100,
        epochs: 8,
        ..RacetrackConfig::default()
    });
    let net = exp.network();
    let monitor = MonitorBuilder::new(net, exp.monitored_boundary())
        .build(
            MonitorKind::pattern_with(ThresholdPolicy::Mean, PatternBackend::Bdd, 0),
            &exp.train_data().inputs,
        )
        .expect("build monitor");
    println!("monitor: {monitor}");

    // 2. Stand the engine up: two worker shards, each holding one scratch
    //    for its whole lifetime.
    let engine = MonitorEngine::new(net.clone(), monitor, EngineConfig::with_shards(2));
    println!(
        "engine up: {} shards, micro-batch {}\n",
        engine.shards(),
        engine.config().micro_batch
    );

    // 3. Serve nominal in-ODD traffic.
    let nominal = exp.test_data().inputs.clone();
    let verdicts = engine.submit_batch(nominal).expect("serve nominal traffic");
    let warned = verdicts.iter().filter(|v| v.warning).count();
    println!(
        "nominal traffic: {warned}/{} warned (false positives)",
        verdicts.len()
    );

    // 4. Serve out-of-ODD traffic: the paper's Figure-2 corruptions.
    let cfg = exp.config().track;
    let mut sampler = napmon::data::racetrack::TrackSampler::new(cfg, 999);
    for scenario in OodScenario::PAPER {
        let corrupted: Vec<Vec<f64>> = exp.test_data().inputs[..100]
            .iter()
            .map(|x| {
                let img = Image::from_pixels(cfg.height, cfg.width, x.clone());
                scenario.apply(&img, sampler.rng_mut()).into_pixels()
            })
            .collect();
        let verdicts = engine.submit_batch(corrupted).expect("serve OOD traffic");
        let detected = verdicts.iter().filter(|v| v.warning).count();
        println!("{scenario}: detected {detected}/100");
    }

    // 5. Live metrics, then graceful shutdown (drains, then reports).
    println!("\nmid-stream snapshot:\n{}", engine.report());
    let report = engine.shutdown();
    println!("final report after shutdown:\n{report}");
}
