//! Compares the three abstract domains of Definition 1 — box (interval
//! bound propagation), zonotope, and star set — on the same perturbation
//! estimate, showing the tightness/cost trade-off behind experiment A4.
//!
//! ```text
//! cargo run --release --example domain_comparison
//! ```

use napmon::absint::{propagate::Propagator, BoxBounds, Domain};
use napmon::eval::table::Table;
use napmon::nn::{Activation, LayerSpec, Network};
use napmon::tensor::Prng;
use std::time::Instant;

fn main() {
    let net = Network::seeded(
        3,
        8,
        &[
            LayerSpec::dense(24, Activation::Relu),
            LayerSpec::dense(16, Activation::Relu),
            LayerSpec::dense(2, Activation::Identity),
        ],
    );
    let mut rng = Prng::seed(1);
    let center = rng.uniform_vec(8, -0.5, 0.5);
    println!(
        "perturbation estimate at the output of a 8 -> 24 -> 16 -> 2 network, Δ sweep at the input\n"
    );

    let mut t = Table::new(vec![
        "Δ".into(),
        "box width".into(),
        "zonotope width".into(),
        "poly width".into(),
        "star width".into(),
        "box µs".into(),
        "zonotope µs".into(),
        "poly µs".into(),
        "star µs".into(),
    ]);
    for delta in [0.01, 0.05, 0.1, 0.2] {
        let input = BoxBounds::from_center_radius(&center, delta);
        let mut widths = Vec::new();
        let mut times = Vec::new();
        for domain in Domain::ALL {
            let prop = Propagator::new(&net, domain);
            let start = Instant::now();
            let out = prop.bounds(0, net.num_layers(), &input);
            times.push(start.elapsed().as_micros());
            widths.push(out.mean_width());
        }
        t.row(vec![
            format!("{delta}"),
            format!("{:.4}", widths[0]),
            format!("{:.4}", widths[1]),
            format!("{:.4}", widths[2]),
            format!("{:.4}", widths[3]),
            times[0].to_string(),
            times[1].to_string(),
            times[2].to_string(),
            times[3].to_string(),
        ]);
    }
    println!("{t}");
    println!(
        "tighter bounds -> fewer don't-cares in robust monitors -> better detection at equal Δ."
    );
}
