//! Persistence & warm restart, end to end:
//!
//! 1. declare a store-backed monitor spec and build it — the pattern set
//!    lands in a log-structured on-disk store, not process RAM;
//! 2. serve traffic on the sharded engine and *absorb* novel
//!    operation-time patterns into the store (no rebuild — every shard
//!    sees them immediately);
//! 3. save a (tiny) artifact that references the store by path;
//! 4. simulate a restart: boot a fresh engine straight from the segments
//!    on disk and verify nothing was lost.
//!
//! Run with `cargo run --release --example store_monitor`.

use napmon::core::{Monitor, MonitorKind, MonitorSpec, PatternBackend, ThresholdPolicy};
use napmon::nn::{Activation, LayerSpec, Network};
use napmon::serve::{EngineConfig, MonitorEngine};
use napmon::store::{PatternStore, StoreProvider};
use napmon::tensor::Prng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("napmon_store_example_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store_root = dir.join("patterns");

    // A small trained-elsewhere network and its training distribution.
    let net = Network::seeded(
        2024,
        4,
        &[
            LayerSpec::dense(24, Activation::Relu),
            LayerSpec::dense(3, Activation::Identity),
        ],
    );
    let mut rng = Prng::seed(11);
    let train: Vec<Vec<f64>> = (0..256).map(|_| rng.uniform_vec(4, -1.0, 1.0)).collect();

    // 1. Store-backed build: the spec says "patterns live in a store".
    let spec = MonitorSpec::new(
        2,
        MonitorKind::pattern_with(ThresholdPolicy::Sign, PatternBackend::Store, 0),
    );
    let monitor = spec.build_with_sources(&net, &train, &mut StoreProvider::new(&store_root))?;
    println!("built store-backed monitor: {monitor}");
    for x in &train {
        assert!(!monitor.warns(&net, x)?);
    }

    // The artifact references the store; it does not embed the word set.
    let artifact =
        napmon::artifact::MonitorArtifact::from_parts(spec.clone(), net.clone(), monitor, 256)?;
    let artifact_path = dir.join("monitor.artifact.json");
    artifact.save_json(&artifact_path)?;
    println!(
        "artifact on disk: {} bytes (references {})",
        std::fs::metadata(&artifact_path)?.len(),
        store_root.display(),
    );
    // Store opens are exclusive; release the build's handle before the
    // serving process reopens the segments.
    drop(artifact);

    // 2. Serve and absorb. Out-of-distribution traffic warns at first…
    let engine = MonitorEngine::from_artifact(
        napmon::artifact::MonitorArtifact::load_json(&artifact_path)?,
        EngineConfig::with_shards(2),
    );
    let ood: Vec<Vec<f64>> = (0..64).map(|_| rng.uniform_vec(4, -2.5, 2.5)).collect();
    let before = engine.submit_batch(ood.clone())?;
    let warned = before.iter().filter(|v| v.warning).count();
    println!(
        "novel traffic: {warned}/{} warnings before absorption",
        ood.len()
    );

    // …until the operator absorbs it: the store grows, the abstraction
    // enlarges, and every shard serves the new patterns with no rebuild.
    let fresh = engine.absorb_batch(&ood)?;
    let after = engine.submit_batch(ood.clone())?;
    assert!(after.iter().all(|v| !v.warning));
    println!("absorbed {fresh} new patterns; the same traffic is now clean");
    let report = engine.shutdown();
    println!("{report}");

    // 3. "Restart": a fresh engine warm-starts from the segments on disk —
    // no training data, no construction loop.
    let warm = MonitorEngine::from_store(&spec, net, &store_root, EngineConfig::with_shards(2))?;
    let served = warm.submit_batch(ood)?;
    assert!(
        served.iter().all(|v| !v.warning),
        "absorbed patterns persisted"
    );
    println!("warm restart serves the enlarged abstraction from disk");
    warm.shutdown();

    // A peek at the store itself.
    let mut store = PatternStore::open(StoreProvider::member_dir(&store_root, 0))?;
    let stats = store.stats()?;
    println!(
        "store: {} words ({} sealed segments), {} bytes on disk",
        stats.sealed_words + stats.tail_words,
        stats.segments,
        stats.disk_bytes
    );

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
