//! Artifact round trip: the full build → save → load → serve pipeline.
//!
//! ```text
//! cargo run --release --example artifact_roundtrip
//! ```
//!
//! Stage 1 plays the *training side*: it trains a network, declares a
//! robust interval monitor as a [`MonitorSpec`], builds it, and saves the
//! whole deployment as one versioned artifact file. Stage 2 plays the
//! *operations side*: a (conceptually fresh) process that knows nothing
//! but the file path loads it — validation included — mounts it on the
//! sharded serving engine, and serves traffic. The example asserts that
//! the served verdicts are bit-identical to the builder's in-memory
//! monitor, and that tampered files are rejected with typed errors.

use napmon::absint::Domain;
use napmon::artifact::{ArtifactError, MonitorArtifact};
use napmon::core::{Monitor, MonitorKind, MonitorSpec};
use napmon::nn::{Activation, LayerSpec, Loss, Network, Optimizer, Trainer};
use napmon::serve::{EngineConfig, MonitorEngine};
use napmon::tensor::Prng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("napmon_artifact_roundtrip");
    let path = dir.join("monitor.artifact.json");

    // ---- Stage 1: the training side -------------------------------------
    // Train a small regressor on y = sin(3x0) + x1.
    let mut rng = Prng::seed(7);
    let inputs: Vec<Vec<f64>> = (0..512).map(|_| rng.uniform_vec(2, -1.0, 1.0)).collect();
    let targets: Vec<Vec<f64>> = inputs
        .iter()
        .map(|x| vec![(3.0 * x[0]).sin() + x[1]])
        .collect();
    let mut net = Network::seeded(
        42,
        2,
        &[
            LayerSpec::dense(24, Activation::Relu),
            LayerSpec::dense(12, Activation::Relu),
            LayerSpec::dense(1, Activation::Identity),
        ],
    );
    Trainer::new(Loss::Mse, Optimizer::adam(0.01))
        .batch_size(32)
        .epochs(60)
        .run(&mut net, &inputs, &targets, 11);

    // Declare the whole monitor build as data: a robust 2-bit interval
    // monitor at the last hidden layer, Δ = 0.02 at the input, box domain.
    let spec = MonitorSpec::new(net.penultimate_boundary(), MonitorKind::interval(2)).robust(
        0.02,
        0,
        Domain::Box,
    );
    let artifact = MonitorArtifact::build(spec, &net, &inputs)?;
    println!("built    {artifact}");

    // Keep reference verdicts to compare the round trip against.
    let probes: Vec<Vec<f64>> = (0..256).map(|_| rng.uniform_vec(2, -1.5, 1.5)).collect();
    let reference = artifact.monitor().query_batch(&net, &probes)?;

    artifact.save_json(&path)?;
    let bytes = std::fs::metadata(&path)?.len();
    println!("saved    {} ({bytes} bytes)", path.display());

    // ---- Stage 2: the operations side -----------------------------------
    // A fresh process: only the file crosses the boundary. Loading
    // re-validates the format version, the spec invariants, and the
    // agreement between spec, network, and monitor.
    let loaded = MonitorArtifact::load_json(&path)?;
    println!("loaded   {loaded}");

    // Mount it on the sharded serving engine and serve the same probes.
    let engine = MonitorEngine::from_artifact(loaded, EngineConfig::with_shards(2));
    let served = engine.submit_batch(probes.clone())?;
    let report = engine.shutdown();
    assert_eq!(served, reference, "round trip must be bit-identical");
    println!(
        "served   {} requests across 2 shards, warn rate {:.3} — verdicts bit-identical",
        report.requests, report.warn_rate
    );

    // ---- Tampered files fail typed, not loud ----------------------------
    let json = std::fs::read_to_string(&path)?;
    let bumped = json.replacen("\"format_version\":1", "\"format_version\":2", 1);
    match MonitorArtifact::from_json_str(&bumped) {
        Err(ArtifactError::UnsupportedVersion { found, supported }) => {
            println!("rejected future format v{found} (this build reads v{supported})");
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
