//! Networked monitoring, end to end:
//!
//! 1. the *training side* builds a store-backed monitor, packages it as a
//!    versioned artifact file, and walks away;
//! 2. the *operations side* cold-starts a [`WireServer`] from nothing but
//!    that file and a port;
//! 3. N concurrent clients submit traffic over loopback TCP — and their
//!    verdicts are asserted **bit-identical** to a direct in-process
//!    `MonitorEngine::submit_batch` on the same build;
//! 4. novel traffic is *absorbed over the wire*: the store grows, every
//!    shard (and every client) sees the enlarged abstraction immediately;
//! 5. the operations client stamps a trace id on its traffic and scrapes
//!    the server's metrics over the same protocol — counters, text
//!    exposition, slow-request log, and (with `--features obs`) the
//!    recorded span chains;
//! 6. a client asks for graceful shutdown; the server drains (final queue
//!    depth: zero) and reports;
//! 7. a warm restart boots a second server straight from the store
//!    segments on disk — the absorbed patterns survived.
//!
//! Run with `cargo run --release --example wire_monitor`, or with
//! `--features obs` to arm the hot-path probes. Set `NAPMON_OBS_OUT=dir`
//! to write the scraped exposition and slow-request log to files (CI
//! uploads these as build artifacts).

use napmon::artifact::MonitorArtifact;
use napmon::core::{Monitor, MonitorKind, MonitorSpec, PatternBackend, ThresholdPolicy};
use napmon::nn::{Activation, LayerSpec, Network};
use napmon::serve::{EngineConfig, MonitorEngine};
use napmon::store::StoreProvider;
use napmon::tensor::Prng;
use napmon::wire::{
    ClientConfig, RetryPolicy, WireClient, WireConfig, WireServer, WIRE_PROTOCOL_VERSION,
};

const CLIENTS: usize = 4;
const INPUT_DIM: usize = 4;

/// Every client in this example speaks through the standard retry
/// policy: a transient `Busy` from an over-budget server (or a dropped
/// connection) is backed off and retried, not treated as fatal — only a
/// `RetriesExhausted` would surface.
fn resilient_client(addr: std::net::SocketAddr) -> Result<WireClient, napmon::wire::WireError> {
    WireClient::connect_with(
        addr,
        ClientConfig::default().with_retry(RetryPolicy::standard()),
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Arm request tracing for the whole run. Without `--features obs` this
    // is a no-op shim and every probe below compiles to nothing; the
    // metrics scrape itself still works (counters are always live).
    napmon::obs::set_tracing(true);
    let dir = std::env::temp_dir().join(format!("napmon_wire_example_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store_root = dir.join("patterns");
    let artifact_path = dir.join("monitor.artifact.json");

    // ---- Training side: build, package, leave ---------------------------
    let net = Network::seeded(
        2024,
        INPUT_DIM,
        &[
            LayerSpec::dense(24, Activation::Relu),
            LayerSpec::dense(3, Activation::Identity),
        ],
    );
    let mut rng = Prng::seed(11);
    let train: Vec<Vec<f64>> = (0..256)
        .map(|_| rng.uniform_vec(INPUT_DIM, -1.0, 1.0))
        .collect();
    let spec = MonitorSpec::new(
        2,
        MonitorKind::pattern_with(ThresholdPolicy::Sign, PatternBackend::Store, 0),
    );
    let monitor = spec.build_with_sources(&net, &train, &mut StoreProvider::new(&store_root))?;
    let artifact = MonitorArtifact::from_parts(spec.clone(), net.clone(), monitor, train.len())?;
    artifact.save_json(&artifact_path)?;

    // Reference verdicts for the bit-identical check: mixed traffic,
    // answered by the builder's own monitor before it leaves the process.
    let probes: Vec<Vec<f64>> = (0..192)
        .map(|i| {
            if i % 3 == 0 {
                rng.uniform_vec(INPUT_DIM, -2.5, 2.5)
            } else {
                train[i % train.len()].clone()
            }
        })
        .collect();
    let reference = artifact.monitor().query_batch(&net, &probes)?;
    let reference_warned = reference.iter().filter(|v| v.warning).count();
    println!(
        "built    {artifact}\n         reference: {reference_warned}/{} probes warn",
        probes.len()
    );
    // Store opens are exclusive: release the builder's handle before the
    // server reopens the segments.
    drop(artifact);

    // ---- Operations side: cold start from the file ----------------------
    let server = WireServer::serve_artifact_file(
        &artifact_path,
        "127.0.0.1:0",
        EngineConfig::with_shards(2),
        // Loopback requests finish in microseconds; a 10us threshold
        // makes the slow-request log observably populate (with the
        // probes compiled out, timings read zero and nothing is slow).
        WireConfig::default().with_slow_request_threshold(std::time::Duration::from_micros(10)),
    )?;
    let addr = server.local_addr();
    println!("serving  wire protocol v{WIRE_PROTOCOL_VERSION} on {addr} (2 shards)");

    // N concurrent clients: everyone must see exactly the builder's
    // verdicts, over TCP, interleaved on one engine.
    let workers: Vec<_> = (0..CLIENTS)
        .map(|id| {
            let probes = probes.clone();
            let reference = reference.clone();
            std::thread::spawn(move || -> Result<(), String> {
                let mut client = resilient_client(addr).map_err(|e| e.to_string())?;
                let verdicts = client.query_batch(&probes).map_err(|e| e.to_string())?;
                if verdicts != reference {
                    return Err(format!("client {id}: wire verdicts drifted"));
                }
                Ok(())
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("client thread")?;
    }
    println!(
        "queried  {CLIENTS} concurrent clients x {} probes — all bit-identical to the direct engine",
        probes.len()
    );

    // ---- Absorb over the wire -------------------------------------------
    // The operator stamps a trace id on everything it sends; the server
    // echoes it back on every response, and — with the probes armed —
    // records the request's span chain under that id.
    const OPERATOR_TRACE: u64 = 0x0B5E_4E0A_B1E0_0050;
    let mut operator = resilient_client(addr)?.with_trace_id(OPERATOR_TRACE);
    let novel: Vec<Vec<f64>> = (0..48)
        .map(|_| rng.uniform_vec(INPUT_DIM, -2.5, 2.5))
        .collect();
    let before = operator.query_batch(&novel)?;
    let warned_before = before.iter().filter(|v| v.warning).count();
    let fresh = operator.absorb_batch(&novel)?;
    let after = operator.query_batch(&novel)?;
    assert!(
        after.iter().all(|v| !v.warning),
        "absorbed traffic must be clean"
    );
    println!(
        "absorbed {fresh} new patterns over the wire \
         ({warned_before}/{} warned before, 0 after — no rebuild, every shard sees them)",
        novel.len()
    );

    // ---- Stats + graceful shutdown, both over the wire ------------------
    let stats = operator.stats()?;
    println!(
        "stats    {} requests served, warn rate {:.4}, wire budget {} \
         (busy rejections: {}, shed: {}, evicted: {})",
        stats.engine.requests,
        stats.engine.warn_rate,
        stats.wire_budget,
        stats.degraded.busy_total(),
        stats.degraded.shed_watermark,
        stats.degraded.evicted_total()
    );

    // ---- Observability scrape, over the same protocol -------------------
    assert_eq!(
        operator.last_trace_id(),
        Some(OPERATOR_TRACE),
        "the server must echo the operator's trace id"
    );
    let obs = operator.metrics()?;
    let operator_spans = obs
        .spans
        .iter()
        .filter(|s| s.trace_id == OPERATOR_TRACE)
        .count();
    println!(
        "scraped  obs report v{}: {} counters, {} spans under the operator's \
         trace id, {} slow requests (probes {})",
        obs.schema_version,
        obs.metrics.counters.len(),
        operator_spans,
        obs.slow_requests.len(),
        if cfg!(feature = "obs") { "on" } else { "off" }
    );
    if let Some(out) = std::env::var_os("NAPMON_OBS_OUT") {
        let out = std::path::PathBuf::from(out);
        std::fs::create_dir_all(&out)?;
        std::fs::write(out.join("metrics.prom"), &obs.exposition)?;
        std::fs::write(
            out.join("slow_requests.json"),
            serde_json::to_string_pretty(&obs.slow_requests)?,
        )?;
        println!("wrote    {} (exposition + slow-request log)", out.display());
    }
    operator.shutdown_server()?;
    let report = server.wait();
    assert_eq!(report.queue_depth, 0, "drain left queued work");
    println!(
        "drained  graceful shutdown: {} requests total, queue depth {}",
        report.requests, report.queue_depth
    );

    // ---- Warm restart from the store ------------------------------------
    // A second server boots from the same artifact file; the store-backed
    // members reattach to the segments on disk, absorbed patterns
    // included. No training data, no rebuild.
    let warm = WireServer::serve_artifact_file(
        &artifact_path,
        "127.0.0.1:0",
        EngineConfig::with_shards(2),
        WireConfig::default(),
    )?;
    let mut client = resilient_client(warm.local_addr())?;
    let served = client.query_batch(&novel)?;
    assert!(
        served.iter().all(|v| !v.warning),
        "absorbed patterns must survive the restart"
    );
    // The original reference traffic still answers bit-identically on
    // every pattern the builder knew (absorption only enlarges).
    let replay = client.query_batch(&probes)?;
    for (wire, direct) in replay.iter().zip(&reference) {
        if !direct.warning {
            assert!(!wire.warning, "warm restart lost a builder pattern");
        }
    }
    client.shutdown_server()?;
    warm.wait();
    println!("restart  warm server from disk: absorbed patterns intact");

    // Boot-from-store also works without the artifact file at all.
    let from_store =
        MonitorEngine::from_store(&spec, net, &store_root, EngineConfig::with_shards(1))?;
    assert!(from_store.submit_batch(novel)?.iter().all(|v| !v.warning));
    from_store.shutdown();

    std::fs::remove_dir_all(&dir).ok();
    println!("ok");
    Ok(())
}
