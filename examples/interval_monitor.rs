//! The paper's §III-C extension: multi-bit interval monitors, including
//! the Figure 1 robust encoding, demonstrated neuron by neuron.
//!
//! ```text
//! cargo run --release --example interval_monitor
//! ```

use napmon::absint::BoxBounds;
use napmon::core::{FeatureExtractor, IntervalPatternMonitor, Monitor};
use napmon::eval::table::Table;
use napmon::nn::{Activation, LayerSpec, Network};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 1-neuron feature layer keeps the encoding visible.
    let net = Network::seeded(1, 2, &[LayerSpec::dense(1, Activation::Identity)]);
    let fx = FeatureExtractor::new(&net, 1)?;

    // Thresholds c1 < c2 < c3 split the reals into four intervals
    // encoded 00 / 01 / 10 / 11 (B = 2 bits).
    let mut monitor = IntervalPatternMonitor::empty(fx, 2, vec![vec![0.0, 1.0, 2.0]])?;

    // The ten cases of Figure 1: where [l, u] sits relative to the
    // thresholds decides which symbol *set* is recorded.
    println!("Figure 1 — the robust encoding ab_R([l, u]):\n");
    let mut t = Table::new(vec!["[l, u]".into(), "recorded symbols".into()]);
    for (l, u) in [
        (2.5, 3.0),
        (1.2, 1.8),
        (0.3, 0.7),
        (-1.0, -0.5),
        (-0.5, 0.5),
        (0.5, 1.5),
        (1.5, 2.5),
        (-0.5, 1.5),
        (0.5, 2.5),
        (-0.5, 2.5),
    ] {
        let symbols: Vec<String> = monitor
            .symbol_range(0, l, u)
            .map(|s| format!("{s:02b}"))
            .collect();
        t.row(vec![
            format!("[{l:+.1}, {u:+.1}]"),
            format!("{{{}}}", symbols.join(", ")),
        ]);
    }
    println!("{t}");

    // Absorb one perturbation estimate and query around it.
    monitor.absorb_bounds(&BoxBounds::new(vec![0.5], vec![1.5])); // {01, 10}
    println!("after absorbing [0.5, 1.5] (symbols {{01, 10}}):");
    for v in [-0.5, 0.7, 1.4, 2.5] {
        // The network here is weights*(x) so craft inputs mapping to v.
        let warn = monitor.warns_features(&[v]);
        println!("  feature {v:+.1} -> warning: {warn}");
    }

    // Footnote 3: multi-bit monitors generalize min-max and on-off.
    println!(
        "\ncoverage: {:.3e} of the 2-bit pattern space",
        monitor.coverage()
    );
    Ok(())
}
