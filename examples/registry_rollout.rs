//! Multi-tenant serving and a shadow rollout, end to end:
//!
//! 1. an operator mounts monitors for **two tenants** over the wire —
//!    every admin call is routed by the same `(model_id, version)` tenant
//!    route that query traffic carries;
//! 2. routed clients for both tenants get verdicts **bit-identical** to
//!    the builder's own monitor;
//! 3. a candidate monitor is mounted in **shadow mode** beside tenant
//!    `resnet`'s active engine: live traffic keeps being answered by the
//!    active engine while the mirror replays it on the candidate off the
//!    hot path;
//! 4. the accumulated [`ShadowReport`] (agreement rate, per-class
//!    disagreement counts, latency delta) is printed — the evidence an
//!    operator reads before committing;
//! 5. `promote()` atomically flips the candidate to active (in-flight
//!    requests finish on the old engine, which drains to queue depth zero
//!    before teardown) and the post-promote verdicts prove the flip;
//! 6. a legacy **v1 client is rejected** with a typed error naming both
//!    its version and the server's.
//!
//! Run with `cargo run --release --example registry_rollout`.
//!
//! [`ShadowReport`]: napmon::registry::ShadowReport

use napmon::artifact::MonitorArtifact;
use napmon::core::{ComposedMonitor, Monitor, MonitorKind, MonitorSpec};
use napmon::nn::{Activation, LayerSpec, Network};
use napmon::registry::{MonitorRegistry, RegistryConfig};
use napmon::serve::EngineConfig;
use napmon::tensor::Prng;
use napmon::wire::{
    ErrorCode, Frame, Opcode, Response, TenantRoute, WireClient, WireServer, DEFAULT_MAX_PAYLOAD,
    LEGACY_WIRE_PROTOCOL_VERSION, WIRE_PROTOCOL_VERSION,
};
use std::io::{Read, Write};
use std::sync::Arc;

const INPUT_DIM: usize = 6;

/// Builds one tenant's monitor and packages it as artifact JSON — the
/// unit the Mount opcode carries over the wire.
fn artifact_json(
    spec: &MonitorSpec,
    net: &Network,
    monitor: ComposedMonitor,
    trained_on: usize,
) -> Result<String, Box<dyn std::error::Error>> {
    Ok(
        MonitorArtifact::from_parts(spec.clone(), net.clone(), monitor, trained_on)?
            .to_json_string()?,
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Training side: two tenants and one candidate -------------------
    let net = Network::seeded(
        501,
        INPUT_DIM,
        &[
            LayerSpec::dense(16, Activation::Relu),
            LayerSpec::dense(3, Activation::Identity),
        ],
    );
    let mut rng = Prng::seed(77);
    let train: Vec<Vec<f64>> = (0..128)
        .map(|_| rng.uniform_vec(INPUT_DIM, -1.0, 1.0))
        .collect();
    let probes: Vec<Vec<f64>> = (0..96)
        .map(|i: usize| {
            if i.is_multiple_of(3) {
                rng.uniform_vec(INPUT_DIM, -2.5, 2.5)
            } else {
                train[i % train.len()].clone()
            }
        })
        .collect();
    let spec = MonitorSpec::new(2, MonitorKind::pattern());
    // `resnet` v1 saw the full training set; the v2 candidate only half —
    // a genuinely different abstraction, so the shadow report has real
    // disagreements to count. `mobilenet` shares the network but not the
    // monitor; the registry keys engines by tenant, not by model weights.
    let resnet_v1 = spec.build(&net, &train)?;
    let resnet_v2 = spec.build(&net, &train[..train.len() / 2])?;
    let mobilenet = spec.build(&net, &train[train.len() / 4..])?;
    let expected_v1 = resnet_v1.query_batch(&net, &probes)?;
    let expected_v2 = resnet_v2.query_batch(&net, &probes)?;

    // ---- One server, many tenants ---------------------------------------
    let registry = Arc::new(MonitorRegistry::new(RegistryConfig::with_engine(
        EngineConfig::with_shards(2),
    )));
    let server = WireServer::builder(registry).bind("127.0.0.1:0")?;
    let addr = server.local_addr();
    println!("serving  wire protocol v{WIRE_PROTOCOL_VERSION} registry on {addr}");

    // Admin traffic is just routed frames: the pinned route names the
    // (tenant, version) slot each Mount lands in.
    let mut admin = WireClient::connect(addr)?;
    admin.set_route(Some(TenantRoute::pinned("resnet", 1)));
    admin.mount_artifact(false, &artifact_json(&spec, &net, resnet_v1, train.len())?)?;
    admin.set_route(Some(TenantRoute::pinned("mobilenet", 1)));
    admin.mount_artifact(
        false,
        &artifact_json(&spec, &net, mobilenet, train.len() * 3 / 4)?,
    )?;
    for tenant in admin.list_tenants()? {
        println!(
            "mounted  {} v{} (shadow: {:?})",
            tenant.model_id, tenant.active_version, tenant.shadow_version
        );
    }

    // Routed query traffic: each tenant's clients see exactly the
    // verdicts its builder computed.
    let mut resnet_client = WireClient::connect(addr)?.with_route(TenantRoute::active("resnet"));
    let mut mobilenet_client =
        WireClient::connect(addr)?.with_route(TenantRoute::active("mobilenet"));
    assert_eq!(
        resnet_client.query_batch(&probes)?,
        expected_v1,
        "routed verdicts must match the builder's"
    );
    mobilenet_client.query_batch(&probes)?;
    println!(
        "queried  2 tenants x {} probes — resnet bit-identical to its builder",
        probes.len()
    );

    // ---- Shadow the candidate, read the evidence, promote ---------------
    admin.set_route(Some(TenantRoute::pinned("resnet", 2)));
    admin.mount_artifact(
        true,
        &artifact_json(&spec, &net, resnet_v2, train.len() / 2)?,
    )?;
    // Live traffic still answers from v1; the mirror replays it on v2.
    assert_eq!(resnet_client.query_batch(&probes)?, expected_v1);
    // The mirror runs off the hot path; let it settle before reading so
    // the printed report covers the whole batch.
    server
        .registry()
        .expect("registry backend")
        .shadow_sync("resnet")?;
    let report = admin.shadow_stats()?;
    println!("shadow   {report}");
    assert_eq!(report.mirrored, probes.len() as u64);
    assert!(
        report.disagreements() > 0,
        "the half-trained candidate must disagree somewhere"
    );

    let promoted = admin.promote()?;
    println!("promoted {promoted}");
    assert_eq!(
        resnet_client.query_batch(&probes)?,
        expected_v2,
        "post-promote traffic must answer from the candidate"
    );
    for tenant in admin.list_tenants()? {
        if tenant.model_id == "resnet" {
            assert_eq!(tenant.active_version, 2);
            assert_eq!(tenant.shadow_version, None);
        }
    }
    println!("flipped  resnet v1 -> v2: zero dropped requests, verdicts now the candidate's");

    // ---- A v1 peer gets a typed rejection, not a hang -------------------
    let mut v1_frame = Frame::empty(Opcode::Stats, 1).encode()?;
    v1_frame[4..6].copy_from_slice(&LEGACY_WIRE_PROTOCOL_VERSION.to_le_bytes());
    let mut raw = std::net::TcpStream::connect(addr)?;
    raw.write_all(&v1_frame)?;
    let mut reply = Vec::new();
    raw.read_to_end(&mut reply)?;
    let (frame, _) = Frame::decode(&reply, DEFAULT_MAX_PAYLOAD)?;
    match Response::decode(&frame)? {
        Response::Error { code, message } => {
            assert_eq!(code, ErrorCode::UnsupportedVersion);
            println!("rejected v{LEGACY_WIRE_PROTOCOL_VERSION} peer with typed error: {message}");
        }
        other => panic!("expected a typed rejection, got {other:?}"),
    }

    // ---- Drain everything ------------------------------------------------
    let report = server
        .shutdown_registry()
        .expect("registry-backed server reports a registry drain");
    for outcome in report.tenants.iter().chain(&report.retired) {
        assert!(!outcome.timed_out, "shutdown drain timed out");
        assert_eq!(outcome.report.queue_depth, 0, "drain left queued work");
    }
    println!(
        "drained  {} engines ({} active, {} retired), {} requests total, every queue empty",
        report.tenants.len() + report.retired.len(),
        report.tenants.len(),
        report.retired.len(),
        report.total_requests()
    );
    println!("ok");
    Ok(())
}
