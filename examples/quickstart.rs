//! Quickstart: train a tiny network, declare a monitor spec, build, query.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Construction is spec-first: the whole monitor build is declared as a
//! serializable `MonitorSpec` value, so the exact configuration that
//! produced a deployed monitor can be saved, diffed, and rebuilt (see
//! `examples/artifact_roundtrip.rs` for the full deployment pipeline).

use napmon::absint::Domain;
use napmon::core::{Monitor, MonitorKind, MonitorSpec};
use napmon::nn::{Activation, LayerSpec, Loss, Network, Optimizer, Trainer};
use napmon::tensor::Prng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A regression task: y = sin(3x0) + x1, sampled on a small domain.
    let mut rng = Prng::seed(7);
    let inputs: Vec<Vec<f64>> = (0..512).map(|_| rng.uniform_vec(2, -1.0, 1.0)).collect();
    let targets: Vec<Vec<f64>> = inputs
        .iter()
        .map(|x| vec![(3.0 * x[0]).sin() + x[1]])
        .collect();

    // 2. Train a small feed-forward network on it.
    let mut net = Network::seeded(
        42,
        2,
        &[
            LayerSpec::dense(24, Activation::Relu),
            LayerSpec::dense(12, Activation::Relu),
            LayerSpec::dense(1, Activation::Identity),
        ],
    );
    let report = Trainer::new(Loss::Mse, Optimizer::adam(0.01))
        .batch_size(32)
        .epochs(120)
        .run(&mut net, &inputs, &targets, 11);
    println!("trained: final MSE = {:.5}", report.final_loss());

    // 3. Declare monitor builds at the last hidden layer: one standard,
    //    one robust (Definition 1 with Δ = 0.02 at the input, box domain).
    //    A spec is plain data — `serde_json::to_string(&spec)` is the
    //    reviewable record of exactly what was built.
    let layer = net.penultimate_boundary();
    let standard = MonitorSpec::new(layer, MonitorKind::pattern()).build(&net, &inputs)?;
    let robust = MonitorSpec::new(layer, MonitorKind::pattern())
        .robust(0.02, 0, Domain::Box)
        .build(&net, &inputs)?;

    // 4. Query: in-distribution points and their small perturbations never
    //    warn under the robust monitor (Lemma 1); far-away points do.
    let near: Vec<f64> = vec![inputs[0][0] + 0.015, inputs[0][1] - 0.015];
    let far = vec![9.0, -9.0];
    println!("standard monitor:");
    println!(
        "  near training point -> warning: {}",
        standard.warns(&net, &near)?
    );
    println!(
        "  far from training   -> warning: {}",
        standard.warns(&net, &far)?
    );
    println!("robust monitor (provably silent within Δ of the training set):");
    println!(
        "  near training point -> warning: {}",
        robust.warns(&net, &near)?
    );
    println!(
        "  far from training   -> warning: {}",
        robust.warns(&net, &far)?
    );

    assert!(!robust.warns(&net, &near)?, "Lemma 1 guarantees this");
    Ok(())
}
