//! Per-class pattern monitoring on a glyph classifier — the DATE 2019
//! setup (one pattern set per output class) with robust construction.
//!
//! ```text
//! cargo run --release --example shapes_ood
//! ```

use napmon::absint::Domain;
use napmon::core::{MonitorBuilder, MonitorKind, PatternBackend, ThresholdPolicy};
use napmon::data::shapes::ShapesConfig;
use napmon::eval::table::{percent, Table};
use napmon::nn::{accuracy, Activation, LayerSpec, Loss, Network, Optimizer, Trainer};
use napmon::tensor::Prng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = ShapesConfig::default();
    let mut rng = Prng::seed(99);
    let train = cfg.dataset(300, &mut rng);
    let test = cfg.dataset(100, &mut rng);
    let ood = cfg.ood_inputs(400, &mut rng);

    // Train a 4-class glyph classifier.
    let mut net = Network::seeded(
        5,
        cfg.input_dim(),
        &[
            LayerSpec::dense(48, Activation::Relu),
            LayerSpec::dense(24, Activation::Relu),
            LayerSpec::dense(4, Activation::Identity),
        ],
    );
    Trainer::new(Loss::SoftmaxCrossEntropy, Optimizer::adam(0.005))
        .batch_size(32)
        .epochs(25)
        .run(&mut net, &train.inputs, &train.targets, 17);
    println!(
        "test accuracy: {:.1}%",
        100.0 * accuracy(&net, &test.inputs, &test.targets)
    );

    // One pattern set per class, as in the DATE 2019 monitor; robust
    // construction with a small input Δ.
    let labels = train.labels.as_ref().expect("classification dataset");
    let layer = net.penultimate_boundary();
    let kind = MonitorKind::pattern_with(ThresholdPolicy::Mean, PatternBackend::Bdd, 0);
    let standard =
        MonitorBuilder::new(&net, layer).build_per_class(kind.clone(), &train.inputs, labels, 4)?;
    let robust = MonitorBuilder::new(&net, layer)
        .robust(0.002, 0, Domain::Box)
        .build_per_class(kind, &train.inputs, labels, 4)?;

    let rate = |pc: &napmon::core::PerClassMonitor, xs: &[Vec<f64>]| -> f64 {
        xs.iter().filter(|x| pc.warns(&net, x).unwrap()).count() as f64 / xs.len() as f64
    };

    let mut t = Table::new(vec![
        "per-class monitor".into(),
        "FP (in-dist test)".into(),
        "detection (star + inverted glyphs)".into(),
    ]);
    t.row(vec![
        "standard".into(),
        percent(rate(&standard, &test.inputs)),
        percent(rate(&standard, &ood)),
    ]);
    t.row(vec![
        "robust Δ=0.002".into(),
        percent(rate(&robust, &test.inputs)),
        percent(rate(&robust, &ood)),
    ]);
    println!("{t}");
    Ok(())
}
