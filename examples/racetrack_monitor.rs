//! The paper's lab setting, miniaturized: a waypoint-regression network on
//! synthetic race-track images, monitored in operation.
//!
//! Renders the out-of-ODD scenarios of the paper's Figure 2 as ASCII art
//! and reports false-positive and detection rates for a standard and a
//! robust on-off pattern monitor.
//!
//! ```text
//! cargo run --release --example racetrack_monitor
//! ```

use napmon::absint::Domain;
use napmon::core::MonitorKind;
use napmon::core::{PatternBackend, RobustConfig, ThresholdPolicy};
use napmon::data::ood::OodScenario;
use napmon::data::racetrack::{TrackConfig, TrackSampler};
use napmon::eval::experiment::{Experiment, RacetrackConfig};
use napmon::eval::table::{percent, Table};

fn main() {
    // Show the scenarios first (the synthetic Figure 2).
    let mut sampler = TrackSampler::new(TrackConfig::default(), 2021);
    let (nominal, waypoint, _) = sampler.sample();
    println!(
        "nominal in-ODD frame (waypoint x = {:+.2}):\n{}",
        waypoint[0],
        nominal.to_ascii()
    );
    for scenario in OodScenario::PAPER {
        println!(
            "{scenario}:\n{}",
            scenario.apply(&nominal, sampler.rng_mut()).to_ascii()
        );
    }

    // Train the perception network and evaluate monitors (reduced scale so
    // the example finishes in seconds; `paper_tables --full` runs the real
    // thing).
    println!("training perception network…");
    let exp = Experiment::prepare(RacetrackConfig {
        train_size: 500,
        test_size: 500,
        ood_size: 150,
        epochs: 10,
        ..RacetrackConfig::default()
    });
    println!(
        "train MSE {:.5}, test MSE {:.5}\n",
        exp.train_loss(),
        exp.test_loss()
    );

    let kind = MonitorKind::pattern_with(ThresholdPolicy::Mean, PatternBackend::Bdd, 0);
    let standard = exp.run_monitor("standard", kind.clone(), None);
    let robust = exp.run_monitor(
        "robust Δ=0.001",
        kind,
        Some(RobustConfig {
            delta: 0.001,
            kp: 0,
            domain: Domain::Box,
        }),
    );

    let mut t = Table::new(vec![
        "monitor".into(),
        "false positives (in-ODD)".into(),
        "dark".into(),
        "construction".into(),
        "ice".into(),
    ]);
    for row in [&standard, &robust] {
        t.row(vec![
            row.name.clone(),
            percent(row.fp_rate),
            percent(row.detection["dark"]),
            percent(row.detection["construction"]),
            percent(row.detection["ice"]),
        ]);
    }
    println!("{t}");
    println!(
        "robust construction cut false positives by {:.0}% (the paper reports 80%).",
        if standard.fp_rate > 0.0 {
            100.0 * (1.0 - robust.fp_rate / standard.fp_rate)
        } else {
            0.0
        }
    );
}
